//! The subscription registry: standing queries keyed by plan
//! fingerprint, an inverted label/series index for commit routing, and
//! per-commit delta evaluation.
//!
//! # Routing soundness
//!
//! The index is a deliberate over-approximation: a subscription is
//! routed whenever a commit *could* change its result, and a routed
//! subscription whose result did not change produces an empty delta,
//! which is never pushed. Concretely:
//!
//! * a new vertex can only create matches at pattern positions whose
//!   label constraints its own labels satisfy — routing by the new
//!   vertex's labels (plus subscriptions with unconstrained vertex
//!   positions) covers every such position;
//! * likewise new edges by their labels (plus unconstrained edge
//!   slots);
//! * appended series points can only move series aggregates — only
//!   subscriptions whose plan reads any series aggregate are routed,
//!   narrowed further by *shard*: each series-reading subscription
//!   carries a bitmask of the shards
//!   ([`hygraph_types::shard::ShardRouter`]) owning the series it can
//!   reach, and an append touching only disjoint shards skips it
//!   entirely (see the mask-maintenance notes on
//!   [`SubscriptionRegistry::on_commit`]); the routed survivors'
//!   [`IncState`] narrows once more to the entries whose resolved
//!   series ids were touched;
//! * property updates and validity closes can shift filters, pushed
//!   predicates, and match sets in ways additions cannot, so routed
//!   subscriptions take the rebuild path (full recompute, merge-diffed
//!   in canonical match order) — but a property write is first narrowed
//!   by key: only subscriptions whose plan property footprint mentions
//!   the touched key are routed at all (the footprint is exact — HyQL
//!   has no dynamic property access — so this is a no-cost skip, not an
//!   approximation);
//! * subgraph mutations are invisible to HyQL plans and route nowhere.
//!
//! A failed batch may have applied a valid prefix the caller cannot
//! name, so it routes *every* subscription through rebuild —
//! correctness first.

use crate::config::SubConfig;
use hygraph_core::{ElementRef, HyGraph};
use hygraph_persist::HgMutation;
use hygraph_query::ast::Query;
use hygraph_query::incremental::{diff_rows, support, uses_series, Delta, IncState};
use hygraph_query::{execute_planned, plan_query, PlannedQuery, QueryResult, Row};
use hygraph_types::parallel::ExecMode;
use hygraph_types::shard::ShardRouter;
use hygraph_types::{EdgeId, HyGraphError, Label, Result, SeriesId, VertexId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Where a subscription's pushes go — the serving layer implements this
/// over its per-connection bounded push buffers; tests implement it
/// over a collecting vector.
pub trait DeltaSink: Send + Sync {
    /// Enqueues one delta frame for `sub_id`. Returns `false` when the
    /// buffer is full — the registry then drops the subscription as a
    /// slow consumer.
    fn push_delta(&self, sub_id: u64, delta: &Delta) -> bool;

    /// Enqueues a terminal close notice for `sub_id`. Must not fail:
    /// implementations bypass the buffer cap for this single frame so a
    /// dropped subscriber learns *why* it was dropped.
    fn close(&self, sub_id: u64, reason: &str);
}

/// How a subscription is maintained across commits.
enum Mode {
    /// Seeded incremental maintenance (supported plan shapes).
    Incremental(IncState),
    /// Full re-execution + positional diff on every routed commit.
    Rerun {
        planned: PlannedQuery,
        rows: Vec<Row>,
    },
}

impl Mode {
    fn snapshot(&self, columns: &[String]) -> QueryResult {
        match self {
            Mode::Incremental(st) => st.snapshot(),
            Mode::Rerun { rows, .. } => QueryResult {
                columns: columns.to_vec(),
                rows: rows.clone(),
            },
        }
    }
}

/// The label/series footprint of one subscription — what the inverted
/// index holds for it, kept on the subscription so unregistering can
/// remove exactly its entries.
#[derive(Clone, Debug, Default)]
struct RouteKeys {
    vlabels: BTreeSet<String>,
    elabels: BTreeSet<String>,
    v_wild: bool,
    e_wild: bool,
    series: bool,
}

/// Derives the routing footprint from the query's AST patterns. An
/// unlabeled node/edge position accepts elements of any label; a
/// variable-length hop traverses unconstrained intermediate vertices,
/// so it implies the vertex wildcard.
fn route_keys(q: &Query, series: bool) -> RouteKeys {
    let mut keys = RouteKeys {
        series,
        ..RouteKeys::default()
    };
    fn node(keys: &mut RouteKeys, labels: &[String]) {
        if labels.is_empty() {
            keys.v_wild = true;
        } else {
            keys.vlabels.extend(labels.iter().cloned());
        }
    }
    for path in &q.patterns {
        node(&mut keys, &path.start.labels);
        for (edge, n) in &path.hops {
            node(&mut keys, &n.labels);
            if edge.labels.is_empty() {
                keys.e_wild = true;
            } else {
                keys.elabels.extend(edge.labels.iter().cloned());
            }
            if edge.hops != (1, 1) {
                keys.v_wild = true; // intermediate vertices are unconstrained
            }
        }
    }
    keys
}

impl RouteKeys {
    /// Whether a vertex with these labels can bind a pattern position
    /// of this footprint.
    fn admits_vertex(&self, labels: &[Label]) -> bool {
        self.v_wild || labels.iter().any(|l| self.vlabels.contains(l.as_str()))
    }

    /// Whether an edge with these labels can bind an edge slot of this
    /// footprint.
    fn admits_edge(&self, labels: &[Label]) -> bool {
        self.e_wild || labels.iter().any(|l| self.elabels.contains(l.as_str()))
    }
}

/// The shard bit of one series under `router` — safe because the
/// router clamps its shard count to `MAX_SHARDS` (64), one bit each.
fn shard_bit(router: ShardRouter, sid: SeriesId) -> u64 {
    1u64 << router.of_series(sid)
}

/// Every shard bit an element contributes to a footprint's reachable
/// series: its δ-series if it is a ts-element, plus any series-valued
/// properties (`SeriesRef::Property` reads those without δ).
fn element_series_bits(
    hg: &HyGraph,
    el: ElementRef,
    props: &hygraph_types::PropertyMap,
    router: ShardRouter,
) -> u64 {
    let mut bits = 0u64;
    if let Ok(sid) = hg.delta_id(el) {
        bits |= shard_bit(router, sid);
    }
    for (_, v) in props.iter() {
        if let Some(sid) = v.as_series() {
            bits |= shard_bit(router, sid);
        }
    }
    bits
}

/// The shard mask of one footprint against the whole instance: the OR
/// of every series shard reachable from an element the footprint
/// admits. Sound because plans resolve series only through bound
/// elements (`DELTA(var)` via δ, `var.key` via a series-valued
/// property), and bound elements always satisfy their position's label
/// constraint — so every series an evaluation can read contributes its
/// bit here. Non-series footprints get an (unused) empty mask.
fn footprint_mask(hg: &HyGraph, keys: &RouteKeys, router: ShardRouter) -> u64 {
    if !keys.series {
        return 0;
    }
    let mut mask = 0u64;
    let topo = hg.topology();
    for data in topo.vertices() {
        if keys.admits_vertex(&data.labels) {
            mask |= element_series_bits(hg, ElementRef::Vertex(data.id), &data.props, router);
        }
    }
    for data in topo.edges() {
        if keys.admits_edge(&data.labels) {
            mask |= element_series_bits(hg, ElementRef::Edge(data.id), &data.props, router);
        }
    }
    mask
}

struct Sub {
    conn: u64,
    fingerprint: u64,
    columns: Vec<String>,
    sink: Arc<dyn DeltaSink>,
    mode: Mode,
    keys: RouteKeys,
    /// Which shards own series this subscription's evaluation can
    /// reach — `1 << shard` per reachable series, grown monotonically
    /// as commits link new series into the footprint (see
    /// [`SubscriptionRegistry::on_commit`]). Appends route to the
    /// subscription only when they touch an intersecting shard.
    series_mask: u64,
    /// The exact property keys the plan can read
    /// ([`hygraph_query::plan::property_footprint`]): a `SetProperty`
    /// on a key outside this set cannot change the result, so commit
    /// routing skips this subscription for it.
    prop_keys: BTreeSet<String>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    subs: BTreeMap<u64, Sub>,
    by_vlabel: HashMap<String, HashSet<u64>>,
    by_elabel: HashMap<String, HashSet<u64>>,
    v_wild: HashSet<u64>,
    e_wild: HashSet<u64>,
    series_any: HashSet<u64>,
    by_conn: HashMap<u64, HashSet<u64>>,
    by_fp: HashMap<u64, HashSet<u64>>,
}

impl Inner {
    fn index(&mut self, id: u64) {
        let sub = &self.subs[&id];
        let keys = sub.keys.clone();
        for l in &keys.vlabels {
            self.by_vlabel.entry(l.clone()).or_default().insert(id);
        }
        for l in &keys.elabels {
            self.by_elabel.entry(l.clone()).or_default().insert(id);
        }
        if keys.v_wild {
            self.v_wild.insert(id);
        }
        if keys.e_wild {
            self.e_wild.insert(id);
        }
        if keys.series {
            self.series_any.insert(id);
        }
        self.by_conn.entry(sub.conn).or_default().insert(id);
        self.by_fp.entry(sub.fingerprint).or_default().insert(id);
    }

    fn unindex(&mut self, id: u64, sub: &Sub) {
        let drop_from = |map: &mut HashMap<String, HashSet<u64>>, l: &str| {
            if let Some(set) = map.get_mut(l) {
                set.remove(&id);
                if set.is_empty() {
                    map.remove(l);
                }
            }
        };
        for l in &sub.keys.vlabels {
            drop_from(&mut self.by_vlabel, l);
        }
        for l in &sub.keys.elabels {
            drop_from(&mut self.by_elabel, l);
        }
        self.v_wild.remove(&id);
        self.e_wild.remove(&id);
        self.series_any.remove(&id);
        if let Some(set) = self.by_conn.get_mut(&sub.conn) {
            set.remove(&id);
            if set.is_empty() {
                self.by_conn.remove(&sub.conn);
            }
        }
        if let Some(set) = self.by_fp.get_mut(&sub.fingerprint) {
            set.remove(&id);
            if set.is_empty() {
                self.by_fp.remove(&sub.fingerprint);
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<Sub> {
        let sub = self.subs.remove(&id)?;
        self.unindex(id, &sub);
        Some(sub)
    }
}

/// All standing queries of one engine (see module docs). Thread-safe;
/// the engine calls [`SubscriptionRegistry::on_commit`] under its write
/// lock, so commit processing is serialised with mutations and
/// subscription snapshots are transactionally consistent.
pub struct SubscriptionRegistry {
    cfg: SubConfig,
    /// Series → shard routing for the append index, built once from
    /// [`SubConfig::shards`]. Only internal consistency matters for
    /// soundness (masks and appends are judged by the *same* router),
    /// but by defaulting to the workspace shard knob it matches the
    /// engine's storage partitioning.
    router: ShardRouter,
    /// Lock-free emptiness check so commit paths with no subscribers
    /// pay one atomic load, not a mutex.
    active: AtomicUsize,
    /// Full recomputations taken so far (rerun-mode advances and forced
    /// incremental rebuilds) — the registry-local twin of the global
    /// `fallback_reruns` metric, so routing precision is observable
    /// per-engine.
    reruns: AtomicUsize,
    inner: Mutex<Inner>,
}

impl SubscriptionRegistry {
    /// A registry with explicit settings.
    pub fn new(cfg: SubConfig) -> Self {
        Self {
            cfg,
            router: ShardRouter::new(cfg.shards),
            active: AtomicUsize::new(0),
            reruns: AtomicUsize::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The series → shard router the append index partitions by.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// How many full recomputations this registry has run across all
    /// commits — the cost the key-narrowed routing avoids.
    pub fn rerun_count(&self) -> usize {
        self.reruns.load(Ordering::Relaxed)
    }

    /// A registry configured from the `HYGRAPH_SUB_*` environment.
    pub fn from_env() -> Self {
        Self::new(SubConfig::from_env())
    }

    /// The effective configuration.
    pub fn config(&self) -> SubConfig {
        self.cfg
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Whether no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a standing query for `conn` and returns its id plus
    /// the initial materialised snapshot. Must be called with `hg`
    /// stable (the engine's read lock suffices): the snapshot and the
    /// registration are then atomic with respect to commits.
    pub fn subscribe(
        &self,
        hg: &HyGraph,
        text: &str,
        conn: u64,
        sink: Arc<dyn DeltaSink>,
    ) -> Result<(u64, QueryResult)> {
        let q = hygraph_query::parser::parse(text)?;
        if q.explain {
            return Err(HyGraphError::query(
                "cannot subscribe to an EXPLAIN query; EXPLAIN it separately to see \
                 the Subscribe: incremental/rerun decision"
                    .to_string(),
            ));
        }
        let planned = plan_query(&q)?;
        let columns: Vec<String> = q.returns.iter().map(|r| r.alias.clone()).collect();
        let keys = route_keys(&q, uses_series(&planned.plan));
        let prop_keys = hygraph_query::plan::property_footprint(&planned.plan);
        let fingerprint = planned.plan.fingerprint;

        let mut inner = self.lock();
        if inner.subs.len() >= self.cfg.max_subscriptions {
            return Err(HyGraphError::unavailable(format!(
                "subscription limit reached ({}); raise HYGRAPH_SUB_MAX",
                self.cfg.max_subscriptions
            )));
        }
        // a fingerprint twin already maintains this exact plan: clone
        // its state instead of re-materialising from scratch
        let twin = inner
            .by_fp
            .get(&fingerprint)
            .and_then(|set| set.iter().next().copied());
        let mode = match twin {
            Some(tid) => match &inner.subs[&tid].mode {
                Mode::Incremental(st) => Mode::Incremental(st.clone()),
                Mode::Rerun { planned, rows } => Mode::Rerun {
                    planned: planned.clone(),
                    rows: rows.clone(),
                },
            },
            None => match support(&planned.plan) {
                Ok(()) => {
                    let (st, _) = IncState::new(&planned, hg)?;
                    Mode::Incremental(st)
                }
                Err(_) => {
                    let res = execute_planned(hg, &planned, ExecMode::Auto)?;
                    Mode::Rerun {
                        planned,
                        rows: res.rows,
                    }
                }
            },
        };
        let snapshot = mode.snapshot(&columns);
        let series_mask = footprint_mask(hg, &keys, self.router);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.insert(
            id,
            Sub {
                conn,
                fingerprint,
                columns,
                sink,
                mode,
                keys,
                series_mask,
                prop_keys,
            },
        );
        inner.index(id);
        self.active.store(inner.subs.len(), Ordering::Release);
        // a delta, not `set`: the registry gauge is process-global and
        // several engines may share it
        if let Some(m) = hygraph_metrics::get() {
            m.sub.active.inc();
        }
        Ok((id, snapshot))
    }

    /// Removes subscription `sub_id` if it exists and belongs to
    /// `conn`; returns whether it did.
    pub fn unsubscribe(&self, conn: u64, sub_id: u64) -> bool {
        let mut inner = self.lock();
        if inner.subs.get(&sub_id).is_none_or(|s| s.conn != conn) {
            return false;
        }
        inner.remove(sub_id);
        self.active.store(inner.subs.len(), Ordering::Release);
        if let Some(m) = hygraph_metrics::get() {
            m.sub.active.dec();
        }
        true
    }

    /// Drops every subscription of a disconnected client. No close
    /// frames are pushed — the connection is gone.
    pub fn drop_conn(&self, conn: u64) {
        let mut inner = self.lock();
        let ids: Vec<u64> = inner
            .by_conn
            .get(&conn)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        for id in ids {
            if inner.remove(id).is_some() {
                if let Some(m) = hygraph_metrics::get() {
                    m.sub.active.dec();
                }
            }
        }
        self.active.store(inner.subs.len(), Ordering::Release);
    }

    /// Processes one committed (or partially applied, `batch_failed`)
    /// mutation batch: routes it through the inverted index, advances
    /// every affected subscription, and pushes non-empty deltas. Call
    /// under the engine's write lock, after the batch is applied, with
    /// `pre_vcap`/`pre_ecap` the topology capacities captured before.
    ///
    /// # Shard-mask maintenance
    ///
    /// Append routing consults each series-reading subscription's shard
    /// mask, so the mask must already cover every element → series link
    /// this batch created *before* its appends are routed. Three kinds
    /// of mutation create links: new ts-elements (δ), new elements
    /// carrying series-valued properties, and `SetProperty` writes of a
    /// series value. All three are folded into the masks of admitting
    /// subscriptions at the top of this call — batches that link a
    /// series and append to it in one transaction route correctly. The
    /// extension runs even for failed batches (the applied prefix may
    /// have created links) and never narrows: masks only grow, so a
    /// stale over-wide mask costs an empty delta, never a missed one.
    pub fn on_commit(
        &self,
        hg: &HyGraph,
        muts: &[HgMutation],
        pre_vcap: usize,
        pre_ecap: usize,
        batch_failed: bool,
    ) {
        if self.is_empty() {
            return;
        }
        let topo = hg.topology();
        let new_vertices: Vec<VertexId> = (pre_vcap..topo.vertex_capacity())
            .map(VertexId::from)
            .collect();
        let new_edges: Vec<EdgeId> = (pre_ecap..topo.edge_capacity()).map(EdgeId::from).collect();
        let mut appended: Vec<SeriesId> = muts
            .iter()
            .filter_map(|m| match m {
                HgMutation::Append { series, .. } => Some(*series),
                _ => None,
            })
            .collect();
        appended.sort_unstable();
        appended.dedup();
        let appended_mask: u64 = appended
            .iter()
            .map(|&sid| shard_bit(self.router, sid))
            .fold(0, |m, b| m | b);

        let mut inner = self.lock();

        // fold this batch's new element → series links into the shard
        // masks before anything routes (see the doc-comment): the link
        // sources are new elements (δ or series-valued props) and
        // series-valued property writes.
        if !inner.series_any.is_empty() {
            let mut links: Vec<(bool, Vec<hygraph_types::Label>, u64)> = Vec::new();
            for &v in &new_vertices {
                if let Ok(data) = topo.vertex(v) {
                    let bits =
                        element_series_bits(hg, ElementRef::Vertex(v), &data.props, self.router);
                    if bits != 0 {
                        links.push((true, data.labels.clone(), bits));
                    }
                }
            }
            for &e in &new_edges {
                if let Ok(data) = topo.edge(e) {
                    let bits =
                        element_series_bits(hg, ElementRef::Edge(e), &data.props, self.router);
                    if bits != 0 {
                        links.push((false, data.labels.clone(), bits));
                    }
                }
            }
            for m in muts {
                if let HgMutation::SetProperty {
                    el,
                    value: hygraph_types::PropertyValue::Series(sid),
                    ..
                } = m
                {
                    // conservative even when the batch failed before
                    // this write landed: a too-wide mask is sound
                    let bits = shard_bit(self.router, *sid);
                    match el {
                        ElementRef::Vertex(v) => {
                            if let Ok(data) = topo.vertex(*v) {
                                links.push((true, data.labels.clone(), bits));
                            }
                        }
                        ElementRef::Edge(e) => {
                            if let Ok(data) = topo.edge(*e) {
                                links.push((false, data.labels.clone(), bits));
                            }
                        }
                        ElementRef::Subgraph(_) => {}
                    }
                }
            }
            if !links.is_empty() {
                let readers: Vec<u64> = inner.series_any.iter().copied().collect();
                for id in readers {
                    let Some(sub) = inner.subs.get_mut(&id) else {
                        continue;
                    };
                    for (is_vertex, labels, bits) in &links {
                        let admits = if *is_vertex {
                            sub.keys.admits_vertex(labels)
                        } else {
                            sub.keys.admits_edge(labels)
                        };
                        if admits {
                            sub.series_mask |= bits;
                        }
                    }
                }
            }
        }

        // route: which subscriptions does this batch touch, and do any
        // of its mutations force their rebuild path?
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        let mut rebuild: BTreeSet<u64> = BTreeSet::new();
        if batch_failed {
            // an unknown prefix applied; recompute everything
            rebuild.extend(inner.subs.keys().copied());
            touched.extend(inner.subs.keys().copied());
        } else {
            let route_v =
                |inner: &Inner, labels: &[hygraph_types::Label], out: &mut BTreeSet<u64>| {
                    out.extend(inner.v_wild.iter().copied());
                    for l in labels {
                        if let Some(set) = inner.by_vlabel.get(l.as_str()) {
                            out.extend(set.iter().copied());
                        }
                    }
                };
            let route_e =
                |inner: &Inner, labels: &[hygraph_types::Label], out: &mut BTreeSet<u64>| {
                    out.extend(inner.e_wild.iter().copied());
                    for l in labels {
                        if let Some(set) = inner.by_elabel.get(l.as_str()) {
                            out.extend(set.iter().copied());
                        }
                    }
                };
            for &v in &new_vertices {
                match topo.vertex(v) {
                    Ok(data) => route_v(&inner, &data.labels, &mut touched),
                    Err(_) => touched.extend(inner.subs.keys().copied()),
                }
            }
            for &e in &new_edges {
                match topo.edge(e) {
                    Ok(data) => route_e(&inner, &data.labels, &mut touched),
                    Err(_) => touched.extend(inner.subs.keys().copied()),
                }
            }
            if !appended.is_empty() {
                if self.router.is_single() {
                    // one shard: every reachable series shares bit 0
                    // with every reader — the flat pre-shard route
                    touched.extend(inner.series_any.iter().copied());
                } else {
                    // per-shard index: only series-readers whose mask
                    // intersects the appended shards can change
                    touched.extend(inner.series_any.iter().copied().filter(|id| {
                        inner
                            .subs
                            .get(id)
                            .is_none_or(|s| s.series_mask & appended_mask != 0)
                    }));
                }
            }
            for m in muts {
                let (el, prop_key) = match m {
                    HgMutation::SetProperty { el, key, .. } => (Some(*el), Some(key.as_str())),
                    HgMutation::CloseVertex { v, .. } => (Some(ElementRef::Vertex(*v)), None),
                    HgMutation::CloseEdge { e, .. } => (Some(ElementRef::Edge(*e)), None),
                    _ => (None, None),
                };
                let mut routed: BTreeSet<u64> = BTreeSet::new();
                match el {
                    None => continue,
                    Some(ElementRef::Subgraph(_)) => continue, // invisible to plans
                    Some(ElementRef::Vertex(v)) => match topo.vertex(v) {
                        Ok(data) => {
                            route_v(&inner, &data.labels, &mut routed);
                            // closing a vertex cascades to incident
                            // edges; property changes can flip pushed
                            // edge predicates only via that vertex's own
                            // matches, but route incident edge labels
                            // for both — over-approximation is free
                            let elabels: Vec<hygraph_types::Label> = topo
                                .incident_edges(v)
                                .flat_map(|e| e.labels.iter().cloned())
                                .collect();
                            route_e(&inner, &elabels, &mut routed);
                        }
                        Err(_) => routed.extend(inner.subs.keys().copied()),
                    },
                    Some(ElementRef::Edge(e)) => match topo.edge(e) {
                        Ok(data) => route_e(&inner, &data.labels, &mut routed),
                        Err(_) => routed.extend(inner.subs.keys().copied()),
                    },
                }
                // a property rewrite only matters to plans that read
                // that key — the footprint is exact (see
                // `property_footprint`), so dropping the rest is sound,
                // not an approximation. Closes keep the broad route:
                // validity shifts match sets regardless of properties.
                if let Some(key) = prop_key {
                    routed
                        .retain(|id| inner.subs.get(id).is_none_or(|s| s.prop_keys.contains(key)));
                }
                touched.extend(routed.iter().copied());
                rebuild.extend(routed);
            }
        }

        // advance each touched subscription and push its delta
        let mut dead: Vec<(u64, String)> = Vec::new();
        for id in touched {
            let Some(sub) = inner.subs.get_mut(&id) else {
                continue;
            };
            let forced = rebuild.contains(&id);
            let delta = match &mut sub.mode {
                Mode::Incremental(st) => {
                    if forced {
                        self.reruns.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = hygraph_metrics::get() {
                            m.sub.fallback_reruns.inc();
                        }
                    }
                    st.apply_batch(hg, &new_vertices, &new_edges, &appended, forced)
                }
                Mode::Rerun { planned, rows } => {
                    self.reruns.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = hygraph_metrics::get() {
                        m.sub.fallback_reruns.inc();
                    }
                    match execute_planned(hg, planned, ExecMode::Auto) {
                        Ok(res) => {
                            let d = diff_rows(rows, &res.rows);
                            *rows = res.rows;
                            Ok(d)
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            match delta {
                Ok(d) if d.is_empty() => {}
                Ok(d) => {
                    if sub.sink.push_delta(id, &d) {
                        if let Some(m) = hygraph_metrics::get() {
                            m.sub.deltas_pushed.inc();
                        }
                    } else {
                        if let Some(m) = hygraph_metrics::get() {
                            m.sub.slow_consumer_drops.inc();
                        }
                        dead.push((id, "slow consumer: push buffer full".to_string()));
                    }
                }
                Err(e) => dead.push((id, format!("standing query failed: {e}"))),
            }
        }
        for (id, reason) in dead {
            if let Some(sub) = inner.remove(id) {
                sub.sink.close(id, &reason);
                if let Some(m) = hygraph_metrics::get() {
                    m.sub.active.dec();
                }
            }
        }
        self.active.store(inner.subs.len(), Ordering::Release);
    }

    /// The current materialised snapshot of `sub_id` — what a client
    /// that applied every pushed delta must hold. Test/diagnostic hook.
    pub fn snapshot_of(&self, sub_id: u64) -> Option<QueryResult> {
        let inner = self.lock();
        let sub = inner.subs.get(&sub_id)?;
        Some(sub.mode.snapshot(&sub.columns))
    }

    /// The shard bitmask appends are routed against for `sub_id`
    /// (`1 << shard` per reachable series; `0` for plans that read no
    /// series). Test/diagnostic hook.
    pub fn series_shard_mask(&self, sub_id: u64) -> Option<u64> {
        self.lock().subs.get(&sub_id).map(|s| s.series_mask)
    }
}

impl std::fmt::Debug for SubscriptionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionRegistry")
            .field("active", &self.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_core::HyGraphBuilder;
    use hygraph_persist::Durable;
    use hygraph_query::incremental::apply_delta;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Duration, Interval, Label, PropertyMap, Timestamp, Value};

    /// A sink recording every push; `cap` makes it refuse deltas to
    /// exercise the slow-consumer path.
    #[derive(Default)]
    struct RecordingSink {
        cap: Option<usize>,
        deltas: Mutex<Vec<(u64, Delta)>>,
        closed: Mutex<Vec<(u64, String)>>,
    }

    impl DeltaSink for RecordingSink {
        fn push_delta(&self, sub_id: u64, delta: &Delta) -> bool {
            let mut q = self.deltas.lock().unwrap();
            if self.cap.is_some_and(|c| q.len() >= c) {
                return false;
            }
            q.push((sub_id, delta.clone()));
            true
        }

        fn close(&self, sub_id: u64, reason: &str) {
            self.closed
                .lock()
                .unwrap()
                .push((sub_id, reason.to_string()));
        }
    }

    fn instance() -> HyGraph {
        let spend =
            TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 20, |i| i as f64);
        HyGraphBuilder::new()
            .univariate("spend", &spend)
            .pg_vertex("u1", ["User"], props! {"name" => "ada", "age" => 34i64})
            .ts_vertex("c1", ["Card"], "spend")
            .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
            .pg_vertex("s1", ["Station"], props! {"name" => "dock-1"})
            .pg_edge(None, "u1", "c1", ["USES"], props! {})
            .pg_edge(None, "c1", "m1", ["TX"], props! {"amount" => 120.0})
            .build()
            .unwrap()
            .hygraph
    }

    /// Applies `muts` to `hg` and runs them through the registry the way
    /// the engine does: capture capacities, apply, notify.
    fn commit(reg: &SubscriptionRegistry, hg: &mut HyGraph, muts: Vec<HgMutation>) {
        let pre_v = hg.topology().vertex_capacity();
        let pre_e = hg.topology().edge_capacity();
        let mut failed = false;
        for m in &muts {
            if hg.apply(m).is_err() {
                failed = true;
                break;
            }
        }
        reg.on_commit(hg, &muts, pre_v, pre_e, failed);
    }

    fn add_user(name: &str) -> HgMutation {
        HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: props! {"name" => name, "age" => 50i64},
            validity: Interval::ALL,
        }
    }

    #[test]
    fn routed_subscription_tracks_and_unrelated_stays_silent() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let (users, mut local) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN u.name AS name", 1, sink.clone())
            .unwrap();
        let (stations, station_snap) = reg
            .subscribe(
                &hg,
                "MATCH (s:Station) RETURN s.name AS name",
                1,
                sink.clone(),
            )
            .unwrap();
        assert_eq!(local.rows.len(), 1);
        assert_eq!(reg.len(), 2);

        commit(&reg, &mut hg, vec![add_user("grace"), add_user("alan")]);
        let pushed = sink.deltas.lock().unwrap().clone();
        assert_eq!(pushed.len(), 1, "one delta frame for the one affected sub");
        assert_eq!(pushed[0].0, users);
        apply_delta(&mut local, &pushed[0].1).unwrap();
        assert_eq!(
            local.rows.iter().map(|r| &r[0]).collect::<Vec<_>>(),
            vec![
                &Value::Str("ada".into()),
                &Value::Str("grace".into()),
                &Value::Str("alan".into()),
            ]
        );
        assert_eq!(reg.snapshot_of(users).unwrap(), local);
        // the Station standing query saw zero frames and kept its rows
        assert_eq!(reg.snapshot_of(stations).unwrap(), station_snap);
    }

    #[test]
    fn rerun_mode_handles_unsupported_plans() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let (id, mut local) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN COUNT(u) AS n", 7, sink.clone())
            .unwrap();
        assert_eq!(local.rows, vec![vec![Value::Int(1)]]);
        commit(&reg, &mut hg, vec![add_user("grace")]);
        let pushed = sink.deltas.lock().unwrap().clone();
        assert_eq!(pushed.len(), 1);
        apply_delta(&mut local, &pushed[0].1).unwrap();
        assert_eq!(local.rows, vec![vec![Value::Int(2)]]);
        assert_eq!(reg.snapshot_of(id).unwrap(), local);
    }

    #[test]
    fn property_update_takes_rebuild_path() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let (_, mut local) = reg
            .subscribe(
                &hg,
                "MATCH (u:User) WHERE u.age > 40 RETURN u.name AS name",
                1,
                sink.clone(),
            )
            .unwrap();
        assert!(local.rows.is_empty());
        let ada = hg.topology().vertices_with_label("User").next().unwrap().id;
        commit(
            &reg,
            &mut hg,
            vec![HgMutation::SetProperty {
                el: ElementRef::Vertex(ada),
                key: "age".into(),
                value: hygraph_types::PropertyValue::Static(70i64.into()),
            }],
        );
        let pushed = sink.deltas.lock().unwrap().clone();
        assert_eq!(pushed.len(), 1);
        apply_delta(&mut local, &pushed[0].1).unwrap();
        assert_eq!(local.rows, vec![vec![Value::Str("ada".into())]]);
    }

    #[test]
    fn untouched_property_key_skips_the_rebuild_entirely() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let (_, local) = reg
            .subscribe(
                &hg,
                "MATCH (u:User) WHERE u.age > 40 RETURN u.name AS name",
                1,
                sink.clone(),
            )
            .unwrap();
        assert!(local.rows.is_empty());
        let baseline = reg.rerun_count();
        let ada = hg.topology().vertices_with_label("User").next().unwrap().id;
        // a write to a key the plan never reads: not routed, no rerun
        commit(
            &reg,
            &mut hg,
            vec![HgMutation::SetProperty {
                el: ElementRef::Vertex(ada),
                key: "nickname".into(),
                value: hygraph_types::PropertyValue::Static("addie".into()),
            }],
        );
        assert_eq!(reg.rerun_count(), baseline, "untouched key must not rerun");
        assert!(sink.deltas.lock().unwrap().is_empty());
        // the same element, a key in the footprint: rerun fires and the
        // result delta arrives
        commit(
            &reg,
            &mut hg,
            vec![HgMutation::SetProperty {
                el: ElementRef::Vertex(ada),
                key: "age".into(),
                value: hygraph_types::PropertyValue::Static(70i64.into()),
            }],
        );
        assert_eq!(reg.rerun_count(), baseline + 1, "footprint key reruns");
        assert_eq!(sink.deltas.lock().unwrap().len(), 1);
    }

    #[test]
    fn slow_consumer_is_dropped_with_typed_close() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink {
            cap: Some(0),
            ..RecordingSink::default()
        });
        let (id, _) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN u.name AS n", 1, sink.clone())
            .unwrap();
        commit(&reg, &mut hg, vec![add_user("grace")]);
        assert_eq!(reg.len(), 0, "slow consumer removed");
        let closed = sink.closed.lock().unwrap().clone();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].0, id);
        assert!(closed[0].1.contains("slow consumer"), "{}", closed[0].1);
    }

    #[test]
    fn subscription_cap_and_lifecycle() {
        let hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default().max_subscriptions(1));
        let sink = Arc::new(RecordingSink::default());
        let (id, _) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN u.name AS n", 1, sink.clone())
            .unwrap();
        let err = reg
            .subscribe(
                &hg,
                "MATCH (m:Merchant) RETURN m.name AS n",
                1,
                sink.clone(),
            )
            .unwrap_err();
        assert!(matches!(err, HyGraphError::Unavailable(_)), "{err:?}");
        assert!(!reg.unsubscribe(2, id), "wrong connection cannot remove");
        assert!(reg.unsubscribe(1, id));
        assert!(reg.is_empty());
        // EXPLAIN is refused with guidance
        let err = reg
            .subscribe(&hg, "EXPLAIN MATCH (u:User) RETURN u.name AS n", 1, sink)
            .unwrap_err();
        assert!(err.to_string().contains("EXPLAIN"), "{err}");
    }

    #[test]
    fn fingerprint_twin_shares_state_and_drop_conn_cleans_up() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let text = "MATCH (u:User)-[:USES]->(c:Card) RETURN u.name AS n";
        let (a, snap_a) = reg.subscribe(&hg, text, 1, sink.clone()).unwrap();
        let (b, snap_b) = reg.subscribe(&hg, text, 2, sink.clone()).unwrap();
        assert_eq!(snap_a, snap_b, "twin subscribe clones the snapshot");
        let src = hg.topology().vertices_with_label("User").next().unwrap().id;
        let dst = hg.topology().vertices_with_label("Card").next().unwrap().id;
        commit(
            &reg,
            &mut hg,
            vec![HgMutation::AddPgEdge {
                src,
                dst,
                labels: vec![Label::new("USES")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            }],
        );
        let pushed = sink.deltas.lock().unwrap().clone();
        let ids: BTreeSet<u64> = pushed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, BTreeSet::from([a, b]), "both twins got the delta");
        reg.drop_conn(1);
        assert_eq!(reg.len(), 1);
        reg.drop_conn(2);
        assert!(reg.is_empty());
    }

    /// An instance with two ts-vertices whose series land on different
    /// shards under a 2-way router (ids are dense from 0, routing is
    /// `id % shards`). All-ts so a wildcard `DELTA(x)` read is valid.
    fn two_series_instance() -> HyGraph {
        let spend =
            TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 20, |i| i as f64);
        let temp = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 20, |i| {
            2.0 * i as f64
        });
        HyGraphBuilder::new()
            .univariate("spend", &spend)
            .univariate("temp", &temp)
            .ts_vertex("c1", ["Card"], "spend")
            .ts_vertex("s1", ["Sensor"], "temp")
            .build()
            .unwrap()
            .hygraph
    }

    #[test]
    fn series_masks_partition_by_footprint_and_route_appends_by_shard() {
        let mut hg = two_series_instance();
        let reg = SubscriptionRegistry::new(SubConfig::default().shards(2));
        let sink = Arc::new(RecordingSink::default());
        let card = hg.topology().vertices_with_label("Card").next().unwrap().id;
        let sensor = hg
            .topology()
            .vertices_with_label("Sensor")
            .next()
            .unwrap()
            .id;
        let spend = hg.delta_id(ElementRef::Vertex(card)).unwrap();
        let temp = hg.delta_id(ElementRef::Vertex(sensor)).unwrap();
        let spend_bit = 1u64 << reg.router().of_series(spend);
        let temp_bit = 1u64 << reg.router().of_series(temp);
        assert_ne!(spend_bit, temp_bit, "dense ids must straddle 2 shards");

        let (cards, _) = reg
            .subscribe(
                &hg,
                "MATCH (c:Card) RETURN SUM(DELTA(c) IN [0, 1000)) AS s",
                1,
                sink.clone(),
            )
            .unwrap();
        let (sensors, _) = reg
            .subscribe(
                &hg,
                "MATCH (s:Sensor) RETURN SUM(DELTA(s) IN [0, 1000)) AS s",
                1,
                sink.clone(),
            )
            .unwrap();
        let (wild, _) = reg
            .subscribe(
                &hg,
                "MATCH (x) RETURN SUM(DELTA(x) IN [0, 1000)) AS s",
                1,
                sink.clone(),
            )
            .unwrap();
        let (users, _) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN u.name AS n", 1, sink.clone())
            .unwrap(); // no User exists yet: empty snapshot, no series

        // subscribe-time masks: exactly the shards of admitted series
        assert_eq!(reg.series_shard_mask(cards), Some(spend_bit));
        assert_eq!(reg.series_shard_mask(sensors), Some(temp_bit));
        assert_eq!(reg.series_shard_mask(wild), Some(spend_bit | temp_bit));
        assert_eq!(reg.series_shard_mask(users), Some(0), "no series read");

        // an append to spend reaches the Card and wildcard readers only
        commit(
            &reg,
            &mut hg,
            vec![HgMutation::Append {
                series: spend,
                t: Timestamp::from_millis(500),
                row: vec![100.0],
            }],
        );
        let pushed = sink.deltas.lock().unwrap().clone();
        let ids: BTreeSet<u64> = pushed.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, BTreeSet::from([cards, wild]));
    }

    #[test]
    fn commit_linking_and_appending_in_one_batch_extends_the_mask_first() {
        let mut hg = two_series_instance();
        let reg = SubscriptionRegistry::new(SubConfig::default().shards(2));
        let sink = Arc::new(RecordingSink::default());
        // subscribe while no Meter exists: the mask starts empty
        let (meters, mut local) = reg
            .subscribe(
                &hg,
                "MATCH (m:Meter) RETURN SUM(DELTA(m) IN [0, 1000)) AS s",
                1,
                sink.clone(),
            )
            .unwrap();
        assert_eq!(reg.series_shard_mask(meters), Some(0));
        assert!(local.rows.is_empty());

        // one batch: register a series, bind a Meter to it, append —
        // the link must be folded into the mask before append routing
        let next = SeriesId::new(2); // two series exist; ids are dense
        commit(
            &reg,
            &mut hg,
            vec![
                HgMutation::AddSeries {
                    names: vec!["kwh".into()],
                    rows: vec![(Timestamp::from_millis(0), vec![1.0])],
                },
                HgMutation::AddTsVertex {
                    labels: vec![Label::new("Meter")],
                    series: next,
                },
                HgMutation::Append {
                    series: next,
                    t: Timestamp::from_millis(10),
                    row: vec![5.0],
                },
            ],
        );
        assert_eq!(
            reg.series_shard_mask(meters),
            Some(1u64 << reg.router().of_series(next))
        );
        let pushed = sink.deltas.lock().unwrap().clone();
        assert!(!pushed.is_empty(), "the new Meter's rows must arrive");
        for (id, d) in &pushed {
            assert_eq!(*id, meters);
            apply_delta(&mut local, d).unwrap();
        }
        assert_eq!(local.rows, vec![vec![Value::Float(6.0)]]);
    }

    #[test]
    fn failed_batch_rebuilds_through_the_applied_prefix() {
        let mut hg = instance();
        let reg = SubscriptionRegistry::new(SubConfig::default());
        let sink = Arc::new(RecordingSink::default());
        let (id, mut local) = reg
            .subscribe(&hg, "MATCH (u:User) RETURN u.name AS n", 1, sink.clone())
            .unwrap();
        // prefix applies (new user), then a bad append fails the batch
        commit(
            &reg,
            &mut hg,
            vec![
                add_user("grace"),
                HgMutation::Append {
                    series: SeriesId::new(999),
                    t: Timestamp::from_millis(1),
                    row: vec![1.0],
                },
            ],
        );
        let pushed = sink.deltas.lock().unwrap().clone();
        assert_eq!(
            pushed.len(),
            1,
            "prefix change still reaches the subscriber"
        );
        apply_delta(&mut local, &pushed[0].1).unwrap();
        assert_eq!(local.rows.len(), 2);
        assert_eq!(reg.snapshot_of(id).unwrap(), local);
    }
}
