//! Subscription-layer configuration, following the workspace's layered
//! knob convention: defaults, then `HYGRAPH_SUB_*` environment
//! variables (read once per process), then explicit builder overrides.

use std::sync::OnceLock;

/// Default cap on concurrently registered subscriptions.
pub const DEFAULT_MAX_SUBSCRIPTIONS: usize = 1024;

/// Default per-connection push-buffer depth (frames queued but not yet
/// written); beyond it the subscriber is a slow consumer and is
/// disconnected with a typed close.
pub const DEFAULT_PUSH_BUFFER: usize = 256;

/// Effective subscription-layer settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubConfig {
    /// Maximum registered subscriptions (`HYGRAPH_SUB_MAX`); further
    /// `SUBSCRIBE` requests are refused with a typed error.
    pub max_subscriptions: usize,
    /// Per-connection push-buffer depth (`HYGRAPH_SUB_BUFFER`).
    pub push_buffer: usize,
    /// Shard count the registry's append-routing index partitions by —
    /// the workspace shard knob ([`hygraph_types::shard`], so
    /// `HYGRAPH_SHARDS` by default), not a `HYGRAPH_SUB_*` one: routing
    /// granularity tracks the engine's storage partitioning. `1` keeps
    /// the flat (route-every-series-reader) index.
    pub shards: usize,
}

impl Default for SubConfig {
    fn default() -> Self {
        Self {
            max_subscriptions: DEFAULT_MAX_SUBSCRIPTIONS,
            push_buffer: DEFAULT_PUSH_BUFFER,
            shards: hygraph_types::shard::configured_shards(),
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl SubConfig {
    /// Defaults overlaid with the `HYGRAPH_SUB_*` environment knobs,
    /// read once per process.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<SubConfig> = OnceLock::new();
        *CACHED.get_or_init(|| Self {
            max_subscriptions: env_usize("HYGRAPH_SUB_MAX", DEFAULT_MAX_SUBSCRIPTIONS),
            push_buffer: env_usize("HYGRAPH_SUB_BUFFER", DEFAULT_PUSH_BUFFER),
            shards: hygraph_types::shard::configured_shards(),
        })
    }

    /// Overrides the subscription cap.
    pub fn max_subscriptions(mut self, n: usize) -> Self {
        self.max_subscriptions = n;
        self
    }

    /// Overrides the push-buffer depth.
    pub fn push_buffer(mut self, n: usize) -> Self {
        self.push_buffer = n;
        self
    }

    /// Overrides the append-routing shard count (clamped to the
    /// workspace shard ceiling when the router is built).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }
}
