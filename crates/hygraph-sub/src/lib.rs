//! hygraph-sub — standing HyQL queries with incremental delta push.
//!
//! The paper's fraud-detection scenario is a *standing* question: the
//! interesting answer is not one result set but the stream of changes
//! to it as transactions commit. This crate turns any HyQL query into
//! such a standing query: a [`SubscriptionRegistry`] holds, per
//! subscription, the optimized plan plus a materialised result, and on
//! every committed mutation batch computes a positional edit script
//! ([`Delta`]) against the previous result — incrementally where the
//! plan shape allows it (`hygraph_query::incremental`), by full
//! re-execution plus [`diff_rows`] otherwise. Deltas flow out through a
//! [`DeltaSink`] the serving layer implements over its per-connection
//! push buffers; this crate stays transport-agnostic.
//!
//! Routing is the point: an inverted index from vertex/edge labels and
//! series usage to subscriptions means a commit touching `TX` edges
//! never even evaluates a standing query over `Station` vertices —
//! unaffected subscriptions pay one hash lookup, push zero frames.
//!
//! Knob catalogue (`OPERATIONS.md` has the full table):
//! `HYGRAPH_SUB_MAX` caps registered subscriptions,
//! `HYGRAPH_SUB_BUFFER` sizes the serving layer's per-connection push
//! buffers.

#![warn(missing_docs)]

pub mod config;
pub mod registry;

pub use config::SubConfig;
pub use hygraph_query::incremental::{apply_delta, diff_rows, Delta, DeltaOp};
pub use registry::{DeltaSink, SubscriptionRegistry};
