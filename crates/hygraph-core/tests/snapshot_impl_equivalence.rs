//! Checkpoint interchangeability across snapshot implementations: the
//! same logical content built under the copy-on-write collections and
//! under the persistent maps must encode to **byte-identical**
//! checkpoints, and a checkpoint written by either implementation must
//! decode and re-encode bit-exactly under the other. This is what lets
//! `HYGRAPH_SNAPSHOT_IMPL` be flipped on an existing data directory.

use hygraph_core::binio::{from_bytes, to_bytes};
use hygraph_core::model::ElementRef;
use hygraph_core::HyGraph;
use hygraph_ts::{MultiSeries, TimeSeries};
use hygraph_types::pmap::SnapshotImpl;
use hygraph_types::{props, Interval, Timestamp};
use std::sync::Mutex;

/// [`SnapshotImpl::install`] is process-global; serialise the tests.
static IMPL_GUARD: Mutex<()> = Mutex::new(());

fn ts(ms: i64) -> Timestamp {
    Timestamp::from_millis(ms)
}

/// A content mix covering every encoded section: multivariate and
/// univariate series, both vertex kinds, both edge kinds, properties
/// updated after the fact, and a subgraph with memberships.
fn build() -> HyGraph {
    let mut hg = HyGraph::new();
    let mut m = MultiSeries::new(["price", "volume"]);
    m.push(ts(0), &[100.5, 3.0]).unwrap();
    m.push(ts(60_000), &[101.25, 7.0]).unwrap();
    let sid = hg.add_series(m);
    let mut stations = Vec::new();
    for i in 0..40i64 {
        let s = hg.add_univariate_series(
            &format!("avail-{i}"),
            &TimeSeries::from_pairs([(ts(i), i as f64), (ts(i + 1_000), 0.5)]),
        );
        let v = hg
            .add_ts_vertex(["Station".to_string(), format!("Zone{}", i % 8)], s)
            .unwrap();
        stations.push(v);
    }
    let hub = hg.add_pg_vertex_valid(
        ["Hub"],
        props! {"name" => "central", "docks" => 42i64},
        Interval::new(ts(0), ts(900_000)),
    );
    for (i, &v) in stations.iter().enumerate() {
        hg.add_pg_edge_valid(
            hub,
            v,
            ["FEEDS"],
            props! {"order" => i as i64},
            Interval::new(ts(0), ts(900_000)),
        )
        .unwrap();
    }
    hg.add_ts_edge(stations[0], hub, ["FLOW"], sid).unwrap();
    hg.set_property(ElementRef::Vertex(hub), "docks", 48i64)
        .unwrap();
    let sg = hg.create_subgraph(["Downtown"], props! {"zone" => 3i64}, Interval::ALL);
    for &v in &stations[..5] {
        hg.add_subgraph_vertex(sg, v, Interval::new(ts(0), ts(500)))
            .unwrap();
    }
    hg
}

#[test]
fn checkpoints_are_byte_identical_across_impls() {
    let _g = IMPL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    SnapshotImpl::Cow.install();
    let cow_bytes = to_bytes(&build());
    SnapshotImpl::Pmap.install();
    let pmap_bytes = to_bytes(&build());
    SnapshotImpl::clear_install();
    assert_eq!(
        cow_bytes, pmap_bytes,
        "the canonical checkpoint must not depend on the snapshot implementation"
    );
}

#[test]
fn checkpoints_decode_under_either_impl() {
    let _g = IMPL_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    SnapshotImpl::Cow.install();
    let bytes = to_bytes(&build());
    for decoder in [SnapshotImpl::Pmap, SnapshotImpl::Cow] {
        decoder.install();
        let back = from_bytes(&bytes).expect("decode");
        assert_eq!(
            to_bytes(&back),
            bytes,
            "re-encode under {decoder:?} must be bit-exact"
        );
        assert_eq!(back.vertex_count(), 41);
        assert_eq!(back.edge_count(), 41);
        assert_eq!(back.series_count(), 41);
    }
    SnapshotImpl::clear_install();
}
