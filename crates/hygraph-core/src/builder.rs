//! Fluent construction of HyGraph instances with integrity validation.
//!
//! The builder lets callers wire vertices and edges by *name* instead of
//! juggling ids, then validates the finished instance (R2) in
//! [`HyGraphBuilder::build`]. Names are purely a construction-time
//! convenience; the built instance is a plain [`HyGraph`] plus name→id
//! maps for follow-up queries.

use crate::model::{ElementRef, HyGraph};
use hygraph_ts::{MultiSeries, TimeSeries};
use hygraph_types::{EdgeId, HyGraphError, Interval, PropertyMap, Result, SeriesId, VertexId};
use std::collections::HashMap;

/// A finished build: the instance plus name → id maps.
#[derive(Debug)]
pub struct BuiltHyGraph {
    /// The validated instance.
    pub hygraph: HyGraph,
    /// Vertex name → id.
    pub vertices: HashMap<String, VertexId>,
    /// Edge name → id (only edges given names).
    pub edges: HashMap<String, EdgeId>,
    /// Series name → id (only series given names).
    pub series: HashMap<String, SeriesId>,
}

impl BuiltHyGraph {
    /// Vertex id by name; panics if absent (names are construction-time
    /// constants, so a miss is a programming error).
    pub fn v(&self, name: &str) -> VertexId {
        self.vertices[name]
    }

    /// Edge id by name.
    pub fn e(&self, name: &str) -> EdgeId {
        self.edges[name]
    }

    /// Series id by name.
    pub fn s(&self, name: &str) -> SeriesId {
        self.series[name]
    }
}

/// Fluent builder; see the crate docs for an end-to-end example.
#[derive(Debug, Default)]
pub struct HyGraphBuilder {
    hg: HyGraph,
    vertices: HashMap<String, VertexId>,
    edges: HashMap<String, EdgeId>,
    series: HashMap<String, SeriesId>,
    error: Option<HyGraphError>,
}

impl HyGraphBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn record_err(&mut self, e: HyGraphError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn lookup_vertex(&mut self, name: &str) -> Option<VertexId> {
        match self.vertices.get(name) {
            Some(&v) => Some(v),
            None => {
                self.record_err(HyGraphError::invalid(format!(
                    "unknown vertex name '{name}'"
                )));
                None
            }
        }
    }

    /// Registers a named multivariate series.
    pub fn series(mut self, name: &str, s: MultiSeries) -> Self {
        let id = self.hg.add_series(s);
        self.series.insert(name.to_owned(), id);
        self
    }

    /// Registers a named univariate series.
    pub fn univariate(self, name: &str, s: &TimeSeries) -> Self {
        let m = MultiSeries::from_univariate(name, s);
        self.series(name, m)
    }

    /// Adds a named property-graph vertex.
    pub fn pg_vertex(
        mut self,
        name: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        props: PropertyMap,
    ) -> Self {
        let v = self.hg.add_pg_vertex(labels, props);
        self.vertices.insert(name.to_owned(), v);
        self
    }

    /// Adds a named property-graph vertex with explicit validity.
    pub fn pg_vertex_valid(
        mut self,
        name: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> Self {
        let v = self.hg.add_pg_vertex_valid(labels, props, validity);
        self.vertices.insert(name.to_owned(), v);
        self
    }

    /// Adds a named time-series vertex backed by the named series.
    pub fn ts_vertex(
        mut self,
        name: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        series_name: &str,
    ) -> Self {
        let Some(&sid) = self.series.get(series_name) else {
            self.record_err(HyGraphError::invalid(format!(
                "unknown series name '{series_name}'"
            )));
            return self;
        };
        match self.hg.add_ts_vertex(labels, sid) {
            Ok(v) => {
                self.vertices.insert(name.to_owned(), v);
            }
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Adds a property-graph edge between named vertices.
    pub fn pg_edge(
        mut self,
        name: Option<&str>,
        src: &str,
        dst: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        props: PropertyMap,
    ) -> Self {
        let (Some(s), Some(d)) = (self.lookup_vertex(src), self.lookup_vertex(dst)) else {
            return self;
        };
        match self.hg.add_pg_edge(s, d, labels, props) {
            Ok(e) => {
                if let Some(n) = name {
                    self.edges.insert(n.to_owned(), e);
                }
            }
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Adds a property-graph edge with explicit validity.
    pub fn pg_edge_valid(
        mut self,
        name: Option<&str>,
        src: &str,
        dst: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> Self {
        let (Some(s), Some(d)) = (self.lookup_vertex(src), self.lookup_vertex(dst)) else {
            return self;
        };
        match self.hg.add_pg_edge_valid(s, d, labels, props, validity) {
            Ok(e) => {
                if let Some(n) = name {
                    self.edges.insert(n.to_owned(), e);
                }
            }
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Adds a time-series edge backed by the named series.
    pub fn ts_edge(
        mut self,
        name: Option<&str>,
        src: &str,
        dst: &str,
        labels: impl IntoIterator<Item = impl Into<hygraph_types::Label>>,
        series_name: &str,
    ) -> Self {
        let (Some(s), Some(d)) = (self.lookup_vertex(src), self.lookup_vertex(dst)) else {
            return self;
        };
        let Some(&sid) = self.series.get(series_name) else {
            self.record_err(HyGraphError::invalid(format!(
                "unknown series name '{series_name}'"
            )));
            return self;
        };
        match self.hg.add_ts_edge(s, d, labels, sid) {
            Ok(e) => {
                if let Some(n) = name {
                    self.edges.insert(n.to_owned(), e);
                }
            }
            Err(e) => self.record_err(e),
        }
        self
    }

    /// Attaches a named series as a property of a named pg-vertex.
    pub fn series_property(mut self, vertex: &str, key: &str, series_name: &str) -> Self {
        let Some(v) = self.lookup_vertex(vertex) else {
            return self;
        };
        let Some(&sid) = self.series.get(series_name) else {
            self.record_err(HyGraphError::invalid(format!(
                "unknown series name '{series_name}'"
            )));
            return self;
        };
        if let Err(e) = self.hg.set_property(ElementRef::Vertex(v), key, sid) {
            self.record_err(e);
        }
        self
    }

    /// Finishes the build: reports the first construction error, then
    /// validates the instance end-to-end.
    pub fn build(self) -> Result<BuiltHyGraph> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.hg.validate()?;
        Ok(BuiltHyGraph {
            hygraph: self.hg,
            vertices: self.vertices,
            edges: self.edges,
            series: self.series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElementKind;
    use hygraph_types::{props, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn spend() -> TimeSeries {
        TimeSeries::from_pairs([(ts(0), 10.0), (ts(10), 12.0), (ts(20), 11.0)])
    }

    #[test]
    fn fluent_build() {
        let built = HyGraphBuilder::new()
            .univariate("card1_balance", &spend())
            .univariate("tx_flow", &spend())
            .pg_vertex("alice", ["User"], props! {"name" => "alice"})
            .pg_vertex("m1", ["Merchant"], props! {})
            .ts_vertex("card1", ["CreditCard"], "card1_balance")
            .pg_edge(Some("uses"), "alice", "card1", ["USES"], props! {})
            .ts_edge(Some("flow"), "card1", "m1", ["TX_FLOW"], "tx_flow")
            .series_property("alice", "spending", "card1_balance")
            .build()
            .unwrap();
        let hg = &built.hygraph;
        assert_eq!(hg.vertex_count(), 3);
        assert_eq!(hg.edge_count(), 2);
        assert_eq!(hg.vertex_kind(built.v("card1")).unwrap(), ElementKind::Ts);
        assert_eq!(hg.edge_kind(built.e("flow")).unwrap(), ElementKind::Ts);
        assert_eq!(
            hg.phi(ElementRef::Vertex(built.v("alice")), "spending")
                .unwrap()
                .unwrap()
                .as_series(),
            Some(built.s("card1_balance"))
        );
    }

    #[test]
    fn unknown_vertex_name_fails_build() {
        let err = HyGraphBuilder::new()
            .pg_vertex("a", ["X"], props! {})
            .pg_edge(None, "a", "ghost", ["E"], props! {})
            .build()
            .unwrap_err();
        assert!(matches!(err, HyGraphError::InvalidArgument(_)));
    }

    #[test]
    fn unknown_series_name_fails_build() {
        let err = HyGraphBuilder::new()
            .pg_vertex("a", ["X"], props! {})
            .ts_vertex("t", ["T"], "missing_series")
            .build()
            .unwrap_err();
        assert!(matches!(err, HyGraphError::InvalidArgument(_)));
    }

    #[test]
    fn first_error_wins() {
        let err = HyGraphBuilder::new()
            .pg_edge(None, "ghost1", "ghost2", ["E"], props! {})
            .ts_vertex("t", ["T"], "also_missing")
            .build()
            .unwrap_err();
        assert_eq!(err, HyGraphError::invalid("unknown vertex name 'ghost1'"));
    }

    #[test]
    fn build_validates_instance() {
        // pg_edge_valid outliving a vertex validity is caught by validate
        let err = HyGraphBuilder::new()
            .pg_vertex_valid("a", ["X"], props! {}, Interval::new(ts(0), ts(10)))
            .pg_vertex("b", ["X"], props! {})
            .pg_edge_valid(
                None,
                "a",
                "b",
                ["E"],
                props! {},
                Interval::new(ts(0), ts(100)),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, HyGraphError::TemporalIntegrity(_)));
    }

    #[test]
    fn empty_build_is_valid() {
        let built = HyGraphBuilder::new().build().unwrap();
        assert_eq!(built.hygraph.vertex_count(), 0);
        assert_eq!(built.hygraph.series_count(), 0);
    }
}
