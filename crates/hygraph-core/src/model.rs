//! The [`HyGraph`] type: the HGM tuple as a data structure.
//!
//! Internally the unified graph topology (both pg- and ts-elements) lives
//! in one [`TemporalGraph`], so every graph algorithm from
//! `hygraph-graph` runs unchanged over a HyGraph. Side tables record
//! each element's [`ElementKind`] and the δ mapping from ts-elements to
//! their series. The series set TS is a `BTreeMap` of [`MultiSeries`]
//! (deterministic iteration, dense ids).

use crate::subgraph::Subgraph;
use hygraph_graph::TemporalGraph;
use hygraph_ts::{MultiSeries, TimeSeries};
use hygraph_types::pmap::{SnapMap, SnapshotImpl};
use hygraph_types::{
    EdgeId, HyGraphError, Interval, Label, PropertyMap, PropertyValue, Result, SeriesId,
    SubgraphId, Timestamp, VertexId,
};
use std::sync::Arc;

/// Whether an element belongs to the property-graph or the time-series
/// partition of V/E.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Property-graph element (`v_pg` / `e_pg`).
    Pg,
    /// Time-series element (`v_ts` / `e_ts`): the element *is* a series.
    Ts,
}

impl ElementKind {
    fn name(self) -> &'static str {
        match self {
            ElementKind::Pg => "pg",
            ElementKind::Ts => "ts",
        }
    }
}

/// A reference to any addressable HyGraph element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElementRef {
    /// A vertex.
    Vertex(VertexId),
    /// An edge.
    Edge(EdgeId),
    /// A subgraph.
    Subgraph(SubgraphId),
}

/// A unified hybrid graph + time-series instance.
///
/// # Snapshot semantics
///
/// Every interior collection is structurally shared ([`SnapMap`] /
/// the dual-mode storage inside [`TemporalGraph`]), so `clone()` is a
/// handful of reference-count bumps — O(pointers), not O(data). In the
/// default `pmap` mode a mutation path-copies only the O(log n) trie
/// nodes it touches, so a commit costs O(batch) *no matter how many
/// older clones are pinned*. In the legacy `cow` mode
/// (`HYGRAPH_SNAPSHOT_IMPL=cow`) the first write after a clone
/// deep-copies the touched collection instead. Either way, this is what
/// lets the sharded engine publish an immutable snapshot per commit and
/// hand lock-free `&HyGraph` views to readers: a reader's pinned clone
/// is never affected by later writes to the live instance, and vice
/// versa. Series payloads stay behind their own `Arc<MultiSeries>`, so
/// an append copies one series, never the set.
#[derive(Clone, Debug)]
pub struct HyGraph {
    pub(crate) graph: TemporalGraph,
    pub(crate) vertex_kind: SnapMap<VertexId, ElementKind>,
    pub(crate) edge_kind: SnapMap<EdgeId, ElementKind>,
    pub(crate) series: SnapMap<SeriesId, Arc<MultiSeries>>,
    pub(crate) delta_v: SnapMap<VertexId, SeriesId>,
    pub(crate) delta_e: SnapMap<EdgeId, SeriesId>,
    pub(crate) subgraphs: SnapMap<SubgraphId, Subgraph>,
    pub(crate) next_series: u64,
    pub(crate) next_subgraph: u64,
}

impl Default for HyGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl HyGraph {
    /// An empty HyGraph in the process-configured snapshot mode.
    pub fn new() -> Self {
        Self::with_snapshot_impl(SnapshotImpl::configured())
    }

    /// An empty HyGraph with an explicit snapshot implementation. Tests
    /// and the bench pin modes this way; everything else should use
    /// [`Self::new`] and the `HYGRAPH_SNAPSHOT_IMPL` environment knob.
    pub fn with_snapshot_impl(mode: SnapshotImpl) -> Self {
        Self {
            graph: TemporalGraph::new_with_impl(mode),
            vertex_kind: SnapMap::new_with(mode),
            edge_kind: SnapMap::new_with(mode),
            series: SnapMap::new_with(mode),
            delta_v: SnapMap::new_with(mode),
            delta_e: SnapMap::new_with(mode),
            subgraphs: SnapMap::new_with(mode),
            next_series: 0,
            next_subgraph: 0,
        }
    }

    /// The snapshot implementation this instance's storage was built in.
    pub fn snapshot_impl(&self) -> SnapshotImpl {
        self.graph.snapshot_impl()
    }

    // ---- TS: the series set ------------------------------------------

    /// Registers a multivariate series; returns its id.
    pub fn add_series(&mut self, s: MultiSeries) -> SeriesId {
        let id = SeriesId::new(self.next_series);
        self.next_series += 1;
        self.series.insert(id, Arc::new(s));
        id
    }

    /// Registers a univariate series under variable name `name`.
    pub fn add_univariate_series(&mut self, name: &str, s: &TimeSeries) -> SeriesId {
        self.add_series(MultiSeries::from_univariate(name, s))
    }

    /// The series with id `id`.
    pub fn series(&self, id: SeriesId) -> Result<&MultiSeries> {
        self.series
            .get(&id)
            .map(|s| &**s)
            .ok_or(HyGraphError::SeriesNotFound(id))
    }

    /// Mutable access to a series (for appends — R3 ingest path).
    ///
    /// One map traversal: [`SnapMap::get_mut`] probes presence itself,
    /// so a miss neither copies nor un-shares anything, and a hit
    /// path-copies only the touched trie path (pmap mode) before the
    /// per-series `Arc::make_mut` un-shares just that series.
    pub fn series_mut(&mut self, id: SeriesId) -> Result<&mut MultiSeries> {
        self.series
            .get_mut(&id)
            .map(Arc::make_mut)
            .ok_or(HyGraphError::SeriesNotFound(id))
    }

    /// Appends one observation tuple to a series.
    pub fn append(&mut self, id: SeriesId, t: Timestamp, row: &[f64]) -> Result<()> {
        self.series_mut(id)?.push(t, row)
    }

    /// Iterates all `(id, series)` pairs in id order.
    pub fn all_series(&self) -> impl Iterator<Item = (SeriesId, &MultiSeries)> {
        self.series.iter().map(|(&id, s)| (id, &**s))
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    // ---- V: vertices ---------------------------------------------------

    /// Adds a property-graph vertex (ρ = all of time).
    pub fn add_pg_vertex(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> VertexId {
        self.add_pg_vertex_valid(labels, props, Interval::ALL)
    }

    /// Adds a property-graph vertex with explicit validity.
    pub fn add_pg_vertex_valid(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> VertexId {
        let v = self.graph.add_vertex_valid(labels, props, validity);
        self.vertex_kind.insert(v, ElementKind::Pg);
        v
    }

    /// Adds a time-series vertex: an entity whose identity *is* the
    /// evolution of `series` (δ(v) = series).
    pub fn add_ts_vertex(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        series: SeriesId,
    ) -> Result<VertexId> {
        self.series(series)?;
        let v = self
            .graph
            .add_vertex_valid(labels, PropertyMap::new(), Interval::ALL);
        self.vertex_kind.insert(v, ElementKind::Ts);
        self.delta_v.insert(v, series);
        Ok(v)
    }

    // ---- E: edges --------------------------------------------------------

    /// Adds a property-graph edge.
    pub fn add_pg_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.add_pg_edge_valid(src, dst, labels, props, Interval::ALL)
    }

    /// Adds a property-graph edge with explicit validity.
    pub fn add_pg_edge_valid(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> Result<EdgeId> {
        let e = self
            .graph
            .add_edge_valid(src, dst, labels, props, validity)?;
        self.edge_kind.insert(e, ElementKind::Pg);
        Ok(e)
    }

    /// Adds a time-series edge: a relationship whose content *is* the
    /// evolution of `series` (δ(e) = series) — e.g. the transaction flow
    /// between a credit card and a merchant, or the similarity between
    /// two cards.
    pub fn add_ts_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        series: SeriesId,
    ) -> Result<EdgeId> {
        self.series(series)?;
        let e = self
            .graph
            .add_edge_valid(src, dst, labels, PropertyMap::new(), Interval::ALL)?;
        self.edge_kind.insert(e, ElementKind::Ts);
        self.delta_e.insert(e, series);
        Ok(e)
    }

    // ---- model functions -------------------------------------------------

    /// The kind of vertex `v` (partition of V).
    pub fn vertex_kind(&self, v: VertexId) -> Result<ElementKind> {
        self.vertex_kind
            .get(&v)
            .copied()
            .ok_or(HyGraphError::VertexNotFound(v))
    }

    /// The kind of edge `e` (partition of E).
    pub fn edge_kind(&self, e: EdgeId) -> Result<ElementKind> {
        self.edge_kind
            .get(&e)
            .copied()
            .ok_or(HyGraphError::EdgeNotFound(e))
    }

    /// η(e): the endpoints of edge `e`.
    pub fn eta(&self, e: EdgeId) -> Result<(VertexId, VertexId)> {
        let data = self.graph.edge(e)?;
        Ok((data.src, data.dst))
    }

    /// λ(x): the label set of a vertex, edge or subgraph.
    pub fn lambda(&self, el: ElementRef) -> Result<Vec<Label>> {
        match el {
            ElementRef::Vertex(v) => Ok(self.graph.vertex(v)?.labels.clone()),
            ElementRef::Edge(e) => Ok(self.graph.edge(e)?.labels.clone()),
            ElementRef::Subgraph(s) => Ok(self.subgraph(s)?.labels.clone()),
        }
    }

    /// φ(x, k): the property value of a pg-element or subgraph.
    pub fn phi(&self, el: ElementRef, key: &str) -> Result<Option<PropertyValue>> {
        let props = self.props(el)?;
        Ok(props.get_str(key).cloned())
    }

    /// The full property map of a pg-element or subgraph. Ts-elements
    /// carry no properties — their content is δ.
    pub fn props(&self, el: ElementRef) -> Result<&PropertyMap> {
        match el {
            ElementRef::Vertex(v) => {
                self.require_kind_v(v, ElementKind::Pg)?;
                Ok(&self.graph.vertex(v)?.props)
            }
            ElementRef::Edge(e) => {
                self.require_kind_e(e, ElementKind::Pg)?;
                Ok(&self.graph.edge(e)?.props)
            }
            ElementRef::Subgraph(s) => Ok(&self.subgraph(s)?.props),
        }
    }

    /// Sets a property on a pg-element or subgraph. The value may be a
    /// static scalar or a series reference (series-valued properties are
    /// how supplementary time series attach to entities).
    pub fn set_property(
        &mut self,
        el: ElementRef,
        key: impl Into<hygraph_types::PropertyKey>,
        value: impl Into<PropertyValue>,
    ) -> Result<()> {
        let value = value.into();
        if let PropertyValue::Series(id) = value {
            self.series(id)?;
        }
        match el {
            ElementRef::Vertex(v) => {
                self.require_kind_v(v, ElementKind::Pg)?;
                self.graph.vertex_mut(v)?.props.set(key, value);
            }
            ElementRef::Edge(e) => {
                self.require_kind_e(e, ElementKind::Pg)?;
                self.graph.edge_mut(e)?.props.set(key, value);
            }
            ElementRef::Subgraph(s) => {
                self.subgraph_mut(s)?.props.set(key, value);
            }
        }
        Ok(())
    }

    /// ρ(x): the validity interval of a pg-element or subgraph.
    pub fn rho(&self, el: ElementRef) -> Result<Interval> {
        match el {
            ElementRef::Vertex(v) => {
                self.require_kind_v(v, ElementKind::Pg)?;
                Ok(self.graph.vertex(v)?.validity)
            }
            ElementRef::Edge(e) => {
                self.require_kind_e(e, ElementKind::Pg)?;
                Ok(self.graph.edge(e)?.validity)
            }
            ElementRef::Subgraph(s) => Ok(self.subgraph(s)?.validity),
        }
    }

    /// δ(x): the series of a ts-vertex or ts-edge.
    pub fn delta(&self, el: ElementRef) -> Result<&MultiSeries> {
        let id = self.delta_id(el)?;
        self.series(id)
    }

    /// The series *id* behind δ(x).
    pub fn delta_id(&self, el: ElementRef) -> Result<SeriesId> {
        match el {
            ElementRef::Vertex(v) => {
                self.require_kind_v(v, ElementKind::Ts)?;
                self.delta_v
                    .get(&v)
                    .copied()
                    .ok_or(HyGraphError::VertexNotFound(v))
            }
            ElementRef::Edge(e) => {
                self.require_kind_e(e, ElementKind::Ts)?;
                self.delta_e
                    .get(&e)
                    .copied()
                    .ok_or(HyGraphError::EdgeNotFound(e))
            }
            ElementRef::Subgraph(s) => Err(HyGraphError::SubgraphNotFound(s)),
        }
    }

    fn require_kind_v(&self, v: VertexId, want: ElementKind) -> Result<()> {
        let got = self.vertex_kind(v)?;
        if got != want {
            return Err(HyGraphError::KindMismatch {
                expected: want.name(),
                got: got.name(),
            });
        }
        Ok(())
    }

    fn require_kind_e(&self, e: EdgeId, want: ElementKind) -> Result<()> {
        let got = self.edge_kind(e)?;
        if got != want {
            return Err(HyGraphError::KindMismatch {
                expected: want.name(),
                got: got.name(),
            });
        }
        Ok(())
    }

    // ---- S: subgraphs -----------------------------------------------------

    /// Creates a logical subgraph.
    pub fn create_subgraph(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
        validity: Interval,
    ) -> SubgraphId {
        let id = SubgraphId::new(self.next_subgraph);
        self.next_subgraph += 1;
        self.subgraphs.insert(
            id,
            Subgraph::new(
                id,
                labels.into_iter().map(Into::into).collect(),
                props,
                validity,
            ),
        );
        id
    }

    /// The subgraph with id `s`.
    pub fn subgraph(&self, s: SubgraphId) -> Result<&Subgraph> {
        self.subgraphs
            .get(&s)
            .ok_or(HyGraphError::SubgraphNotFound(s))
    }

    /// Mutable access to a subgraph.
    pub fn subgraph_mut(&mut self, s: SubgraphId) -> Result<&mut Subgraph> {
        self.subgraphs
            .get_mut(&s)
            .ok_or(HyGraphError::SubgraphNotFound(s))
    }

    /// Iterates all subgraphs in id order.
    pub fn subgraphs(&self) -> impl Iterator<Item = &Subgraph> {
        self.subgraphs.values()
    }

    /// Adds vertex `v` to subgraph `s` for `during`.
    pub fn add_subgraph_vertex(
        &mut self,
        s: SubgraphId,
        v: VertexId,
        during: Interval,
    ) -> Result<()> {
        self.graph.vertex(v)?;
        self.subgraph_mut(s)?.add_vertex(v, during);
        Ok(())
    }

    /// Adds edge `e` to subgraph `s` for `during`.
    pub fn add_subgraph_edge(&mut self, s: SubgraphId, e: EdgeId, during: Interval) -> Result<()> {
        self.graph.edge(e)?;
        self.subgraph_mut(s)?.add_edge(e, during);
        Ok(())
    }

    /// γ(s, t): the member vertices and edges of subgraph `s` at time `t`.
    pub fn gamma(&self, s: SubgraphId, t: Timestamp) -> Result<(Vec<VertexId>, Vec<EdgeId>)> {
        Ok(self.subgraph(s)?.members_at(t))
    }

    // ---- topology access ---------------------------------------------------

    /// The unified underlying temporal graph (both pg- and ts-elements).
    /// Every `hygraph-graph` algorithm runs directly on this.
    pub fn topology(&self) -> &TemporalGraph {
        &self.graph
    }

    /// Number of vertices (both kinds).
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges (both kinds).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Ids of all vertices of `kind`.
    pub fn vertices_of_kind(&self, kind: ElementKind) -> impl Iterator<Item = VertexId> + '_ {
        self.graph
            .vertex_ids()
            .filter(move |v| self.vertex_kind.get(v) == Some(&kind))
    }

    /// Ids of all edges of `kind`.
    pub fn edges_of_kind(&self, kind: ElementKind) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph
            .edge_ids()
            .filter(move |e| self.edge_kind.get(e) == Some(&kind))
    }

    // ---- structural updates (R3) -------------------------------------------

    /// Closes a vertex's validity at `t` (pg vertices only — ts vertices
    /// live as long as their series).
    pub fn close_vertex(&mut self, v: VertexId, t: Timestamp) -> Result<()> {
        self.require_kind_v(v, ElementKind::Pg)?;
        self.graph.close_vertex(v, t)
    }

    /// Closes an edge's validity at `t`.
    pub fn close_edge(&mut self, e: EdgeId, t: Timestamp) -> Result<()> {
        self.require_kind_e(e, ElementKind::Pg)?;
        self.graph.close_edge(e, t)
    }

    // ---- integrity (R2) -------------------------------------------------------

    /// Validates the whole instance:
    /// * graph temporal integrity (pg-edge validity ⊆ pg-endpoint
    ///   validity — ts-elements are timeless, ρ is not defined for them,
    ///   so they impose and obey no interval bounds);
    /// * every series is chronologically sound;
    /// * every ts-element has a δ target that exists;
    /// * every series-valued property references an existing series;
    /// * subgraph members exist and their membership intervals lie within
    ///   the subgraph's validity.
    pub fn validate(&self) -> Result<()> {
        // kind-aware temporal integrity (the raw graph check would wrongly
        // constrain timeless ts-elements)
        for e in self.graph.edges() {
            if self.edge_kind(e.id)? != ElementKind::Pg {
                continue;
            }
            for endpoint in [e.src, e.dst] {
                if self.vertex_kind(endpoint)? != ElementKind::Pg {
                    continue; // ts vertices are timeless
                }
                let vd = self.graph.vertex(endpoint)?;
                if !vd.validity.contains_interval(&e.validity) {
                    return Err(HyGraphError::TemporalIntegrity(format!(
                        "edge {} validity {} exceeds vertex {} validity {}",
                        e.id, e.validity, endpoint, vd.validity
                    )));
                }
            }
        }
        for (_, s) in self.all_series() {
            s.validate()?;
        }
        for v in self.vertices_of_kind(ElementKind::Ts) {
            let id = self
                .delta_v
                .get(&v)
                .copied()
                .ok_or(HyGraphError::VertexNotFound(v))?;
            self.series(id)?;
        }
        for e in self.edges_of_kind(ElementKind::Ts) {
            let id = self
                .delta_e
                .get(&e)
                .copied()
                .ok_or(HyGraphError::EdgeNotFound(e))?;
            self.series(id)?;
        }
        for vtx in self.graph.vertices() {
            for (_, sid) in vtx.props.series_entries() {
                self.series(sid)?;
            }
        }
        for edge in self.graph.edges() {
            for (_, sid) in edge.props.series_entries() {
                self.series(sid)?;
            }
        }
        for sg in self.subgraphs() {
            sg.validate(&self.graph)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn balance_series() -> MultiSeries {
        let mut m = MultiSeries::new(["balance"]);
        m.push(ts(0), &[100.0]).unwrap();
        m.push(ts(10), &[90.0]).unwrap();
        m.push(ts(20), &[250.0]).unwrap();
        m
    }

    #[test]
    fn pg_and_ts_vertices_coexist() {
        let mut hg = HyGraph::new();
        let user = hg.add_pg_vertex(["User"], props! {"name" => "alice"});
        let sid = hg.add_series(balance_series());
        let card = hg.add_ts_vertex(["CreditCard"], sid).unwrap();
        assert_eq!(hg.vertex_kind(user).unwrap(), ElementKind::Pg);
        assert_eq!(hg.vertex_kind(card).unwrap(), ElementKind::Ts);
        assert_eq!(hg.vertex_count(), 2);
        // δ of the ts vertex is the balance series
        let s = hg.delta(ElementRef::Vertex(card)).unwrap();
        assert_eq!(s.len(), 3);
        // δ of a pg vertex is a kind mismatch
        assert_eq!(
            hg.delta(ElementRef::Vertex(user)).unwrap_err(),
            HyGraphError::KindMismatch {
                expected: "ts",
                got: "pg"
            }
        );
        // φ of a ts vertex is a kind mismatch
        assert!(hg.props(ElementRef::Vertex(card)).is_err());
    }

    #[test]
    fn ts_edge_carries_series() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        let card = hg.add_ts_vertex(["CreditCard"], sid).unwrap();
        let merchant = hg.add_pg_vertex(["Merchant"], props! {});
        let flow = hg.add_series(balance_series());
        let e = hg.add_ts_edge(card, merchant, ["TX_FLOW"], flow).unwrap();
        assert_eq!(hg.edge_kind(e).unwrap(), ElementKind::Ts);
        assert_eq!(hg.delta_id(ElementRef::Edge(e)).unwrap(), flow);
        assert_eq!(hg.eta(e).unwrap(), (card, merchant));
    }

    #[test]
    fn ts_vertex_requires_existing_series() {
        let mut hg = HyGraph::new();
        let err = hg.add_ts_vertex(["X"], SeriesId::new(42)).unwrap_err();
        assert_eq!(err, HyGraphError::SeriesNotFound(SeriesId::new(42)));
    }

    #[test]
    fn series_valued_properties() {
        let mut hg = HyGraph::new();
        let station = hg.add_pg_vertex(["Station"], props! {"name" => "st-1"});
        let sid = hg.add_series(balance_series());
        hg.set_property(ElementRef::Vertex(station), "availability", sid)
            .unwrap();
        let pv = hg
            .phi(ElementRef::Vertex(station), "availability")
            .unwrap()
            .unwrap();
        assert_eq!(pv.as_series(), Some(sid));
        // static property still readable
        let name = hg
            .phi(ElementRef::Vertex(station), "name")
            .unwrap()
            .unwrap();
        assert_eq!(name.as_static().unwrap().as_str(), Some("st-1"));
        // dangling series reference is rejected at set time
        let err = hg
            .set_property(ElementRef::Vertex(station), "bad", SeriesId::new(99))
            .unwrap_err();
        assert_eq!(err, HyGraphError::SeriesNotFound(SeriesId::new(99)));
    }

    #[test]
    fn append_ingest_path() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        hg.append(sid, ts(30), &[300.0]).unwrap();
        assert_eq!(hg.series(sid).unwrap().len(), 4);
        // out-of-order append is rejected (chronological integrity)
        assert!(matches!(
            hg.append(sid, ts(5), &[0.0]).unwrap_err(),
            HyGraphError::OutOfOrder { .. }
        ));
        // arity mismatch rejected
        assert!(matches!(
            hg.append(sid, ts(40), &[1.0, 2.0]).unwrap_err(),
            HyGraphError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn subgraph_membership_over_time() {
        let mut hg = HyGraph::new();
        let a = hg.add_pg_vertex(["N"], props! {});
        let b = hg.add_pg_vertex(["N"], props! {});
        let e = hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        let s = hg.create_subgraph(["Cluster"], props! {"cluster_id" => 1i64}, Interval::ALL);
        hg.add_subgraph_vertex(s, a, Interval::new(ts(0), ts(100)))
            .unwrap();
        hg.add_subgraph_vertex(s, b, Interval::from(ts(50)))
            .unwrap();
        hg.add_subgraph_edge(s, e, Interval::new(ts(50), ts(100)))
            .unwrap();
        let (vs, es) = hg.gamma(s, ts(25)).unwrap();
        assert_eq!(vs, vec![a]);
        assert!(es.is_empty());
        let (vs, es) = hg.gamma(s, ts(75)).unwrap();
        assert_eq!(vs, vec![a, b]);
        assert_eq!(es, vec![e]);
        let (vs, _) = hg.gamma(s, ts(500)).unwrap();
        assert_eq!(vs, vec![b]);
        // λ and ρ of a subgraph
        assert_eq!(
            hg.lambda(ElementRef::Subgraph(s)).unwrap(),
            vec![Label::new("Cluster")]
        );
        assert_eq!(hg.rho(ElementRef::Subgraph(s)).unwrap(), Interval::ALL);
    }

    #[test]
    fn close_vertex_kind_checked() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        assert!(hg.close_vertex(card, ts(10)).is_err());
        let user = hg.add_pg_vertex(["User"], props! {});
        hg.close_vertex(user, ts(10)).unwrap();
        assert!(!hg.rho(ElementRef::Vertex(user)).unwrap().contains(ts(10)));
    }

    #[test]
    fn kind_partition_iterators() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        hg.add_pg_vertex(["A"], props! {});
        hg.add_ts_vertex(["B"], sid).unwrap();
        hg.add_pg_vertex(["C"], props! {});
        assert_eq!(hg.vertices_of_kind(ElementKind::Pg).count(), 2);
        assert_eq!(hg.vertices_of_kind(ElementKind::Ts).count(), 1);
    }

    #[test]
    fn validate_full_instance() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        let a = hg.add_pg_vertex(["A"], props! {});
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge(a, card, ["OWNS"], props! {}).unwrap();
        hg.set_property(ElementRef::Vertex(a), "metric", sid)
            .unwrap();
        let s = hg.create_subgraph(["G"], props! {}, Interval::new(ts(0), ts(100)));
        hg.add_subgraph_vertex(s, a, Interval::new(ts(0), ts(50)))
            .unwrap();
        assert!(hg.validate().is_ok());
        // membership outside subgraph validity fails validation
        hg.add_subgraph_vertex(s, a, Interval::new(ts(0), ts(200)))
            .unwrap();
        assert!(matches!(
            hg.validate().unwrap_err(),
            HyGraphError::TemporalIntegrity(_)
        ));
    }

    #[test]
    fn topology_runs_graph_algorithms() {
        let mut hg = HyGraph::new();
        let sid = hg.add_series(balance_series());
        let a = hg.add_pg_vertex(["A"], props! {});
        let b = hg.add_ts_vertex(["B"], sid).unwrap();
        hg.add_pg_edge(a, b, ["E"], props! {}).unwrap();
        // graph algorithms see both kinds uniformly
        let (assign, n) =
            hygraph_graph::algorithms::components::connected_components(hg.topology());
        assert_eq!(n, 1);
        assert_eq!(assign.len(), 2);
    }
}
