//! Compact binary checkpoint codec for [`HyGraph`] instances.
//!
//! The counterpart of [`crate::io`]'s human-readable text format, built
//! for the durable-storage layer: a field-exact snapshot of the whole
//! HGM tuple that round-trips *without id remapping*. Where the text
//! parser re-allocates dense ids in file order, this codec preserves the
//! original id spaces (including tombstones in the topology and the
//! `next_series`/`next_subgraph` allocation counters), so a decoded
//! instance keeps assigning the same ids the original would — the
//! property WAL replay depends on.
//!
//! Layout (all integers varint, floats raw IEEE-754 bits — see
//! [`hygraph_types::bytes`]):
//!
//! ```text
//! magic "HGB1"
//! next_series next_subgraph
//! <topology: hygraph_graph::codec>
//! kinds:   per live vertex id-ordered, per live edge id-ordered (1 byte each)
//! deltas:  ts-vertex (v, series) pairs, ts-edge (e, series) pairs
//! series:  count, then per series: id, names, len, times, columns
//! subgraphs: count, then per subgraph: id, labels, props, validity,
//!            vertex members (v, interval), edge members (e, interval)
//! ```
//!
//! Framing, checksums and versioned containers are the concern of
//! `hygraph-persist`; this module only defines the payload.

use crate::model::{ElementKind, HyGraph};
use crate::subgraph::Subgraph;
use hygraph_graph::codec as graph_codec;
use hygraph_ts::MultiSeries;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result, SeriesId, SubgraphId};

const MAGIC: &[u8; 4] = b"HGB1";

fn kind_byte(k: ElementKind) -> u8 {
    match k {
        ElementKind::Pg => 0,
        ElementKind::Ts => 1,
    }
}

fn kind_from_byte(b: u8) -> Result<ElementKind> {
    match b {
        0 => Ok(ElementKind::Pg),
        1 => Ok(ElementKind::Ts),
        other => Err(HyGraphError::corrupt(format!("unknown kind byte {other}"))),
    }
}

/// Encodes the full instance state into `w`.
pub fn encode_hygraph(hg: &HyGraph, w: &mut ByteWriter) {
    w.raw(MAGIC);
    w.u64(hg.next_series);
    w.u64(hg.next_subgraph);
    graph_codec::encode_graph(&hg.graph, w);
    // kinds, in id order (graph iteration is id-ordered)
    for v in hg.graph.vertices() {
        w.u8(kind_byte(
            *hg.vertex_kind.get(&v.id).expect("every vertex has a kind"),
        ));
    }
    for e in hg.graph.edges() {
        w.u8(kind_byte(
            *hg.edge_kind.get(&e.id).expect("every edge has a kind"),
        ));
    }
    // δ mappings, id-ordered for determinism
    let mut dv: Vec<_> = hg.delta_v.iter().map(|(&v, &s)| (v, s)).collect();
    dv.sort_unstable();
    w.len_of(dv.len());
    for (v, s) in dv {
        w.u64(v.raw());
        w.u64(s.raw());
    }
    let mut de: Vec<_> = hg.delta_e.iter().map(|(&e, &s)| (e, s)).collect();
    de.sort_unstable();
    w.len_of(de.len());
    for (e, s) in de {
        w.u64(e.raw());
        w.u64(s.raw());
    }
    // series set, id-ordered (BTreeMap)
    w.len_of(hg.series.len());
    for (id, s) in hg.series.iter() {
        w.u64(id.raw());
        w.len_of(s.names().len());
        for name in s.names() {
            w.str(name);
        }
        w.len_of(s.len());
        for t in s.times() {
            w.timestamp(*t);
        }
        for c in 0..s.names().len() {
            for v in s.column(c).expect("column exists") {
                w.f64(*v);
            }
        }
    }
    // subgraphs, id-ordered (BTreeMap)
    w.len_of(hg.subgraphs.len());
    for (id, sg) in hg.subgraphs.iter() {
        w.u64(id.raw());
        w.labels(&sg.labels);
        w.property_map(&sg.props);
        w.interval(&sg.validity);
        w.len_of(sg.vertex_members().len());
        for &(v, iv) in sg.vertex_members() {
            w.u64(v.raw());
            w.interval(&iv);
        }
        w.len_of(sg.edge_members().len());
        for &(e, iv) in sg.edge_members() {
            w.u64(e.raw());
            w.interval(&iv);
        }
    }
}

/// Decodes an instance previously written by [`encode_hygraph`].
pub fn decode_hygraph(r: &mut ByteReader<'_>) -> Result<HyGraph> {
    if r.raw(4)? != MAGIC {
        return Err(HyGraphError::corrupt("bad HyGraph binary magic"));
    }
    let next_series = r.u64()?;
    let next_subgraph = r.u64()?;
    let graph = graph_codec::decode_graph(r)?;
    // All side tables inherit the topology's snapshot mode so a decoded
    // instance is uniformly cow or uniformly pmap.
    let mode = graph.snapshot_impl();
    let mut vertex_kind = hygraph_types::pmap::SnapMap::new_with(mode);
    for v in graph.vertex_ids() {
        let kind = kind_from_byte(r.u8()?)?;
        vertex_kind.insert(v, kind);
    }
    let mut edge_kind = hygraph_types::pmap::SnapMap::new_with(mode);
    for e in graph.edge_ids() {
        let kind = kind_from_byte(r.u8()?)?;
        edge_kind.insert(e, kind);
    }
    let mut delta_v = hygraph_types::pmap::SnapMap::new_with(mode);
    let n_dv = r.len_of()?;
    for _ in 0..n_dv {
        let v = hygraph_types::VertexId::new(r.u64()?);
        let s = SeriesId::new(r.u64()?);
        delta_v.insert(v, s);
    }
    let mut delta_e = hygraph_types::pmap::SnapMap::new_with(mode);
    let n_de = r.len_of()?;
    for _ in 0..n_de {
        let e = hygraph_types::EdgeId::new(r.u64()?);
        let s = SeriesId::new(r.u64()?);
        delta_e.insert(e, s);
    }
    let mut series_set = hygraph_types::pmap::SnapMap::new_with(mode);
    let n_series = r.len_of()?;
    for _ in 0..n_series {
        let id = SeriesId::new(r.u64()?);
        let n_names = r.len_of()?;
        let mut names = Vec::with_capacity(n_names.min(1024));
        for _ in 0..n_names {
            names.push(r.str()?);
        }
        let arity = names.len();
        let mut series = MultiSeries::new(names);
        let n_rows = r.len_of()?;
        let mut times = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            times.push(r.timestamp()?);
        }
        let mut columns = vec![Vec::with_capacity(n_rows); arity];
        for col in columns.iter_mut() {
            for _ in 0..n_rows {
                col.push(r.f64()?);
            }
        }
        let mut row = vec![0.0; arity];
        for (i, &t) in times.iter().enumerate() {
            for (c, col) in columns.iter().enumerate() {
                row[c] = col[i];
            }
            series
                .push(t, &row)
                .map_err(|e| HyGraphError::corrupt(format!("series row: {e}")))?;
        }
        if series_set.insert(id, std::sync::Arc::new(series)).is_some() {
            return Err(HyGraphError::corrupt("duplicate series id"));
        }
        if id.raw() >= next_series {
            return Err(HyGraphError::corrupt(
                "series id at or above the allocation counter",
            ));
        }
    }
    let mut subgraphs = hygraph_types::pmap::SnapMap::new_with(mode);
    let n_subgraphs = r.len_of()?;
    for _ in 0..n_subgraphs {
        let id = SubgraphId::new(r.u64()?);
        let labels = r.labels()?;
        let props = r.property_map()?;
        let validity = r.interval()?;
        let mut sg = Subgraph::new(id, labels, props, validity);
        let n_v = r.len_of()?;
        for _ in 0..n_v {
            let v = hygraph_types::VertexId::new(r.u64()?);
            let iv = r.interval()?;
            sg.add_vertex(v, iv);
        }
        let n_e = r.len_of()?;
        for _ in 0..n_e {
            let e = hygraph_types::EdgeId::new(r.u64()?);
            let iv = r.interval()?;
            sg.add_edge(e, iv);
        }
        if subgraphs.insert(id, sg).is_some() {
            return Err(HyGraphError::corrupt("duplicate subgraph id"));
        }
    }
    Ok(HyGraph {
        graph,
        vertex_kind,
        edge_kind,
        series: series_set,
        delta_v,
        delta_e,
        subgraphs,
        next_series,
        next_subgraph,
    })
}

/// Encodes an instance into a fresh byte vector.
pub fn to_bytes(hg: &HyGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_hygraph(hg, &mut w);
    w.into_bytes()
}

/// Decodes and validates an instance from a standalone byte slice.
pub fn from_bytes(bytes: &[u8]) -> Result<HyGraph> {
    let mut r = ByteReader::new(bytes);
    let hg = decode_hygraph(&mut r)?;
    r.expect_exhausted()?;
    hg.validate()?;
    Ok(hg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElementRef;
    use hygraph_ts::TimeSeries;
    use hygraph_types::{props, Interval, Timestamp, Value};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn rich_instance() -> HyGraph {
        let mut hg = HyGraph::new();
        let mut m = MultiSeries::new(["price", "volume"]);
        m.push(ts(0), &[100.5, 3.0]).unwrap();
        m.push(ts(60_000), &[101.25, 7.0]).unwrap();
        let sid = hg.add_series(m);
        let extra = hg.add_univariate_series(
            "load",
            &TimeSeries::from_pairs([(ts(5), 1.5), (ts(10), -2.25)]),
        );
        let u = hg.add_pg_vertex_valid(
            ["User", "Person"],
            props! {
                "name" => "a=b;c\td",
                "age" => 34i64,
                "score" => 0.1234567890123,
                "vip" => true,
                "joined" => ts(42),
                "nothing" => Value::Null
            },
            Interval::new(ts(0), ts(1_000)),
        );
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge_valid(
            u,
            card,
            ["USES"],
            props! {"since" => ts(10)},
            Interval::new(ts(0), ts(900)),
        )
        .unwrap();
        let flow = hg.add_univariate_series("flow", &TimeSeries::from_pairs([(ts(1), 9.0)]));
        hg.add_ts_edge(card, u, ["FLOW"], flow).unwrap();
        hg.set_property(ElementRef::Vertex(u), "load", extra)
            .unwrap();
        let sg = hg.create_subgraph(
            ["Suspicious"],
            props! {"reason" => "test"},
            Interval::new(ts(0), ts(500)),
        );
        hg.add_subgraph_vertex(sg, u, Interval::new(ts(0), ts(100)))
            .unwrap();
        hg
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let hg = rich_instance();
        let bytes = to_bytes(&hg);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(to_bytes(&back), bytes, "canonical re-encode");
        assert_eq!(back.vertex_count(), hg.vertex_count());
        assert_eq!(back.edge_count(), hg.edge_count());
        assert_eq!(back.series_count(), hg.series_count());
        assert_eq!(back.subgraphs().count(), hg.subgraphs().count());
        // text serialisations also agree (both canonical)
        assert_eq!(
            crate::io::to_string(&back).unwrap(),
            crate::io::to_string(&hg).unwrap()
        );
    }

    #[test]
    fn roundtrip_preserves_ids_without_remap() {
        let hg = rich_instance();
        let mut back = from_bytes(&to_bytes(&hg)).unwrap();
        // the next series allocated by the copy matches the original
        let mut orig = hg.clone();
        let a = orig.add_univariate_series("x", &TimeSeries::new());
        let b = back.add_univariate_series("x", &TimeSeries::new());
        assert_eq!(a, b);
        let sg_a = orig.create_subgraph(["S"], props! {}, Interval::ALL);
        let sg_b = back.create_subgraph(["S"], props! {}, Interval::ALL);
        assert_eq!(sg_a, sg_b);
    }

    #[test]
    fn roundtrip_preserves_kinds_and_delta() {
        let hg = rich_instance();
        let back = from_bytes(&to_bytes(&hg)).unwrap();
        for v in hg.topology().vertex_ids() {
            assert_eq!(back.vertex_kind(v).unwrap(), hg.vertex_kind(v).unwrap());
        }
        for e in hg.topology().edge_ids() {
            assert_eq!(back.edge_kind(e).unwrap(), hg.edge_kind(e).unwrap());
        }
        for v in hg.vertices_of_kind(ElementKind::Ts) {
            assert_eq!(
                back.delta_id(ElementRef::Vertex(v)).unwrap(),
                hg.delta_id(ElementRef::Vertex(v)).unwrap()
            );
        }
    }

    #[test]
    fn empty_instance_roundtrip() {
        let hg = HyGraph::new();
        let back = from_bytes(&to_bytes(&hg)).unwrap();
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.series_count(), 0);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let bytes = to_bytes(&rich_instance());
        assert!(from_bytes(&[]).is_err());
        assert!(from_bytes(b"XXXX").is_err());
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut extended = bytes.clone();
        extended.push(7);
        assert!(from_bytes(&extended).is_err());
    }
}
