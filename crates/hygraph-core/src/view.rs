//! Logical views over a HyGraph instance (requirement R2: "enabling
//! users to define and manage alternative logical views over a model
//! instance, e.g., via grouping or sampling").
//!
//! A [`HyGraphView`] is a cheap, borrow-based restriction of an instance:
//! a label/kind/time filter on elements plus an optional sampling rate on
//! series. Views compose (filter-of-filter) and never copy element data;
//! materialisation is explicit.

use crate::model::{ElementKind, HyGraph};
use hygraph_ts::TimeSeries;
use hygraph_types::{EdgeId, Interval, SeriesId, Timestamp, VertexId};

/// A logical, lazily-evaluated view over a [`HyGraph`].
#[derive(Clone)]
pub struct HyGraphView<'a> {
    hg: &'a HyGraph,
    label: Option<String>,
    kind: Option<ElementKind>,
    valid_at: Option<Timestamp>,
    window: Option<Interval>,
    series_stride: usize,
}

impl<'a> HyGraphView<'a> {
    /// A view of the whole instance.
    pub fn new(hg: &'a HyGraph) -> Self {
        Self {
            hg,
            label: None,
            kind: None,
            valid_at: None,
            window: None,
            series_stride: 1,
        }
    }

    /// Restricts to vertices carrying `label`.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_owned());
        self
    }

    /// Restricts to elements of `kind`.
    pub fn with_kind(mut self, kind: ElementKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to pg-elements valid at `t` (ts-elements are always
    /// visible — they have no ρ).
    pub fn valid_at(mut self, t: Timestamp) -> Self {
        self.valid_at = Some(t);
        self
    }

    /// Restricts series observations to `window` when materialising.
    pub fn with_window(mut self, window: Interval) -> Self {
        self.window = Some(window);
        self
    }

    /// Samples every `k`-th observation when materialising series views.
    pub fn sample_every(mut self, k: usize) -> Self {
        self.series_stride = k.max(1);
        self
    }

    /// The underlying instance.
    pub fn base(&self) -> &'a HyGraph {
        self.hg
    }

    fn vertex_visible(&self, v: VertexId) -> bool {
        let g = self.hg.topology();
        let Ok(data) = g.vertex(v) else { return false };
        if let Some(l) = &self.label {
            if !data.has_label(l) {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if self.hg.vertex_kind(v) != Ok(k) {
                return false;
            }
        }
        if let Some(t) = self.valid_at {
            if self.hg.vertex_kind(v) == Ok(ElementKind::Pg) && !data.validity.contains(t) {
                return false;
            }
        }
        true
    }

    /// Iterates the vertices visible through the view.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.hg
            .topology()
            .vertex_ids()
            .filter(move |&v| self.vertex_visible(v))
    }

    /// Iterates the edges whose endpoints are both visible (and which
    /// satisfy the kind/time filters themselves).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let g = self.hg.topology();
        g.edges()
            .filter(move |e| {
                if let Some(k) = self.kind {
                    if self.hg.edge_kind(e.id) != Ok(k) {
                        return false;
                    }
                }
                if let Some(t) = self.valid_at {
                    if self.hg.edge_kind(e.id) == Ok(ElementKind::Pg) && !e.validity.contains(t) {
                        return false;
                    }
                }
                self.vertex_visible(e.src) && self.vertex_visible(e.dst)
            })
            .map(|e| e.id)
    }

    /// Materialises the (windowed, sampled) univariate view of a series'
    /// first variable.
    pub fn series_view(&self, id: SeriesId) -> Option<TimeSeries> {
        let s = self.hg.series(id).ok()?;
        let name = s.names().first()?.clone();
        let uni = s.to_univariate(&name)?;
        let windowed = match &self.window {
            Some(w) => uni.slice(w),
            None => uni,
        };
        Some(if self.series_stride > 1 {
            hygraph_ts::ops::downsample::stride(&windowed, self.series_stride)
        } else {
            windowed
        })
    }

    /// Number of visible vertices (materialises the filter).
    pub fn vertex_count(&self) -> usize {
        self.vertices().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{props, Duration};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn instance() -> HyGraph {
        let mut hg = HyGraph::new();
        let s = TimeSeries::generate(ts(0), Duration::from_millis(10), 10, |i| i as f64);
        let sid = hg.add_univariate_series("x", &s);
        let u1 = hg.add_pg_vertex_valid(["User"], props! {}, Interval::new(ts(0), ts(100)));
        let u2 = hg.add_pg_vertex(["User"], props! {});
        let m = hg.add_pg_vertex(["Merchant"], props! {});
        let c = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge(u1, m, ["TX"], props! {}).unwrap();
        hg.add_pg_edge(u2, c, ["USES"], props! {}).unwrap();
        hg
    }

    #[test]
    fn label_filter() {
        let hg = instance();
        let v = HyGraphView::new(&hg).with_label("User");
        assert_eq!(v.vertex_count(), 2);
        let v = HyGraphView::new(&hg).with_label("Card");
        assert_eq!(v.vertex_count(), 1);
        let v = HyGraphView::new(&hg).with_label("Ghost");
        assert_eq!(v.vertex_count(), 0);
    }

    #[test]
    fn kind_filter() {
        let hg = instance();
        assert_eq!(
            HyGraphView::new(&hg)
                .with_kind(ElementKind::Pg)
                .vertex_count(),
            3
        );
        assert_eq!(
            HyGraphView::new(&hg)
                .with_kind(ElementKind::Ts)
                .vertex_count(),
            1
        );
    }

    #[test]
    fn time_filter_applies_to_pg_only() {
        let hg = instance();
        // u1 expires at t=100; the ts card is timeless
        let v = HyGraphView::new(&hg).valid_at(ts(150));
        assert_eq!(v.vertex_count(), 3, "u1 filtered out, card stays");
    }

    #[test]
    fn edges_require_visible_endpoints() {
        let hg = instance();
        let all = HyGraphView::new(&hg);
        assert_eq!(all.edges().count(), 2);
        // restricting to Users hides merchants/cards, dropping both edges
        let users = HyGraphView::new(&hg).with_label("User");
        assert_eq!(users.edges().count(), 0);
        // at t=150 u1 is gone, so the TX edge vanishes
        let later = HyGraphView::new(&hg).valid_at(ts(150));
        assert_eq!(later.edges().count(), 1);
    }

    #[test]
    fn series_window_and_sampling() {
        let hg = instance();
        let sid = hg.all_series().next().unwrap().0;
        let full = HyGraphView::new(&hg).series_view(sid).unwrap();
        assert_eq!(full.len(), 10);
        let windowed = HyGraphView::new(&hg)
            .with_window(Interval::new(ts(20), ts(70)))
            .series_view(sid)
            .unwrap();
        assert_eq!(windowed.len(), 5);
        let sampled = HyGraphView::new(&hg)
            .sample_every(3)
            .series_view(sid)
            .unwrap();
        assert_eq!(sampled.len(), 4); // indices 0,3,6,9
        assert_eq!(sampled.values(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn views_compose() {
        let hg = instance();
        let v = HyGraphView::new(&hg)
            .with_kind(ElementKind::Pg)
            .with_label("User")
            .valid_at(ts(150));
        assert_eq!(
            v.vertex_count(),
            1,
            "only the timeless user survives all filters"
        );
    }

    #[test]
    fn missing_series_view_is_none() {
        let hg = instance();
        assert!(HyGraphView::new(&hg)
            .series_view(SeriesId::new(99))
            .is_none());
    }
}
