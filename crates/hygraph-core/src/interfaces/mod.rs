//! The paper's operator interfaces (Figure 4).
//!
//! * [`import`] — the `<X>ToHyGraph` family: lossless integration of
//!   temporal property graphs and time series into a HyGraph instance;
//! * [`export`] — the `HyGraphTo<X>` family: extraction of graph or
//!   series views in their original formats, so existing pipelines keep
//!   working (requirement R1).
//!
//! The `HyGraphToHyGraph` family (clustering, classification,
//! annotation) lives in the `hygraph-analytics` crate, since it composes
//! these structural interfaces with the analytic operators.

pub mod export;
pub mod import;

pub use export::{
    edges_to_series, extract_series, pattern_value_series, to_temporal_graph, TsProjection,
};
pub use import::{graph_to_hygraph, series_to_hygraph, SimilarityConfig};
