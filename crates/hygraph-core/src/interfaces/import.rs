//! `<X>ToHyGraph`: importing existing data structures into a HyGraph.
//!
//! Two directions, mirroring Figure 3's arrows into the hybrid layer:
//!
//! * [`graph_to_hygraph`] — a temporal property graph becomes the pg
//!   partition of a fresh instance, unchanged (arrow ⑧ upward);
//! * [`series_to_hygraph`] — a collection of series becomes ts-vertices,
//!   optionally linked by *similarity ts-edges* whose own series is the
//!   rolling correlation of the endpoints (the "build a graph on top of
//!   time series" direction, arrow ⑥).

use crate::model::HyGraph;
use hygraph_graph::TemporalGraph;
use hygraph_ts::ops::correlate;
use hygraph_ts::TimeSeries;
use hygraph_types::{Duration, Label, Result, VertexId};

/// Imports a temporal property graph as the pg-partition of a new
/// HyGraph. Element ids are preserved (the import iterates ids in order,
/// and `HyGraph` allocates densely), so callers can keep using their
/// existing id references.
pub fn graph_to_hygraph(g: &TemporalGraph) -> HyGraph {
    let mut hg = HyGraph::new();
    // preserve dense ids across tombstones by re-adding placeholders
    let cap = g.vertex_capacity();
    let mut placeholders = Vec::new();
    for idx in 0..cap {
        let vid = VertexId::from(idx);
        match g.vertex(vid) {
            Ok(v) => {
                let nid = hg.add_pg_vertex_valid(v.labels.clone(), v.props.clone(), v.validity);
                debug_assert_eq!(nid, vid);
            }
            Err(_) => {
                let nid = hg.add_pg_vertex_valid(
                    Vec::<Label>::new(),
                    Default::default(),
                    hygraph_types::Interval::ALL,
                );
                debug_assert_eq!(nid, vid);
                placeholders.push(vid);
            }
        }
    }
    for e in g.edges() {
        hg.add_pg_edge_valid(e.src, e.dst, e.labels.clone(), e.props.clone(), e.validity)
            .expect("endpoints exist");
    }
    // placeholders stay as unlabeled isolated vertices only if the source
    // had tombstones; mark them closed so they do not pollute snapshots.
    for v in placeholders {
        let _ = hg.close_vertex(v, hygraph_types::Timestamp::MIN);
    }
    hg
}

/// Configuration for similarity-edge construction in
/// [`series_to_hygraph`].
#[derive(Clone, Copy, Debug)]
pub struct SimilarityConfig {
    /// Alignment grid step for correlation.
    pub step: Duration,
    /// Minimum absolute Pearson correlation for an edge.
    pub threshold: f64,
    /// Window (in points) of the rolling correlation stored on the edge.
    pub window: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self {
            step: Duration::from_mins(5),
            threshold: 0.8,
            window: 12,
        }
    }
}

/// Imports named univariate series as ts-vertices labelled `label`.
/// When `similarity` is set, every pair with `|pearson| >= threshold`
/// (after alignment) is linked by a `SIMILAR` ts-edge whose δ is the
/// rolling correlation series — the paper's "similarity edge between two
/// credit cards is a TS edge" construction.
pub fn series_to_hygraph(
    inputs: &[(String, TimeSeries)],
    label: &str,
    similarity: Option<SimilarityConfig>,
) -> Result<(HyGraph, Vec<VertexId>)> {
    let mut hg = HyGraph::new();
    let mut vertices = Vec::with_capacity(inputs.len());
    for (name, s) in inputs {
        let sid = hg.add_univariate_series(name, s);
        let v = hg.add_ts_vertex([label], sid)?;
        vertices.push(v);
    }
    if let Some(cfg) = similarity {
        for i in 0..inputs.len() {
            for j in (i + 1)..inputs.len() {
                let (a, b) = (&inputs[i].1, &inputs[j].1);
                let Some(r) = correlate::series_correlation(a, b, cfg.step) else {
                    continue;
                };
                if r.abs() < cfg.threshold {
                    continue;
                }
                // the edge's own series: rolling correlation over time
                let Some((ra, rb)) = hygraph_ts::ops::resample::align(
                    a,
                    b,
                    cfg.step,
                    hygraph_ts::ops::resample::FillMethod::Linear,
                ) else {
                    continue;
                };
                let rolling = correlate::rolling_correlation(&ra, &rb, cfg.window.max(2));
                let name = format!("similarity:{}:{}", inputs[i].0, inputs[j].0);
                let sid = hg.add_univariate_series(&name, &rolling);
                hg.add_ts_edge(vertices[i], vertices[j], ["SIMILAR"], sid)?;
            }
        }
    }
    Ok((hg, vertices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ElementKind, ElementRef};
    use hygraph_types::{props, Interval, Timestamp};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn graph_import_preserves_everything() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(
            ["User"],
            props! {"name" => "a"},
            Interval::new(ts(0), ts(100)),
        );
        let b = g.add_vertex(["Merchant"], props! {});
        g.add_edge_valid(
            a,
            b,
            ["TX"],
            props! {"amount" => 5.0},
            Interval::new(ts(10), ts(20)),
        )
        .unwrap();
        let hg = graph_to_hygraph(&g);
        assert_eq!(hg.vertex_count(), 2);
        assert_eq!(hg.edge_count(), 1);
        assert_eq!(hg.vertex_kind(a).unwrap(), ElementKind::Pg);
        assert_eq!(
            hg.props(ElementRef::Vertex(a))
                .unwrap()
                .static_value("name")
                .unwrap()
                .as_str(),
            Some("a")
        );
        assert_eq!(
            hg.rho(ElementRef::Vertex(a)).unwrap(),
            Interval::new(ts(0), ts(100))
        );
        assert!(hg.validate().is_ok());
    }

    #[test]
    fn graph_import_handles_tombstones() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex(["X"], props! {});
        let b = g.add_vertex(["Y"], props! {});
        g.remove_vertex(a).unwrap();
        let hg = graph_to_hygraph(&g);
        // b keeps its id
        assert!(hg
            .lambda(ElementRef::Vertex(b))
            .unwrap()
            .iter()
            .any(|l| l.as_str() == "Y"));
    }

    #[test]
    fn series_import_without_similarity() {
        let s1 = TimeSeries::generate(ts(0), Duration::from_mins(5), 50, |i| i as f64);
        let s2 = TimeSeries::generate(ts(0), Duration::from_mins(5), 50, |i| -(i as f64));
        let (hg, vs) =
            series_to_hygraph(&[("a".into(), s1), ("b".into(), s2)], "Sensor", None).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(hg.vertex_count(), 2);
        assert_eq!(hg.edge_count(), 0);
        assert_eq!(hg.vertex_kind(vs[0]).unwrap(), ElementKind::Ts);
        assert_eq!(hg.delta(ElementRef::Vertex(vs[0])).unwrap().len(), 50);
    }

    #[test]
    fn similarity_edges_link_correlated_series() {
        let base = |i: usize| ((i as f64) * 0.3).sin() * 10.0;
        let s1 = TimeSeries::generate(ts(0), Duration::from_mins(5), 100, base);
        let s2 = TimeSeries::generate(ts(0), Duration::from_mins(5), 100, |i| base(i) * 2.0 + 1.0);
        // uncorrelated third series
        let s3 = TimeSeries::generate(ts(0), Duration::from_mins(5), 100, |i| {
            let mut x = (i as u64) ^ 0x9E37_79B9;
            x ^= x >> 13;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            (x % 97) as f64
        });
        let (hg, vs) = series_to_hygraph(
            &[("a".into(), s1), ("b".into(), s2), ("c".into(), s3)],
            "Card",
            Some(SimilarityConfig::default()),
        )
        .unwrap();
        assert_eq!(hg.edge_count(), 1, "only the (a,b) pair is correlated");
        let e = hg.edges_of_kind(ElementKind::Ts).next().unwrap();
        let (src, dst) = hg.eta(e).unwrap();
        assert_eq!((src, dst), (vs[0], vs[1]));
        // the similarity edge carries its own series
        let sim = hg.delta(ElementRef::Edge(e)).unwrap();
        assert!(!sim.is_empty());
        assert!(hg.validate().is_ok());
    }
}
