//! `HyGraphTo<X>`: extracting original-format views from a HyGraph.
//!
//! * [`to_temporal_graph`] — the graph view, with a configurable
//!   projection of ts-elements;
//! * [`extract_series`] — the series view;
//! * [`pattern_value_series`] — arrow ⑦ of Figure 3: a graph pattern
//!   query whose matched property values, ordered by element validity
//!   start, *are* a time series;
//! * [`edges_to_series`] — the paper's super-edge transform: aggregate
//!   edges between vertex groups into an edge-activity time series.

use crate::model::{ElementKind, HyGraph};
use hygraph_graph::aggregate::{self, GroupBy};
use hygraph_graph::{Pattern, TemporalGraph};
use hygraph_ts::{MultiSeries, TimeSeries};
use hygraph_types::{Duration, SeriesId, Timestamp, Value};

/// How ts-elements are projected into the extracted graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsProjection {
    /// Drop ts-vertices and ts-edges: the pure pg view (lossless inverse
    /// of `graph_to_hygraph`).
    Exclude,
    /// Keep ts-elements as plain graph elements; each gets a
    /// `__series` property recording its δ series id and summary stats
    /// (`__mean`, `__count`) so downstream graph tools see *something*.
    Summarize,
}

/// Extracts a [`TemporalGraph`] view.
pub fn to_temporal_graph(hg: &HyGraph, projection: TsProjection) -> TemporalGraph {
    let g = hg.topology();
    let mut out = TemporalGraph::with_capacity(g.vertex_count(), g.edge_count());
    // map old ids -> new ids (ts-exclusion makes ids non-dense)
    let mut vmap = std::collections::HashMap::new();
    for v in g.vertices() {
        let kind = hg.vertex_kind(v.id).expect("vertex exists");
        match (kind, projection) {
            (ElementKind::Pg, _) => {
                let nid = out.add_vertex_valid(v.labels.clone(), v.props.clone(), v.validity);
                vmap.insert(v.id, nid);
            }
            (ElementKind::Ts, TsProjection::Exclude) => {}
            (ElementKind::Ts, TsProjection::Summarize) => {
                let mut props = v.props.clone();
                let sid = hg
                    .delta_id(crate::model::ElementRef::Vertex(v.id))
                    .expect("ts vertex has series");
                annotate_summary(&mut props, sid, hg);
                let nid = out.add_vertex_valid(v.labels.clone(), props, v.validity);
                vmap.insert(v.id, nid);
            }
        }
    }
    for e in g.edges() {
        let kind = hg.edge_kind(e.id).expect("edge exists");
        let (Some(&src), Some(&dst)) = (vmap.get(&e.src), vmap.get(&e.dst)) else {
            continue;
        };
        match (kind, projection) {
            (ElementKind::Pg, _) => {
                out.add_edge_valid(src, dst, e.labels.clone(), e.props.clone(), e.validity)
                    .expect("endpoints mapped");
            }
            (ElementKind::Ts, TsProjection::Exclude) => {}
            (ElementKind::Ts, TsProjection::Summarize) => {
                let mut props = e.props.clone();
                let sid = hg
                    .delta_id(crate::model::ElementRef::Edge(e.id))
                    .expect("ts edge has series");
                annotate_summary(&mut props, sid, hg);
                out.add_edge_valid(src, dst, e.labels.clone(), props, e.validity)
                    .expect("endpoints mapped");
            }
        }
    }
    out
}

fn annotate_summary(props: &mut hygraph_types::PropertyMap, sid: SeriesId, hg: &HyGraph) {
    props.set("__series", Value::Int(sid.raw() as i64));
    if let Ok(s) = hg.series(sid) {
        props.set("__count", Value::Int(s.len() as i64));
        if let Some(col) = s.column(0) {
            if let Some(m) = hygraph_ts::ops::stats::mean(col) {
                props.set("__mean", Value::Float(m));
            }
        }
    }
}

/// Extracts every registered series, in id order.
pub fn extract_series(hg: &HyGraph) -> Vec<(SeriesId, MultiSeries)> {
    hg.all_series().map(|(id, s)| (id, s.clone())).collect()
}

/// Arrow ⑦: runs `pattern` against the HyGraph topology and emits the
/// static numeric property `key` of the element bound to `var`, ordered
/// by that element's validity start — "simple pattern-matching queries
/// returning property values … as a series of values".
///
/// Matches whose bound element lacks the property, is non-numeric, or
/// has an unbounded validity start are skipped.
pub fn pattern_value_series(hg: &HyGraph, pattern: &Pattern, var: &str, key: &str) -> TimeSeries {
    let g = hg.topology();
    let mut pairs: Vec<(Timestamp, f64)> = Vec::new();
    pattern.find(g, |binding| {
        // var may bind a vertex or an edge
        if let Some(&v) = binding.vertices.get(var) {
            if let Ok(data) = g.vertex(v) {
                if data.validity.start != Timestamp::MIN {
                    if let Some(x) = data.props.static_value(key).and_then(Value::as_f64) {
                        pairs.push((data.validity.start, x));
                    }
                }
            }
        } else if let Some(&e) = binding.edges.get(var) {
            if let Ok(data) = g.edge(e) {
                if data.validity.start != Timestamp::MIN {
                    if let Some(x) = data.props.static_value(key).and_then(Value::as_f64) {
                        pairs.push((data.validity.start, x));
                    }
                }
            }
        }
        true
    });
    TimeSeries::from_pairs(pairs)
}

/// The paper's super-edge transform: groups the pg-projection of the
/// HyGraph by label, then converts the edges between the two named label
/// groups into an edge-count time series with `bucket` resolution.
///
/// Returns `None` when either group does not exist.
pub fn edges_to_series(
    hg: &HyGraph,
    from_label_group: &str,
    to_label_group: &str,
    bucket: Duration,
) -> Option<TimeSeries> {
    let g = to_temporal_graph(hg, TsProjection::Exclude);
    let grouped = aggregate::group_by(&g, GroupBy::Labels, &[]);
    let find = |key: &str| {
        grouped
            .group_keys
            .iter()
            .find(|(_, k)| k.as_str() == key)
            .map(|(&v, _)| v)
    };
    let fg = find(from_label_group)?;
    let tg = find(to_label_group)?;
    Some(aggregate::edge_time_series(&g, &grouped, fg, tg, bucket))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::import::graph_to_hygraph;
    use crate::model::ElementRef;
    use hygraph_graph::Direction;
    use hygraph_types::{props, Interval};

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn sample_series() -> TimeSeries {
        TimeSeries::from_pairs([(ts(0), 1.0), (ts(10), 3.0)])
    }

    #[test]
    fn roundtrip_graph_is_lossless() {
        // R1 expressiveness: TPG -> HGM -> TPG preserves everything
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(
            ["User"],
            props! {"name" => "a"},
            Interval::new(ts(0), ts(50)),
        );
        let b = g.add_vertex(["Merchant"], props! {"city" => "lyon"});
        g.add_edge_valid(
            a,
            b,
            ["TX"],
            props! {"amount" => 7.0},
            Interval::new(ts(5), ts(40)),
        )
        .unwrap();
        let hg = graph_to_hygraph(&g);
        let back = to_temporal_graph(&hg, TsProjection::Exclude);
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        let va = back.vertex(a).unwrap();
        assert_eq!(va.labels, g.vertex(a).unwrap().labels);
        assert_eq!(va.props, g.vertex(a).unwrap().props);
        assert_eq!(va.validity, g.vertex(a).unwrap().validity);
        let e_orig = g.edges().next().unwrap();
        let e_back = back.edges().next().unwrap();
        assert_eq!(e_back.props, e_orig.props);
        assert_eq!(e_back.validity, e_orig.validity);
    }

    #[test]
    fn roundtrip_series_is_lossless() {
        // R1: TS -> HGM -> TS preserves observations
        let s = sample_series();
        let mut hg = HyGraph::new();
        let sid = hg.add_univariate_series("x", &s);
        let extracted = extract_series(&hg);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].0, sid);
        assert_eq!(extracted[0].1.to_univariate("x").unwrap(), s);
    }

    #[test]
    fn exclude_projection_drops_ts_elements() {
        let mut hg = HyGraph::new();
        let sid = hg.add_univariate_series("b", &sample_series());
        let user = hg.add_pg_vertex(["User"], props! {});
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge(user, card, ["USES"], props! {}).unwrap();
        let g = to_temporal_graph(&hg, TsProjection::Exclude);
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0, "edge touching a ts vertex dropped");
    }

    #[test]
    fn summarize_projection_keeps_ts_elements() {
        let mut hg = HyGraph::new();
        let sid = hg.add_univariate_series("b", &sample_series());
        let user = hg.add_pg_vertex(["User"], props! {});
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge(user, card, ["USES"], props! {}).unwrap();
        let g = to_temporal_graph(&hg, TsProjection::Summarize);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let card_v = g.vertex(card).unwrap();
        assert_eq!(
            card_v.props.static_value("__count").unwrap().as_i64(),
            Some(2)
        );
        assert_eq!(
            card_v.props.static_value("__mean").unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn pattern_value_series_orders_by_validity() {
        let mut hg = HyGraph::new();
        let u = hg.add_pg_vertex(["User"], props! {});
        let m = hg.add_pg_vertex(["Merchant"], props! {});
        for (start, amount) in [(30, 3.0), (10, 1.0), (20, 2.0)] {
            hg.add_pg_edge_valid(
                u,
                m,
                ["TX"],
                props! {"amount" => amount},
                Interval::from(ts(start)),
            )
            .unwrap();
        }
        let mut p = Pattern::new();
        let pu = p.vertex("u", ["User"]);
        let pm = p.vertex("m", ["Merchant"]);
        p.edge(Some("t"), pu, pm, ["TX"], Direction::Out);
        let series = pattern_value_series(&hg, &p, "t", "amount");
        assert_eq!(series.len(), 3);
        assert_eq!(
            series.values(),
            &[1.0, 2.0, 3.0],
            "sorted by validity start"
        );
        // missing key yields empty
        let empty = pattern_value_series(&hg, &p, "t", "nope");
        assert!(empty.is_empty());
    }

    #[test]
    fn edges_to_series_counts_by_bucket() {
        let mut hg = HyGraph::new();
        let u = hg.add_pg_vertex(["User"], props! {});
        let m = hg.add_pg_vertex(["Merchant"], props! {});
        for i in 0..4 {
            hg.add_pg_edge_valid(u, m, ["TX"], props! {}, Interval::from(ts(i * 30)))
                .unwrap();
        }
        let s = edges_to_series(&hg, "User", "Merchant", Duration::from_millis(60)).unwrap();
        assert_eq!(s.values(), &[2.0, 2.0]);
        assert!(edges_to_series(&hg, "User", "Ghost", Duration::from_millis(60)).is_none());
    }

    #[test]
    fn attached_series_survive_graph_projection() {
        let mut hg = HyGraph::new();
        let sid = hg.add_univariate_series("avail", &sample_series());
        let station = hg.add_pg_vertex(["Station"], props! {});
        hg.set_property(ElementRef::Vertex(station), "availability", sid)
            .unwrap();
        let g = to_temporal_graph(&hg, TsProjection::Exclude);
        // the property map still records the series reference
        assert_eq!(
            g.vertex(station)
                .unwrap()
                .props
                .series_value("availability"),
            Some(sid)
        );
    }
}
