//! The HyGraph Model (HGM) — the paper's primary contribution (§5).
//!
//! A HyGraph instance is the tuple **HG = (V, E, S, TS, η, γ, λ, φ, ρ, δ)**:
//!
//! * `V = V_pg ∪ V_ts` — property-graph vertices and *time-series
//!   vertices*, both first-class;
//! * `E = E_pg ∪ E_ts` — property-graph edges and *time-series edges*;
//! * `S` — logical subgraphs with time-dependent membership;
//! * `TS` — the set of (multivariate) time series;
//! * `η : E → V × V` — edge endpoints;
//! * `γ : S × T → 𝒫(V) × 𝒫(E)` — subgraph membership over time;
//! * `λ : V ∪ E ∪ S → 𝒫(L)` — labels;
//! * `φ : (V_pg ∪ E_pg ∪ S) × K → 𝒩` — properties, where a value is
//!   *either* a static scalar (𝒩_Σ) *or* a series reference (𝒩_TS);
//! * `ρ : (V_pg ∪ E_pg ∪ S) → T × T` — validity intervals;
//! * `δ : (V_ts ∪ E_ts) → TS` — the series a ts-element *is*.
//!
//! The [`model::HyGraph`] type realises the tuple; [`interfaces`]
//! implements the paper's three operator families (`<X>ToHyGraph`,
//! `HyGraphTo<X>`, and the transforms between them); [`view`] provides
//! logical grouping/sampling views (requirement R2).

pub mod binio;
pub mod builder;
pub mod interfaces;
pub mod io;
pub mod model;
pub mod subgraph;
pub mod view;

pub use builder::HyGraphBuilder;
pub use model::{ElementKind, ElementRef, HyGraph};
pub use subgraph::Subgraph;
