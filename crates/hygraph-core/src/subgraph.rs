//! Logical subgraphs (the set S) with time-dependent membership (γ).
//!
//! A subgraph is a labelled, property-carrying, validity-bounded element
//! whose member sets change over time: each member is tagged with the
//! interval during which it belongs. `γ(s, t)` evaluates membership at
//! an instant. Subgraphs are how the pipeline of Figure 4 materialises
//! clusters ("ordinary"/"suspicious") over the HyGraph instance.

use hygraph_graph::TemporalGraph;
use hygraph_types::{
    EdgeId, HyGraphError, Interval, Label, PropertyMap, Result, SubgraphId, Timestamp, VertexId,
};

/// A logical subgraph with interval-tagged membership.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Identifier.
    pub id: SubgraphId,
    /// λ(s).
    pub labels: Vec<Label>,
    /// φ(s, ·).
    pub props: PropertyMap,
    /// ρ(s).
    pub validity: Interval,
    vertex_members: Vec<(VertexId, Interval)>,
    edge_members: Vec<(EdgeId, Interval)>,
}

impl Subgraph {
    /// Creates an empty subgraph.
    pub fn new(id: SubgraphId, labels: Vec<Label>, props: PropertyMap, validity: Interval) -> Self {
        Self {
            id,
            labels,
            props,
            validity,
            vertex_members: Vec::new(),
            edge_members: Vec::new(),
        }
    }

    /// Whether the subgraph carries `label`.
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.iter().any(|l| l.as_str() == label)
    }

    /// Adds vertex membership for `during`.
    pub fn add_vertex(&mut self, v: VertexId, during: Interval) {
        self.vertex_members.push((v, during));
    }

    /// Adds edge membership for `during`.
    pub fn add_edge(&mut self, e: EdgeId, during: Interval) {
        self.edge_members.push((e, during));
    }

    /// All vertex memberships.
    pub fn vertex_members(&self) -> &[(VertexId, Interval)] {
        &self.vertex_members
    }

    /// All edge memberships.
    pub fn edge_members(&self) -> &[(EdgeId, Interval)] {
        &self.edge_members
    }

    /// γ(s, t): members at instant `t` (deduplicated, sorted).
    pub fn members_at(&self, t: Timestamp) -> (Vec<VertexId>, Vec<EdgeId>) {
        let mut vs: Vec<VertexId> = self
            .vertex_members
            .iter()
            .filter(|(_, iv)| iv.contains(t))
            .map(|&(v, _)| v)
            .collect();
        vs.sort_unstable();
        vs.dedup();
        let mut es: Vec<EdgeId> = self
            .edge_members
            .iter()
            .filter(|(_, iv)| iv.contains(t))
            .map(|&(e, _)| e)
            .collect();
        es.sort_unstable();
        es.dedup();
        (vs, es)
    }

    /// Vertices that are members at any point of `window`.
    pub fn vertices_during(&self, window: &Interval) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .vertex_members
            .iter()
            .filter(|(_, iv)| iv.overlaps(window))
            .map(|&(v, _)| v)
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Validates membership against the backing graph: members must
    /// exist, and membership intervals must lie within both the
    /// subgraph's validity and the member's own validity.
    pub fn validate(&self, g: &TemporalGraph) -> Result<()> {
        for &(v, iv) in &self.vertex_members {
            let data = g.vertex(v)?;
            if !self.validity.contains_interval(&iv) {
                return Err(HyGraphError::TemporalIntegrity(format!(
                    "subgraph {} membership of {} ({iv}) exceeds subgraph validity {}",
                    self.id, v, self.validity
                )));
            }
            if !data.validity.contains_interval(&iv) {
                return Err(HyGraphError::TemporalIntegrity(format!(
                    "subgraph {} membership of {} ({iv}) exceeds vertex validity {}",
                    self.id, v, data.validity
                )));
            }
        }
        for &(e, iv) in &self.edge_members {
            let data = g.edge(e)?;
            if !self.validity.contains_interval(&iv) || !data.validity.contains_interval(&iv) {
                return Err(HyGraphError::TemporalIntegrity(format!(
                    "subgraph {} edge membership of {} ({iv}) violates validity bounds",
                    self.id, e
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(ts(a), ts(b))
    }

    #[test]
    fn membership_at_instant() {
        let mut s = Subgraph::new(
            SubgraphId::new(0),
            vec![Label::new("C")],
            props! {},
            Interval::ALL,
        );
        s.add_vertex(VertexId::new(1), iv(0, 50));
        s.add_vertex(VertexId::new(2), iv(25, 75));
        s.add_edge(EdgeId::new(9), iv(25, 50));
        let (vs, es) = s.members_at(ts(30));
        assert_eq!(vs, vec![VertexId::new(1), VertexId::new(2)]);
        assert_eq!(es, vec![EdgeId::new(9)]);
        let (vs, es) = s.members_at(ts(60));
        assert_eq!(vs, vec![VertexId::new(2)]);
        assert!(es.is_empty());
        let (vs, _) = s.members_at(ts(100));
        assert!(vs.is_empty());
    }

    #[test]
    fn duplicate_membership_deduplicated() {
        let mut s = Subgraph::new(SubgraphId::new(0), vec![], props! {}, Interval::ALL);
        s.add_vertex(VertexId::new(1), iv(0, 50));
        s.add_vertex(VertexId::new(1), iv(25, 75)); // overlapping re-add
        let (vs, _) = s.members_at(ts(30));
        assert_eq!(vs, vec![VertexId::new(1)]);
        assert_eq!(s.vertices_during(&iv(0, 100)), vec![VertexId::new(1)]);
    }

    #[test]
    fn vertices_during_window() {
        let mut s = Subgraph::new(SubgraphId::new(0), vec![], props! {}, Interval::ALL);
        s.add_vertex(VertexId::new(1), iv(0, 10));
        s.add_vertex(VertexId::new(2), iv(90, 100));
        assert_eq!(s.vertices_during(&iv(0, 50)), vec![VertexId::new(1)]);
        assert_eq!(s.vertices_during(&iv(5, 95)).len(), 2);
        assert!(s.vertices_during(&iv(10, 90)).is_empty());
    }

    #[test]
    fn validate_against_graph() {
        let mut g = TemporalGraph::new();
        let a = g.add_vertex_valid(["N"], props! {}, iv(0, 100));
        let mut s = Subgraph::new(SubgraphId::new(0), vec![], props! {}, iv(0, 100));
        s.add_vertex(a, iv(0, 50));
        assert!(s.validate(&g).is_ok());
        // membership outside vertex validity
        let mut bad = Subgraph::new(SubgraphId::new(1), vec![], props! {}, Interval::ALL);
        bad.add_vertex(a, iv(50, 200));
        assert!(bad.validate(&g).is_err());
        // missing member
        let mut missing = Subgraph::new(SubgraphId::new(2), vec![], props! {}, Interval::ALL);
        missing.add_vertex(VertexId::new(77), Interval::ALL);
        assert!(matches!(
            missing.validate(&g).unwrap_err(),
            HyGraphError::VertexNotFound(_)
        ));
    }

    #[test]
    fn labels_and_props() {
        let s = Subgraph::new(
            SubgraphId::new(3),
            vec![Label::new("Suspicious")],
            props! {"score" => 0.9},
            Interval::ALL,
        );
        assert!(s.has_label("Suspicious"));
        assert!(!s.has_label("Ordinary"));
        assert_eq!(s.props.static_value("score").unwrap().as_f64(), Some(0.9));
    }
}
