//! Plain-text persistence for HyGraph instances.
//!
//! A line-oriented, tab-separated format designed for lossless
//! round-trips of the full HGM tuple — vertices and edges of both kinds,
//! series, δ mappings, series-valued properties, and subgraphs with
//! interval-tagged membership. It keeps the storage layer inspectable
//! with standard tools (`grep`, `cut`) and avoids any serialization
//! dependency, per the workspace's dependency policy.
//!
//! Layout (sections in fixed order):
//!
//! ```text
//! #hygraph v1
//! S <id> <name;name;...>          series declaration (escaped names)
//! O <id> <t> <v1,v2,...>          one observation row
//! V <id> <kind> <labels> <start> <end> <props>
//! E <id> <kind> <src> <dst> <labels> <start> <end> <props>
//! D V|E <element-id> <series-id>  δ mapping for ts-elements
//! G <id> <labels> <start> <end> <props>
//! M <subgraph> V|E <member-id> <start> <end>
//! ```
//!
//! Property encoding: `key=typed-value` pairs joined by `;`, where the
//! value is `i:<int>`, `f:<float>`, `s:<escaped string>`, `b:<bool>`,
//! `t:<millis>`, `d:<millis>`, `n:` (null) or `S:<series-id>`.
//! Escapes: `\\t`, `\\n`, `\\;`, `\\=`, `\\\\`.

use crate::model::{ElementKind, ElementRef, HyGraph};
use hygraph_ts::MultiSeries;
use hygraph_types::{
    Duration, EdgeId, HyGraphError, Interval, Label, PropertyMap, PropertyValue, Result, SeriesId,
    SubgraphId, Timestamp, Value, VertexId,
};
use std::collections::HashMap;

const HEADER: &str = "#hygraph v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            ';' => out.push_str("\\;"),
            '=' => out.push_str("\\="),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(';') => out.push(';'),
            Some('=') => out.push('='),
            other => {
                return Err(HyGraphError::invalid(format!(
                    "bad escape sequence \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_owned(),
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("i:{i}"),
        // {:?} keeps full f64 precision
        Value::Float(f) => format!("f:{f:?}"),
        Value::Str(s) => format!("s:{}", escape(s)),
        Value::Time(t) => format!("t:{}", t.millis()),
        Value::Span(d) => format!("d:{}", d.millis()),
    }
}

fn decode_value(s: &str) -> Result<Value> {
    let (tag, body) = s
        .split_once(':')
        .ok_or_else(|| HyGraphError::invalid(format!("untyped value '{s}'")))?;
    Ok(match tag {
        "n" => Value::Null,
        "b" => Value::Bool(body.parse().map_err(|_| bad(s))?),
        "i" => Value::Int(body.parse().map_err(|_| bad(s))?),
        "f" => Value::Float(body.parse().map_err(|_| bad(s))?),
        "s" => Value::Str(unescape(body)?),
        "t" => Value::Time(Timestamp::from_millis(body.parse().map_err(|_| bad(s))?)),
        "d" => Value::Span(Duration::from_millis(body.parse().map_err(|_| bad(s))?)),
        _ => return Err(bad(s)),
    })
}

fn bad(s: &str) -> HyGraphError {
    HyGraphError::invalid(format!("malformed value '{s}'"))
}

fn encode_props(props: &PropertyMap) -> String {
    if props.is_empty() {
        return "-".to_owned();
    }
    props
        .iter()
        .map(|(k, v)| {
            let encoded = match v {
                PropertyValue::Static(v) => encode_value(v),
                PropertyValue::Series(id) => format!("S:{}", id.raw()),
            };
            format!("{}={encoded}", escape(k.as_str()))
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_props(s: &str) -> Result<PropertyMap> {
    let mut props = PropertyMap::new();
    if s == "-" {
        return Ok(props);
    }
    for pair in split_unescaped(s, ';') {
        let mut kv = split_unescaped(&pair, '=');
        let (Some(k), Some(v), None) = (kv.next(), kv.next(), kv.next()) else {
            return Err(HyGraphError::invalid(format!(
                "malformed property '{pair}'"
            )));
        };
        let key = unescape(&k)?;
        if let Some(sid) = v.strip_prefix("S:") {
            let id: u64 = sid.parse().map_err(|_| bad(&v))?;
            props.set(key, PropertyValue::Series(SeriesId::new(id)));
        } else {
            props.set(key, decode_value(&v)?);
        }
    }
    Ok(props)
}

/// Splits on `sep` while respecting backslash escapes (the separator
/// survives inside escaped sequences).
fn split_unescaped(s: &str, sep: char) -> impl Iterator<Item = String> + '_ {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\');
    }
    parts.push(cur);
    parts.into_iter()
}

fn encode_bound(t: Timestamp) -> String {
    if t == Timestamp::MIN {
        "-inf".to_owned()
    } else if t == Timestamp::MAX {
        "+inf".to_owned()
    } else {
        t.millis().to_string()
    }
}

fn decode_bound(s: &str) -> Result<Timestamp> {
    Ok(match s {
        "-inf" => Timestamp::MIN,
        "+inf" => Timestamp::MAX,
        other => Timestamp::from_millis(other.parse().map_err(|_| bad(other))?),
    })
}

fn encode_labels(labels: &[Label]) -> String {
    if labels.is_empty() {
        return "-".to_owned();
    }
    labels
        .iter()
        .map(|l| escape(l.as_str()))
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_labels(s: &str) -> Result<Vec<Label>> {
    if s == "-" {
        return Ok(Vec::new());
    }
    split_unescaped(s, ';')
        .map(|part| unescape(&part).map(Label::new))
        .collect()
}

/// Serialises a HyGraph instance into any [`std::fmt::Write`] sink,
/// propagating write failures instead of discarding them.
pub fn write_graph<W: std::fmt::Write>(hg: &HyGraph, out: &mut W) -> std::fmt::Result {
    writeln!(out, "{HEADER}")?;
    // series
    for (id, s) in hg.all_series() {
        let names = s
            .names()
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(";");
        writeln!(out, "S\t{}\t{}", id.raw(), names)?;
        for i in 0..s.len() {
            let (t, row) = s.row(i).expect("index in range");
            let vals = row
                .iter()
                .map(|v| format!("{v:?}"))
                .collect::<Vec<_>>()
                .join(",");
            writeln!(out, "O\t{}\t{}\t{}", id.raw(), t.millis(), vals)?;
        }
    }
    // vertices (id order keeps the file deterministic and reload dense)
    let g = hg.topology();
    for v in g.vertices() {
        let kind = hg.vertex_kind(v.id).expect("vertex exists");
        writeln!(
            out,
            "V\t{}\t{}\t{}\t{}\t{}\t{}",
            v.id.raw(),
            kind_tag(kind),
            encode_labels(&v.labels),
            encode_bound(v.validity.start),
            encode_bound(v.validity.end),
            encode_props(&v.props)
        )?;
    }
    for e in g.edges() {
        let kind = hg.edge_kind(e.id).expect("edge exists");
        writeln!(
            out,
            "E\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            e.id.raw(),
            kind_tag(kind),
            e.src.raw(),
            e.dst.raw(),
            encode_labels(&e.labels),
            encode_bound(e.validity.start),
            encode_bound(e.validity.end),
            encode_props(&e.props)
        )?;
    }
    // δ mappings
    for v in hg.vertices_of_kind(ElementKind::Ts) {
        let sid = hg.delta_id(ElementRef::Vertex(v)).expect("ts vertex");
        writeln!(out, "D\tV\t{}\t{}", v.raw(), sid.raw())?;
    }
    for e in hg.edges_of_kind(ElementKind::Ts) {
        let sid = hg.delta_id(ElementRef::Edge(e)).expect("ts edge");
        writeln!(out, "D\tE\t{}\t{}", e.raw(), sid.raw())?;
    }
    // subgraphs
    for sg in hg.subgraphs() {
        writeln!(
            out,
            "G\t{}\t{}\t{}\t{}\t{}",
            sg.id.raw(),
            encode_labels(&sg.labels),
            encode_bound(sg.validity.start),
            encode_bound(sg.validity.end),
            encode_props(&sg.props)
        )?;
        for &(v, iv) in sg.vertex_members() {
            writeln!(
                out,
                "M\t{}\tV\t{}\t{}\t{}",
                sg.id.raw(),
                v.raw(),
                encode_bound(iv.start),
                encode_bound(iv.end)
            )?;
        }
        for &(e, iv) in sg.edge_members() {
            writeln!(
                out,
                "M\t{}\tE\t{}\t{}\t{}",
                sg.id.raw(),
                e.raw(),
                encode_bound(iv.start),
                encode_bound(iv.end)
            )?;
        }
    }
    Ok(())
}

/// Serialises a HyGraph instance to the text format.
pub fn to_string(hg: &HyGraph) -> Result<String> {
    let mut out = String::new();
    write_graph(hg, &mut out)
        .map_err(|_| HyGraphError::io("formatting failed while serialising HyGraph"))?;
    Ok(out)
}

fn kind_tag(k: ElementKind) -> &'static str {
    match k {
        ElementKind::Pg => "pg",
        ElementKind::Ts => "ts",
    }
}

fn parse_kind(s: &str) -> Result<ElementKind> {
    match s {
        "pg" => Ok(ElementKind::Pg),
        "ts" => Ok(ElementKind::Ts),
        other => Err(HyGraphError::invalid(format!("unknown kind '{other}'"))),
    }
}

/// Parses a HyGraph instance from the text format and validates it.
///
/// Ids are remapped densely in file order; series-valued property
/// references and δ mappings are translated accordingly.
pub fn from_str(input: &str) -> Result<HyGraph> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        other => {
            return Err(HyGraphError::invalid(format!(
                "missing header '{HEADER}', found {:?}",
                other.map(|(_, l)| l)
            )))
        }
    }

    struct PendingVertex {
        id: u64,
        kind: ElementKind,
        labels: Vec<Label>,
        validity: Interval,
        props: PropertyMap,
    }
    struct PendingEdge {
        id: u64,
        kind: ElementKind,
        src: u64,
        dst: u64,
        labels: Vec<Label>,
        validity: Interval,
        props: PropertyMap,
    }
    let mut series_buf: Vec<(u64, MultiSeries)> = Vec::new();
    let mut vertices: Vec<PendingVertex> = Vec::new();
    let mut edges: Vec<PendingEdge> = Vec::new();
    let mut deltas: Vec<(char, u64, u64)> = Vec::new();
    let mut subgraphs: Vec<(u64, Vec<Label>, Interval, PropertyMap)> = Vec::new();
    let mut members: Vec<(u64, char, u64, Interval)> = Vec::new();

    for (lineno, line) in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let err = |msg: String| HyGraphError::Parse {
            offset: lineno + 1,
            message: msg,
        };
        let need = |n: usize| -> Result<()> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(err(format!(
                    "record '{}' needs {n} fields, got {}",
                    fields[0],
                    fields.len()
                )))
            }
        };
        let parse_u64 = |s: &str, what: &str| -> Result<u64> {
            s.parse().map_err(|_| err(format!("bad {what} '{s}'")))
        };
        let interval = |a: &str, b: &str| -> Result<Interval> {
            Interval::try_new(decode_bound(a)?, decode_bound(b)?)
                .ok_or_else(|| err("reversed validity interval".to_owned()))
        };
        match fields[0] {
            "S" => {
                need(3)?;
                let raw = parse_u64(fields[1], "series id")?;
                let names: Vec<String> = split_unescaped(fields[2], ';')
                    .map(|n| unescape(&n))
                    .collect::<Result<_>>()?;
                series_buf.push((raw, MultiSeries::new(names)));
            }
            "O" => {
                need(4)?;
                let raw = parse_u64(fields[1], "series id")?;
                let t: i64 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("bad timestamp '{}'", fields[2])))?;
                let row: Vec<f64> = fields[3]
                    .split(',')
                    .map(|x| {
                        x.parse()
                            .map_err(|_| err(format!("bad observation value '{x}'")))
                    })
                    .collect::<Result<_>>()?;
                let target = series_buf
                    .iter_mut()
                    .rev()
                    .find(|(id, _)| *id == raw)
                    .ok_or_else(|| err("observation before series declaration".to_owned()))?;
                target.1.push(Timestamp::from_millis(t), &row)?;
            }
            "V" => {
                need(7)?;
                vertices.push(PendingVertex {
                    id: parse_u64(fields[1], "vertex id")?,
                    kind: parse_kind(fields[2])?,
                    labels: decode_labels(fields[3])?,
                    validity: interval(fields[4], fields[5])?,
                    props: decode_props(fields[6])?,
                });
            }
            "E" => {
                need(9)?;
                edges.push(PendingEdge {
                    id: parse_u64(fields[1], "edge id")?,
                    kind: parse_kind(fields[2])?,
                    src: parse_u64(fields[3], "source id")?,
                    dst: parse_u64(fields[4], "target id")?,
                    labels: decode_labels(fields[5])?,
                    validity: interval(fields[6], fields[7])?,
                    props: decode_props(fields[8])?,
                });
            }
            "D" => {
                need(4)?;
                let tag = match fields[1] {
                    "V" => 'V',
                    "E" => 'E',
                    other => return Err(err(format!("bad delta target '{other}'"))),
                };
                deltas.push((
                    tag,
                    parse_u64(fields[2], "element id")?,
                    parse_u64(fields[3], "series id")?,
                ));
            }
            "G" => {
                need(6)?;
                subgraphs.push((
                    parse_u64(fields[1], "subgraph id")?,
                    decode_labels(fields[2])?,
                    interval(fields[3], fields[4])?,
                    decode_props(fields[5])?,
                ));
            }
            "M" => {
                need(6)?;
                let tag = match fields[2] {
                    "V" => 'V',
                    "E" => 'E',
                    other => return Err(err(format!("bad member target '{other}'"))),
                };
                members.push((
                    parse_u64(fields[1], "subgraph id")?,
                    tag,
                    parse_u64(fields[3], "member id")?,
                    interval(fields[4], fields[5])?,
                ));
            }
            other => return Err(err(format!("unknown record type '{other}'"))),
        }
    }

    // materialise: series first (properties and δ reference them)
    let mut hg = HyGraph::new();
    let mut series_map: HashMap<u64, SeriesId> = HashMap::new();
    for (raw, s) in series_buf {
        let new_id = hg.add_series(s);
        series_map.insert(raw, new_id);
    }
    let remap_props = |props: PropertyMap| -> Result<PropertyMap> {
        props
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    PropertyValue::Series(old) => PropertyValue::Series(
                        *series_map
                            .get(&old.raw())
                            .ok_or(HyGraphError::SeriesNotFound(*old))?,
                    ),
                    other => other.clone(),
                };
                Ok((k.clone(), v))
            })
            .collect()
    };

    // the δ target for each pending ts-element
    let delta_of = |tag: char, id: u64| -> Option<u64> {
        deltas
            .iter()
            .find(|&&(t, eid, _)| t == tag && eid == id)
            .map(|&(_, _, sid)| sid)
    };

    let mut vertex_map: HashMap<u64, VertexId> = HashMap::new();
    for pv in vertices {
        let new_id = match pv.kind {
            ElementKind::Pg => {
                hg.add_pg_vertex_valid(pv.labels, remap_props(pv.props)?, pv.validity)
            }
            ElementKind::Ts => {
                let raw_sid = delta_of('V', pv.id).ok_or_else(|| {
                    HyGraphError::invalid(format!("ts vertex {} has no D record", pv.id))
                })?;
                let sid = *series_map
                    .get(&raw_sid)
                    .ok_or(HyGraphError::SeriesNotFound(SeriesId::new(raw_sid)))?;
                hg.add_ts_vertex(pv.labels, sid)?
            }
        };
        vertex_map.insert(pv.id, new_id);
    }
    let mut edge_map: HashMap<u64, EdgeId> = HashMap::new();
    for pe in edges {
        let src = *vertex_map
            .get(&pe.src)
            .ok_or(HyGraphError::VertexNotFound(VertexId::new(pe.src)))?;
        let dst = *vertex_map
            .get(&pe.dst)
            .ok_or(HyGraphError::VertexNotFound(VertexId::new(pe.dst)))?;
        let new_id = match pe.kind {
            ElementKind::Pg => {
                hg.add_pg_edge_valid(src, dst, pe.labels, remap_props(pe.props)?, pe.validity)?
            }
            ElementKind::Ts => {
                let raw_sid = delta_of('E', pe.id).ok_or_else(|| {
                    HyGraphError::invalid(format!("ts edge {} has no D record", pe.id))
                })?;
                let sid = *series_map
                    .get(&raw_sid)
                    .ok_or(HyGraphError::SeriesNotFound(SeriesId::new(raw_sid)))?;
                hg.add_ts_edge(src, dst, pe.labels, sid)?
            }
        };
        edge_map.insert(pe.id, new_id);
    }
    let mut subgraph_map: HashMap<u64, SubgraphId> = HashMap::new();
    for (raw, labels, validity, props) in subgraphs {
        let sid = hg.create_subgraph(labels, remap_props(props)?, validity);
        subgraph_map.insert(raw, sid);
    }
    for (sg_raw, tag, member_raw, iv) in members {
        let sg = *subgraph_map
            .get(&sg_raw)
            .ok_or(HyGraphError::SubgraphNotFound(SubgraphId::new(sg_raw)))?;
        match tag {
            'V' => {
                let v = *vertex_map
                    .get(&member_raw)
                    .ok_or(HyGraphError::VertexNotFound(VertexId::new(member_raw)))?;
                hg.add_subgraph_vertex(sg, v, iv)?;
            }
            _ => {
                let e = *edge_map
                    .get(&member_raw)
                    .ok_or(HyGraphError::EdgeNotFound(EdgeId::new(member_raw)))?;
                hg.add_subgraph_edge(sg, e, iv)?;
            }
        }
    }
    hg.validate()?;
    Ok(hg)
}

/// Bridges `fmt::Write` serialisation onto an `io::Write` sink while
/// holding on to the real IO error (the `fmt` layer can only signal a
/// unitary `fmt::Error`).
struct IoSink<W: std::io::Write> {
    inner: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> std::fmt::Write for IoSink<W> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            std::fmt::Error
        })
    }
}

/// Writes an instance to a file, streaming — the serialisation never
/// materialises in memory, and every IO failure is propagated.
pub fn write_file(hg: &HyGraph, path: impl AsRef<std::path::Path>) -> Result<()> {
    use std::io::Write as _;
    let file = std::fs::File::create(path)?;
    let mut sink = IoSink {
        inner: std::io::BufWriter::new(file),
        error: None,
    };
    if write_graph(hg, &mut sink).is_err() {
        return Err(match sink.error.take() {
            Some(e) => HyGraphError::from(e),
            None => HyGraphError::io("formatting failed while serialising HyGraph"),
        });
    }
    sink.inner.flush()?;
    Ok(())
}

/// Reads an instance from a file.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<HyGraph> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::props;

    fn ts(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn rich_instance() -> HyGraph {
        let mut hg = HyGraph::new();
        let mut m = MultiSeries::new(["price", "volume"]);
        m.push(ts(0), &[100.5, 3.0]).unwrap();
        m.push(ts(60_000), &[101.25, 7.0]).unwrap();
        let sid = hg.add_series(m);
        let extra = hg.add_univariate_series(
            "load",
            &hygraph_ts::TimeSeries::from_pairs([(ts(5), 1.5), (ts(10), -2.25)]),
        );
        let u = hg.add_pg_vertex_valid(
            ["User", "Person"],
            props! {
                "name" => "a=b;c\td",    // exercises every escape
                "age" => 34i64,
                "score" => 0.1234567890123,
                "vip" => true,
                "joined" => ts(42),
                "nothing" => Value::Null
            },
            Interval::new(ts(0), ts(1_000)),
        );
        let card = hg.add_ts_vertex(["Card"], sid).unwrap();
        hg.add_pg_edge_valid(
            u,
            card,
            ["USES"],
            props! {"since" => ts(10)},
            Interval::new(ts(0), ts(900)),
        )
        .unwrap();
        let flow =
            hg.add_univariate_series("flow", &hygraph_ts::TimeSeries::from_pairs([(ts(1), 9.0)]));
        hg.add_ts_edge(card, u, ["FLOW"], flow).unwrap();
        hg.set_property(ElementRef::Vertex(u), "load", extra)
            .unwrap();
        let sg = hg.create_subgraph(
            ["Suspicious"],
            props! {"reason" => "test"},
            Interval::new(ts(0), ts(500)),
        );
        hg.add_subgraph_vertex(sg, u, Interval::new(ts(0), ts(100)))
            .unwrap();
        hg
    }

    #[test]
    fn roundtrip_is_lossless() {
        let hg = rich_instance();
        let text = to_string(&hg).unwrap();
        let back = from_str(&text).expect("parses");
        // structure
        assert_eq!(back.vertex_count(), hg.vertex_count());
        assert_eq!(back.edge_count(), hg.edge_count());
        assert_eq!(back.series_count(), hg.series_count());
        assert_eq!(back.subgraphs().count(), hg.subgraphs().count());
        // second serialisation is byte-identical (canonical form)
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn roundtrip_preserves_values_and_escapes() {
        let hg = rich_instance();
        let back = from_str(&to_string(&hg).unwrap()).unwrap();
        let u = back
            .topology()
            .vertices()
            .find(|v| v.has_label("User"))
            .expect("user exists");
        assert_eq!(
            u.props.static_value("name").unwrap().as_str(),
            Some("a=b;c\td")
        );
        assert_eq!(u.props.static_value("age").unwrap().as_i64(), Some(34));
        assert_eq!(
            u.props.static_value("score").unwrap().as_f64(),
            Some(0.1234567890123)
        );
        assert_eq!(
            u.props.static_value("joined").unwrap().as_time(),
            Some(ts(42))
        );
        assert!(u.props.static_value("nothing").unwrap().is_null());
        // series-valued property remapped and intact
        let sid = u.props.series_value("load").expect("series prop");
        let s = back.series(sid).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).unwrap(), &[1.5, -2.25]);
    }

    #[test]
    fn roundtrip_preserves_delta_and_kinds() {
        let hg = rich_instance();
        let back = from_str(&to_string(&hg).unwrap()).unwrap();
        let card = back
            .topology()
            .vertices()
            .find(|v| v.has_label("Card"))
            .expect("card");
        assert_eq!(back.vertex_kind(card.id).unwrap(), ElementKind::Ts);
        let s = back.delta(ElementRef::Vertex(card.id)).unwrap();
        assert_eq!(s.names(), &["price".to_owned(), "volume".to_owned()]);
        assert_eq!(s.row_at(ts(60_000)), Some(vec![101.25, 7.0]));
        // ts edge too
        let flow_edge = back.edges_of_kind(ElementKind::Ts).next().expect("ts edge");
        assert!(!back.delta(ElementRef::Edge(flow_edge)).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_preserves_subgraphs() {
        let hg = rich_instance();
        let back = from_str(&to_string(&hg).unwrap()).unwrap();
        let sg = back.subgraphs().next().expect("subgraph");
        assert!(sg.has_label("Suspicious"));
        assert_eq!(sg.validity, Interval::new(ts(0), ts(500)));
        assert_eq!(sg.vertex_members().len(), 1);
        assert_eq!(sg.vertex_members()[0].1, Interval::new(ts(0), ts(100)));
    }

    #[test]
    fn parse_errors_are_positioned() {
        assert!(from_str("").is_err(), "missing header");
        assert!(from_str("#hygraph v2\n").is_err(), "wrong version");
        let cases = [
            "#hygraph v1\nX\t1",
            "#hygraph v1\nV\t0\tpg\t-\t0",             // too few fields
            "#hygraph v1\nV\t0\tzz\t-\t0\t10\t-",      // bad kind
            "#hygraph v1\nV\t0\tpg\t-\t10\t0\t-",      // reversed interval
            "#hygraph v1\nO\t0\t5\t1.0",               // observation before series
            "#hygraph v1\nE\t0\tpg\t0\t1\t-\t0\t1\t-", // edge without vertices
        ];
        for case in cases {
            assert!(from_str(case).is_err(), "should fail: {case:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let hg = rich_instance();
        let dir = std::env::temp_dir().join("hygraph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.hg");
        write_file(&hg, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.vertex_count(), hg.vertex_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_file_propagates_io_errors() {
        let hg = rich_instance();
        let missing_dir = std::env::temp_dir()
            .join("hygraph-io-test-does-not-exist")
            .join("instance.hg");
        let err = write_file(&hg, &missing_dir).unwrap_err();
        assert!(matches!(err, HyGraphError::Io(_)), "got {err:?}");
        let err = read_file(&missing_dir).unwrap_err();
        assert!(matches!(err, HyGraphError::Io(_)), "got {err:?}");
    }

    #[test]
    fn empty_instance_roundtrip() {
        let hg = HyGraph::new();
        let back = from_str(&to_string(&hg).unwrap()).unwrap();
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.series_count(), 0);
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "a\tb", "x;y=z", "back\\slash", "new\nline", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
        assert!(unescape("bad\\q").is_err());
    }
}
