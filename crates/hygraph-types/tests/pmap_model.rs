//! Model tests for the persistent map ([`hygraph_types::pmap`]): every
//! operation sequence must leave [`PMap`] indistinguishable from a
//! `BTreeMap` reference model, clones must be true immutable snapshots
//! of the moment they were taken, and the iteration order / trie shape
//! must be a pure function of the key set — the property the canonical
//! checkpoint and WAL encodings are built on.

use hygraph_types::pmap::{PMap, PmapKey, SnapMap, SnapshotImpl};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One raw op draw: `(kind, key material, value)`. Decoded in the test
/// body (the vendored proptest has no combinators): kinds 0–3 insert,
/// 4–5 remove, 6 gets — removals common enough to empty whole subtrees.
type RawOp = (u64, u64, u32);

fn raw_ops(max: usize) -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((0u64..7, 0u64..=u64::MAX, 0u32..=u32::MAX), 0..max)
}

/// Key classes: mostly dense ids (the workload's shape — shared high
/// bits, divergence only in the last chunks), some full-width hashes,
/// some keys differing only in the top chunk.
fn decode_key(raw: u64) -> u64 {
    match raw % 8 {
        0..=4 => (raw >> 3) % 512,
        5 | 6 => raw >> 3,
        _ => ((raw >> 3) % 4) << 58,
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    Get(u64),
}

fn decode(ops: &[RawOp]) -> Vec<Op> {
    ops.iter()
        .map(|&(kind, raw, v)| {
            let k = decode_key(raw);
            match kind {
                0..=3 => Op::Insert(k, v),
                4 | 5 => Op::Remove(k),
                _ => Op::Get(k),
            }
        })
        .collect()
}

proptest! {
    /// Any op sequence: PMap answers exactly like the BTreeMap model,
    /// and (identity-hashed keys) iterates in exactly its order.
    #[test]
    fn pmap_matches_btreemap_model(raw in raw_ops(200)) {
        let mut pmap: PMap<u64, u32> = PMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in decode(&raw) {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(pmap.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(pmap.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(pmap.get(&k), model.get(&k)),
            }
            prop_assert_eq!(pmap.len(), model.len());
        }
        let got: Vec<(u64, u32)> = pmap.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want, "iteration must be ascending-id, entry-exact");
    }

    /// A clone taken mid-sequence is frozen: the original absorbs the
    /// remaining ops, the clone stays exactly the mid-point model.
    #[test]
    fn clone_is_an_immutable_snapshot(before in raw_ops(100), after in raw_ops(100)) {
        let mut pmap: PMap<u64, u32> = PMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        let apply = |pmap: &mut PMap<u64, u32>, model: &mut BTreeMap<u64, u32>, ops: &[RawOp]| {
            for op in decode(ops) {
                match op {
                    Op::Insert(k, v) => {
                        pmap.insert(k, v);
                        model.insert(k, v);
                    }
                    Op::Remove(k) => {
                        pmap.remove(&k);
                        model.remove(&k);
                    }
                    Op::Get(k) => {
                        let _ = (pmap.get(&k), model.get(&k));
                    }
                }
            }
        };
        apply(&mut pmap, &mut model, &before);
        let frozen = pmap.clone();
        let frozen_model = model.clone();
        apply(&mut pmap, &mut model, &after);
        // the snapshot still answers from the clone point
        prop_assert_eq!(frozen.len(), frozen_model.len());
        for (k, v) in &frozen_model {
            prop_assert_eq!(frozen.get(k), Some(v));
        }
        let got: Vec<(u64, u32)> = frozen.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u32)> = frozen_model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        // and the diverged original matches the live model
        let got: Vec<(u64, u32)> = pmap.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// History independence: the same final key set reached through any
    /// insertion order — including via transient keys later removed —
    /// compares equal and iterates identically. This is the trie-shape
    /// canonicality the byte-identical encodings rely on.
    #[test]
    fn shape_is_history_independent(
        raw_keys in prop::collection::vec(0u64..=u64::MAX, 0..80),
        raw_extra in prop::collection::vec(0u64..=u64::MAX, 0..40),
        seed in 0u64..=u64::MAX,
    ) {
        let keys: BTreeSet<u64> = raw_keys.iter().map(|&r| decode_key(r)).collect();
        let extra: Vec<u64> = raw_extra.iter().map(|&r| decode_key(r)).collect();
        let forward: PMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
        // a scrambled order: Fisher–Yates walk driven by an LCG
        let mut scrambled: Vec<u64> = keys.iter().copied().collect();
        let mut s = seed;
        for i in (1..scrambled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            scrambled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut devious: PMap<u64, u64> = PMap::new();
        for &k in &extra {
            devious.insert(k, u64::MAX);
        }
        for &k in &scrambled {
            devious.insert(k, k);
        }
        for &k in &extra {
            if !keys.contains(&k) {
                devious.remove(&k);
            } else {
                devious.insert(k, k); // restore the clobbered value
            }
        }
        prop_assert_eq!(&forward, &devious);
        let a: Vec<u64> = forward.keys().copied().collect();
        let b: Vec<u64> = devious.keys().copied().collect();
        prop_assert_eq!(a, b);
    }
}

/// Key whose hash keeps only `k % 4`: every same-residue pair is a full
/// 64-bit collision, so these sequences live almost entirely in the
/// sorted collision leaves.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Collider(u64);
impl PmapKey for Collider {
    fn pmap_hash(&self) -> u64 {
        self.0 % 4
    }
}

proptest! {
    /// Hostile collisions: the model equivalence holds when nearly every
    /// key collides, and iteration is (hash, key)-ordered.
    #[test]
    fn collision_leaves_match_model(raw in raw_ops(120)) {
        let mut pmap: PMap<Collider, u32> = PMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in decode(&raw) {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(pmap.insert(Collider(k), v), model.insert(k, v));
                }
                Op::Remove(k) => prop_assert_eq!(pmap.remove(&Collider(k)), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(pmap.get(&Collider(k)), model.get(&k)),
            }
        }
        let got: Vec<u64> = pmap.keys().map(|k| k.0).collect();
        let mut want: Vec<u64> = model.keys().copied().collect();
        want.sort_by_key(|&k| (k % 4, k));
        prop_assert_eq!(got, want, "collision leaves iterate (hash, key)-sorted");
    }

    /// The dual-mode [`SnapMap`] answers identically in both modes for
    /// any op sequence (and, id keys, iterates identically too).
    #[test]
    fn snapmap_modes_are_indistinguishable(raw in raw_ops(150)) {
        let mut cow: SnapMap<u64, u32> = SnapMap::new_with(SnapshotImpl::Cow);
        let mut pm: SnapMap<u64, u32> = SnapMap::new_with(SnapshotImpl::Pmap);
        for op in decode(&raw) {
            match op {
                Op::Insert(k, v) => prop_assert_eq!(cow.insert(k, v), pm.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(cow.remove(&k), pm.remove(&k)),
                Op::Get(k) => prop_assert_eq!(cow.get(&k), pm.get(&k)),
            }
            prop_assert_eq!(cow.len(), pm.len());
        }
        let a: Vec<(u64, u32)> = cow.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u64, u32)> = pm.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b, "id-keyed SnapMaps iterate identically across modes");
    }
}
