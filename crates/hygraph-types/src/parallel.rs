//! Workspace-wide parallel-execution configuration.
//!
//! Every parallel code path in HyGraph (query fan-out, graph algorithms,
//! time-series batch operators, the storage benchmark harness) consults
//! this module to decide *whether* to fan out and across *how many*
//! threads. Centralising the decision keeps the determinism contract in
//! one place: a parallel path must produce results identical to its
//! sequential counterpart, so switching modes — or changing the thread
//! count — can never change an answer, only its latency.
//!
//! Configuration surface, in increasing precedence:
//!
//! 1. Defaults: all available cores, sequential below
//!    [`DEFAULT_SEQ_THRESHOLD`] work items.
//! 2. Environment: `HYGRAPH_THREADS` (worker count, `1` disables
//!    parallelism) and `HYGRAPH_SEQ_THRESHOLD` (fan-out cut-over size),
//!    read once per process.
//! 3. Programmatic: [`ParallelConfig`] applied via [`ParallelConfig::install`], which
//!    overrides the environment for the rest of the process (tests use
//!    this to force a fixed thread count regardless of machine size).
//! 4. Per-call: an explicit [`ExecMode`] passed to APIs that accept one
//!    (e.g. `execute_mode`) bypasses the global knobs entirely.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Below this many independent work items, parallel entry points run
/// sequentially: spawning threads costs more than it saves on small
/// inputs, and the results are identical either way.
pub const DEFAULT_SEQ_THRESHOLD: usize = 256;

/// How a hybrid operator should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Decide from input size and the configured threshold.
    #[default]
    Auto,
    /// Force the sequential path.
    Sequential,
    /// Force the parallel path (even for tiny inputs — used by the
    /// determinism tests to exercise fan-out on small fixtures).
    Parallel,
}

// 0 = unset (fall through to env / defaults)
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
// usize::MAX = unset
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse::<usize>().ok()
}

fn env_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| env_usize("HYGRAPH_THREADS").filter(|&n| n > 0).unwrap_or(0))
}

fn env_threshold() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| env_usize("HYGRAPH_SEQ_THRESHOLD").unwrap_or(DEFAULT_SEQ_THRESHOLD))
}

/// Builder for process-wide parallel execution settings.
///
/// ```
/// use hygraph_types::parallel::ParallelConfig;
///
/// ParallelConfig::new().threads(4).seq_threshold(1).install();
/// assert_eq!(hygraph_types::parallel::configured_threads(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelConfig {
    threads: Option<usize>,
    seq_threshold: Option<usize>,
}

impl ParallelConfig {
    /// A config that changes nothing until its setters are called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads parallel paths may use. `1` makes every
    /// `Auto` decision sequential. `0` restores "all available cores".
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Input size below which `Auto` runs sequentially. `0` parallelises
    /// everything (other than what `threads(1)` forbids).
    pub fn seq_threshold(mut self, n: usize) -> Self {
        self.seq_threshold = Some(n);
        self
    }

    /// Applies the settings process-wide; unset fields are untouched.
    /// Safe to call repeatedly — the last call wins. The thread count is
    /// also pushed into rayon's global pool configuration so `par_iter`
    /// call sites agree with [`configured_threads`].
    pub fn install(self) {
        if let Some(n) = self.threads {
            THREADS_OVERRIDE.store(n, Ordering::Relaxed);
            let _ = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global();
        }
        if let Some(t) = self.seq_threshold {
            THRESHOLD_OVERRIDE.store(t, Ordering::Relaxed);
        }
    }
}

/// The effective worker-thread count: [`ParallelConfig::install`]-ed override, else
/// `HYGRAPH_THREADS`, else `available_parallelism()`.
pub fn configured_threads() -> usize {
    let o = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The effective sequential cut-over: [`ParallelConfig::install`]-ed override, else
/// `HYGRAPH_SEQ_THRESHOLD`, else [`DEFAULT_SEQ_THRESHOLD`].
pub fn configured_seq_threshold() -> usize {
    let o = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if o != usize::MAX {
        return o;
    }
    env_threshold()
}

/// Whether an operator over `items` independent work units should take
/// its parallel path under `mode`.
pub fn should_parallelize(mode: ExecMode, items: usize) -> bool {
    match mode {
        ExecMode::Sequential => false,
        ExecMode::Parallel => items > 1,
        ExecMode::Auto => items >= configured_seq_threshold().max(2) && configured_threads() > 1,
    }
}

/// Shorthand for `should_parallelize(ExecMode::Auto, items)`.
pub fn auto_parallel(items: usize) -> bool {
    should_parallelize(ExecMode::Auto, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // install() mutates process-global state; serialise the tests that
    // depend on it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn scoped<T>(cfg: ParallelConfig, f: impl FnOnce() -> T) -> T {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev_threads = THREADS_OVERRIDE.load(Ordering::Relaxed);
        let prev_threshold = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
        cfg.install();
        let out = f();
        THREADS_OVERRIDE.store(prev_threads, Ordering::Relaxed);
        THRESHOLD_OVERRIDE.store(prev_threshold, Ordering::Relaxed);
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(prev_threads)
            .build_global();
        out
    }

    #[test]
    fn forced_modes_ignore_threshold() {
        scoped(ParallelConfig::new().threads(8).seq_threshold(1000), || {
            assert!(!should_parallelize(ExecMode::Sequential, 1_000_000));
            assert!(should_parallelize(ExecMode::Parallel, 2));
            // a single item is never worth fanning out
            assert!(!should_parallelize(ExecMode::Parallel, 1));
            assert!(!should_parallelize(ExecMode::Parallel, 0));
        });
    }

    #[test]
    fn auto_respects_threshold_and_thread_count() {
        scoped(ParallelConfig::new().threads(8).seq_threshold(100), || {
            assert!(!auto_parallel(99));
            assert!(auto_parallel(100));
        });
        scoped(ParallelConfig::new().threads(1).seq_threshold(100), || {
            assert!(!auto_parallel(1_000_000), "threads(1) disables fan-out");
        });
    }

    #[test]
    fn threshold_zero_still_requires_two_items() {
        scoped(ParallelConfig::new().threads(8).seq_threshold(0), || {
            assert!(!auto_parallel(1));
            assert!(auto_parallel(2));
        });
    }

    #[test]
    fn install_is_partial_and_repeatable() {
        scoped(ParallelConfig::new().threads(3).seq_threshold(7), || {
            assert_eq!(configured_threads(), 3);
            assert_eq!(configured_seq_threshold(), 7);
            // updating only the threshold leaves the thread count alone
            ParallelConfig::new().seq_threshold(9).install();
            assert_eq!(configured_threads(), 3);
            assert_eq!(configured_seq_threshold(), 9);
        });
    }
}
