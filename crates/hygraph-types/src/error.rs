//! Workspace-wide error type.

use crate::ids::{EdgeId, SeriesId, SubgraphId, VertexId};
use crate::time::Timestamp;
use std::fmt;

/// Result alias used across the HyGraph workspace.
pub type Result<T> = std::result::Result<T, HyGraphError>;

/// Errors produced by HyGraph operations.
#[derive(Clone, Debug, PartialEq)]
pub enum HyGraphError {
    /// Referenced vertex does not exist.
    VertexNotFound(VertexId),
    /// Referenced edge does not exist.
    EdgeNotFound(EdgeId),
    /// Referenced subgraph does not exist.
    SubgraphNotFound(SubgraphId),
    /// Referenced time series does not exist.
    SeriesNotFound(SeriesId),
    /// A time-series operation was applied to an element of the wrong kind
    /// (e.g. asking for δ(v) of a property-graph vertex).
    KindMismatch {
        /// What the operation expected ("ts vertex", "pg edge", ...).
        expected: &'static str,
        /// What it got.
        got: &'static str,
    },
    /// Chronological-integrity violation in a time series (R2): an
    /// observation at `at` is not strictly after the series' last
    /// timestamp `last` under append-only insertion.
    OutOfOrder {
        /// The offending timestamp.
        at: Timestamp,
        /// The series' current last timestamp.
        last: Timestamp,
    },
    /// A duplicate timestamp was inserted where uniqueness is required.
    DuplicateTimestamp(Timestamp),
    /// Arity mismatch for multivariate series operations.
    ArityMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Provided number of variables.
        got: usize,
    },
    /// An operation needed a non-empty input.
    EmptyInput(&'static str),
    /// Invalid argument with a human-readable reason.
    InvalidArgument(String),
    /// Temporal-integrity violation in the graph (R2).
    TemporalIntegrity(String),
    /// Query parse error with position information.
    Parse {
        /// Byte offset in the query text.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Query plan/execution error.
    Query(String),
    /// Operating-system I/O failure (message form of `std::io::Error`,
    /// kept `Clone`/`PartialEq` like the rest of the enum).
    Io(String),
    /// The serving layer refused the request without executing it:
    /// admission queue full (backpressure), deadline exceeded, or the
    /// server is shutting down. Retryable by the client.
    Unavailable(String),
    /// Malformed persistent data: a checkpoint or WAL frame whose bytes
    /// fail structural validation (bad tag, truncated run, CRC mismatch).
    Corrupt {
        /// Byte offset inside the payload being decoded.
        offset: usize,
        /// What failed to decode.
        message: String,
    },
    /// A durable directory's on-disk layout does not match the store
    /// opening it — e.g. a single-WAL store pointed at a hash-sharded
    /// directory. The data is intact; open it with the matching store
    /// (or let the sharded store migrate it) instead of ignoring the
    /// foreign segments.
    ShardLayout(String),
}

impl HyGraphError {
    /// Shorthand for an [`HyGraphError::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        HyGraphError::InvalidArgument(msg.into())
    }

    /// Shorthand for a [`HyGraphError::Query`] error.
    pub fn query(msg: impl Into<String>) -> Self {
        HyGraphError::Query(msg.into())
    }

    /// Wraps a `std::io::Error` (or any displayable I/O failure).
    pub fn io(err: impl std::fmt::Display) -> Self {
        HyGraphError::Io(err.to_string())
    }

    /// Shorthand for an [`HyGraphError::Unavailable`] rejection.
    pub fn unavailable(msg: impl Into<String>) -> Self {
        HyGraphError::Unavailable(msg.into())
    }

    /// Shorthand for a [`HyGraphError::Corrupt`] error at offset 0.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        HyGraphError::Corrupt {
            offset: 0,
            message: msg.into(),
        }
    }

    /// Shorthand for a [`HyGraphError::ShardLayout`] mismatch.
    pub fn shard_layout(msg: impl Into<String>) -> Self {
        HyGraphError::ShardLayout(msg.into())
    }
}

impl From<std::io::Error> for HyGraphError {
    fn from(err: std::io::Error) -> Self {
        HyGraphError::Io(err.to_string())
    }
}

impl fmt::Display for HyGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyGraphError::VertexNotFound(v) => write!(f, "vertex {v} not found"),
            HyGraphError::EdgeNotFound(e) => write!(f, "edge {e} not found"),
            HyGraphError::SubgraphNotFound(s) => write!(f, "subgraph {s} not found"),
            HyGraphError::SeriesNotFound(t) => write!(f, "time series {t} not found"),
            HyGraphError::KindMismatch { expected, got } => {
                write!(f, "element kind mismatch: expected {expected}, got {got}")
            }
            HyGraphError::OutOfOrder { at, last } => write!(
                f,
                "out-of-order append at {at} (series last timestamp is {last})"
            ),
            HyGraphError::DuplicateTimestamp(t) => write!(f, "duplicate timestamp {t}"),
            HyGraphError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} variables, got {got}"
                )
            }
            HyGraphError::EmptyInput(what) => write!(f, "empty input: {what}"),
            HyGraphError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            HyGraphError::TemporalIntegrity(m) => write!(f, "temporal integrity violation: {m}"),
            HyGraphError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            HyGraphError::Query(m) => write!(f, "query error: {m}"),
            HyGraphError::Io(m) => write!(f, "io error: {m}"),
            HyGraphError::Unavailable(m) => write!(f, "unavailable: {m}"),
            HyGraphError::Corrupt { offset, message } => {
                write!(f, "corrupt data at byte {offset}: {message}")
            }
            HyGraphError::ShardLayout(m) => write!(f, "shard layout mismatch: {m}"),
        }
    }
}

impl std::error::Error for HyGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            HyGraphError::VertexNotFound(VertexId::new(3)).to_string(),
            "vertex v3 not found"
        );
        assert_eq!(
            HyGraphError::OutOfOrder {
                at: Timestamp::from_millis(5),
                last: Timestamp::from_millis(9)
            }
            .to_string(),
            "out-of-order append at t5 (series last timestamp is t9)"
        );
        assert_eq!(
            HyGraphError::Parse {
                offset: 4,
                message: "unexpected token".into()
            }
            .to_string(),
            "parse error at byte 4: unexpected token"
        );
    }

    #[test]
    fn helpers() {
        assert!(matches!(
            HyGraphError::invalid("bad"),
            HyGraphError::InvalidArgument(_)
        ));
        assert!(matches!(HyGraphError::query("bad"), HyGraphError::Query(_)));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HyGraphError::EmptyInput("series"));
    }
}
