//! Compact binary codec primitives shared by the durable-storage layer.
//!
//! [`ByteWriter`]/[`ByteReader`] implement the workspace's binary wire
//! format: LEB128 varints for lengths and unsigned integers, zig-zag
//! varints for signed integers, raw little-endian IEEE-754 bits for
//! floats (bit-exact round-trips, including NaN payloads and signed
//! zeros), and length-prefixed UTF-8 for strings. On top of the
//! primitives the module encodes the shared vocabulary types —
//! [`Timestamp`], [`Duration`], [`Interval`], [`Value`],
//! [`PropertyValue`], [`PropertyMap`], and [`Label`] lists — so the
//! checkpoint codecs in `hygraph-graph`/`hygraph-ts`/`hygraph-core` and
//! the WAL record codec in `hygraph-persist` all agree byte-for-byte.
//!
//! Decoding is *untrusted*: every read is bounds-checked and malformed
//! input surfaces as [`HyGraphError::Corrupt`], never a panic — the
//! recovery path leans on this to detect torn or damaged frames.
//!
//! The module also hosts [`crc32`], the CRC-32/ISO-HDLC checksum used to
//! guard WAL frames and checkpoint payloads (no external dependency,
//! per the workspace's offline policy).

use crate::error::{HyGraphError, Result};
use crate::ids::Label;
use crate::interval::Interval;
use crate::property::{PropertyMap, PropertyValue};
use crate::time::{Duration, Timestamp};
use crate::value::Value;
use crate::SeriesId;

// ---------------------------------------------------------------------
// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
// ---------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 checksum (ISO-HDLC, the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only binary encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Raw bytes, no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length/count shorthand.
    pub fn len_of(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Zig-zag LEB128 varint.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// IEEE-754 bits, little-endian — bit-exact round-trip.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// `1`/`0` byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.len_of(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Timestamp (zig-zag millis).
    pub fn timestamp(&mut self, t: Timestamp) {
        self.i64(t.millis());
    }

    /// Duration (zig-zag millis).
    pub fn duration(&mut self, d: Duration) {
        self.i64(d.millis());
    }

    /// Half-open interval as two timestamps.
    pub fn interval(&mut self, iv: &Interval) {
        self.timestamp(iv.start);
        self.timestamp(iv.end);
    }

    /// Tagged dynamic value.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Time(t) => {
                self.u8(5);
                self.timestamp(*t);
            }
            Value::Span(d) => {
                self.u8(6);
                self.duration(*d);
            }
        }
    }

    /// Static-or-series property value.
    pub fn property_value(&mut self, v: &PropertyValue) {
        match v {
            PropertyValue::Static(v) => {
                self.u8(0);
                self.value(v);
            }
            PropertyValue::Series(id) => {
                self.u8(1);
                self.u64(id.raw());
            }
        }
    }

    /// Whole property map (deterministic key order — `PropertyMap`
    /// iterates its BTreeMap).
    pub fn property_map(&mut self, props: &PropertyMap) {
        self.len_of(props.len());
        for (k, v) in props.iter() {
            self.str(k.as_str());
            self.property_value(v);
        }
    }

    /// Label list.
    pub fn labels(&mut self, labels: &[Label]) {
        self.len_of(labels.len());
        for l in labels {
            self.str(l.as_str());
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless every byte was consumed — guards against trailing
    /// garbage in checkpoint payloads.
    pub fn expect_exhausted(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(self.corrupt("trailing bytes after decoded payload"))
        }
    }

    fn corrupt(&self, what: &str) -> HyGraphError {
        HyGraphError::Corrupt {
            offset: self.pos,
            message: what.to_owned(),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.corrupt("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("truncated byte run"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// LEB128 varint.
    pub fn u64(&mut self) -> Result<u64> {
        let mut out = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                if shift == 63 && byte > 1 {
                    return Err(self.corrupt("varint overflows u64"));
                }
                return Ok(out);
            }
        }
        Err(self.corrupt("varint longer than 10 bytes"))
    }

    /// Length/count shorthand, sanity-bounded by the remaining input so
    /// hostile lengths cannot trigger huge allocations.
    pub fn len_of(&mut self) -> Result<usize> {
        let n = self.u64()? as usize;
        if n > self.remaining().saturating_mul(8).saturating_add(64) {
            return Err(self.corrupt("declared length exceeds input"));
        }
        Ok(n)
    }

    /// Zig-zag LEB128 varint.
    pub fn i64(&mut self) -> Result<i64> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// IEEE-754 bits, little-endian.
    pub fn f64(&mut self) -> Result<f64> {
        let raw = self.raw(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// `1`/`0` byte.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.corrupt("bool byte must be 0 or 1")),
        }
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len_of()?;
        let raw = self.raw(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    /// Timestamp (zig-zag millis).
    pub fn timestamp(&mut self) -> Result<Timestamp> {
        Ok(Timestamp::from_millis(self.i64()?))
    }

    /// Duration (zig-zag millis).
    pub fn duration(&mut self) -> Result<Duration> {
        Ok(Duration::from_millis(self.i64()?))
    }

    /// Half-open interval; rejects reversed bounds.
    pub fn interval(&mut self) -> Result<Interval> {
        let start = self.timestamp()?;
        let end = self.timestamp()?;
        Interval::try_new(start, end).ok_or_else(|| self.corrupt("reversed interval"))
    }

    /// Tagged dynamic value.
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.bool()?),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Str(self.str()?),
            5 => Value::Time(self.timestamp()?),
            6 => Value::Span(self.duration()?),
            _ => return Err(self.corrupt("unknown value tag")),
        })
    }

    /// Static-or-series property value.
    pub fn property_value(&mut self) -> Result<PropertyValue> {
        Ok(match self.u8()? {
            0 => PropertyValue::Static(self.value()?),
            1 => PropertyValue::Series(SeriesId::new(self.u64()?)),
            _ => return Err(self.corrupt("unknown property-value tag")),
        })
    }

    /// Whole property map.
    pub fn property_map(&mut self) -> Result<PropertyMap> {
        let n = self.len_of()?;
        let mut props = PropertyMap::new();
        for _ in 0..n {
            let key = self.str()?;
            let value = self.property_value()?;
            props.set(key, value);
        }
        Ok(props)
    }

    /// Label list.
    pub fn labels(&mut self) -> Result<Vec<Label>> {
        let n = self.len_of()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(Label::new(self.str()?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props;

    #[test]
    fn crc32_known_vectors() {
        // standard check value of CRC-32/ISO-HDLC
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut w = ByteWriter::new();
        let us = [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX];
        let is = [0i64, -1, 1, i64::MIN, i64::MAX, -123456789];
        for &v in &us {
            w.u64(v);
        }
        for &v in &is {
            w.i64(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &us {
            assert_eq!(r.u64().unwrap(), v);
        }
        for &v in &is {
            assert_eq!(r.i64().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn f64_bits_exact() {
        let vals = [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
        ];
        let mut w = ByteWriter::new();
        for &v in &vals {
            w.f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn value_and_props_roundtrip() {
        let props = props! {
            "name" => "a=b;c\td\nnewline",
            "age" => 34i64,
            "score" => 0.1234567890123,
            "vip" => true,
            "joined" => Timestamp::from_millis(42),
            "nothing" => Value::Null
        };
        let mut w = ByteWriter::new();
        w.property_map(&props);
        w.property_value(&PropertyValue::Series(SeriesId::new(7)));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.property_map().unwrap(), props);
        assert_eq!(
            r.property_value().unwrap(),
            PropertyValue::Series(SeriesId::new(7))
        );
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn interval_and_labels_roundtrip() {
        let iv = Interval::new(Timestamp::MIN, Timestamp::MAX);
        let labels = vec![Label::new("User"), Label::new("Pérson")];
        let mut w = ByteWriter::new();
        w.interval(&iv);
        w.labels(&labels);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.interval().unwrap(), iv);
        assert_eq!(r.labels().unwrap(), labels);
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        // truncated varint
        assert!(ByteReader::new(&[0x80]).u64().is_err());
        // truncated f64
        assert!(ByteReader::new(&[1, 2, 3]).f64().is_err());
        // bad value tag
        assert!(ByteReader::new(&[9]).value().is_err());
        // bad bool
        assert!(ByteReader::new(&[2]).bool().is_err());
        // declared string length beyond input
        let mut w = ByteWriter::new();
        w.u64(1_000_000);
        assert!(ByteReader::new(w.as_bytes()).str().is_err());
        // invalid utf-8
        let mut w = ByteWriter::new();
        w.u64(2);
        w.raw(&[0xFF, 0xFE]);
        assert!(ByteReader::new(w.as_bytes()).str().is_err());
        // reversed interval
        let mut w = ByteWriter::new();
        w.timestamp(Timestamp::from_millis(10));
        w.timestamp(Timestamp::from_millis(5));
        assert!(ByteReader::new(w.as_bytes()).interval().is_err());
        // trailing garbage detection
        let mut r = ByteReader::new(&[0, 1]);
        r.u8().unwrap();
        assert!(r.expect_exhausted().is_err());
    }

    #[test]
    fn corrupt_error_reports_offset() {
        let mut r = ByteReader::new(&[0x05, 0x80]);
        r.u8().unwrap();
        let err = r.u64().unwrap_err();
        match err {
            HyGraphError::Corrupt { offset, .. } => assert!(offset >= 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
