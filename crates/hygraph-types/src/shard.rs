//! Workspace-wide sharding configuration and deterministic routing.
//!
//! The engine splits its commit/storage plane into `N` hash-sharded
//! partitions: each shard co-locates a slice of the vertex space with
//! the time series attached to it and owns its own WAL stream (see
//! `hygraph-persist`'s sharded store). This module is the single source
//! of truth for *how many* shards exist and *which* shard an element
//! routes to, so the persist layer, the query scatter-gather path, the
//! subscription router, and the metrics registry all agree without
//! depending on each other.
//!
//! Configuration surface, in increasing precedence (the same layered
//! pattern as [`crate::parallel`] and [`crate::net::ServerConfig`]):
//!
//! 1. Default: one shard per core ([`crate::parallel::configured_threads`]).
//! 2. Environment: `HYGRAPH_SHARDS`, read once per process. `1` restores
//!    the exact pre-sharding single-store engine.
//! 3. Programmatic: [`ShardConfig::install`] overrides the environment;
//!    an explicit [`ShardConfig::shards`] field wins over everything
//!    (tests use this to pin a shard count regardless of machine size).
//!
//! # Routing contract
//!
//! [`ShardRouter`] routing is a pure function of (element id, shard
//! count): `id % N`. It must stay deterministic across processes and
//! versions because the WAL frame placement on disk *is* the routing
//! record — recovery re-merges per-shard streams by global commit
//! sequence number and never recomputes routes, so a changed hash would
//! only affect new writes, but a non-deterministic one would scatter a
//! batch's frames unpredictably between runs and break layout tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::ids::{EdgeId, SeriesId, VertexId};

/// Upper bound on the shard count. Keeps per-shard metric slots and the
/// checkpoint's per-shard LSN vector small and fixed-size; far above any
/// realistic core count for a single process.
pub const MAX_SHARDS: usize = 64;

// 0 = unset (fall through to env / defaults)
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_shards() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("HYGRAPH_SHARDS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(0)
    })
}

/// Builder for the process-wide shard count.
///
/// ```
/// use hygraph_types::shard::{ShardConfig, ShardRouter};
///
/// let router = ShardConfig::new().shards(4).router();
/// assert_eq!(router.shards(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardConfig {
    shards: Option<usize>,
}

impl ShardConfig {
    /// A config that changes nothing until its setters are called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicit shard count. `0` restores "one per core"; values above
    /// [`MAX_SHARDS`] are clamped down to it.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n.min(MAX_SHARDS));
        self
    }

    /// Applies the explicit shard count process-wide; unset fields are
    /// untouched. Safe to call repeatedly — the last call wins.
    pub fn install(self) {
        if let Some(n) = self.shards {
            SHARDS_OVERRIDE.store(n, Ordering::Relaxed);
        }
    }

    /// Resolves the effective shard count: explicit field, else
    /// installed override, else `HYGRAPH_SHARDS`, else one per core.
    /// Always in `1..=MAX_SHARDS`.
    pub fn resolve(&self) -> usize {
        self.shards
            .filter(|&n| n > 0)
            .or_else(|| {
                let o = SHARDS_OVERRIDE.load(Ordering::Relaxed);
                (o > 0).then_some(o)
            })
            .or_else(|| {
                let e = env_shards();
                (e > 0).then_some(e)
            })
            .unwrap_or_else(crate::parallel::configured_threads)
            .clamp(1, MAX_SHARDS)
    }

    /// Shorthand: resolves and builds the matching [`ShardRouter`].
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(self.resolve())
    }
}

/// The effective shard count with a default [`ShardConfig`]: installed
/// override, else `HYGRAPH_SHARDS`, else one per core.
pub fn configured_shards() -> usize {
    ShardConfig::new().resolve()
}

/// Deterministic element → shard routing for a fixed shard count.
///
/// Copy-sized and cheap to pass around; every layer that needs routing
/// builds one from the shard count it was handed at construction time
/// (never from the environment mid-flight, so a process can't change its
/// own routing under a live store).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` partitions (clamped to `1..=MAX_SHARDS`).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    /// The shard count this router was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether this router describes the single-shard (legacy) layout.
    pub fn is_single(&self) -> bool {
        self.shards == 1
    }

    /// The shard owning a series — and, by co-location, the ts-elements
    /// whose δ points at it.
    pub fn of_series(&self, id: SeriesId) -> usize {
        (id.raw() % self.shards as u64) as usize
    }

    /// The shard owning a vertex (anchor routing for scatter-gather).
    pub fn of_vertex(&self, id: VertexId) -> usize {
        (id.raw() % self.shards as u64) as usize
    }

    /// The shard owning an edge.
    pub fn of_edge(&self, id: EdgeId) -> usize {
        (id.raw() % self.shards as u64) as usize
    }

    /// The home shard for a commit-sequence-numbered frame that has no
    /// series or vertex affinity (subgraph ops, property writes, …):
    /// spreading by CSN keeps the WAL streams balanced.
    pub fn of_csn(&self, csn: u64) -> usize {
        (csn % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_modular_and_total() {
        let r = ShardRouter::new(4);
        assert_eq!(r.shards(), 4);
        for raw in 0..100u64 {
            assert_eq!(r.of_series(SeriesId::new(raw)), (raw % 4) as usize);
            assert_eq!(r.of_vertex(VertexId::new(raw)), (raw % 4) as usize);
            assert_eq!(r.of_edge(EdgeId::new(raw)), (raw % 4) as usize);
            assert_eq!(r.of_csn(raw), (raw % 4) as usize);
            assert!(r.of_csn(raw) < r.shards());
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        assert!(r.is_single());
        for raw in [0u64, 1, 17, u64::MAX] {
            assert_eq!(r.of_series(SeriesId::new(raw)), 0);
            assert_eq!(r.of_csn(raw), 0);
        }
    }

    #[test]
    fn counts_are_clamped() {
        assert_eq!(ShardRouter::new(0).shards(), 1);
        assert_eq!(ShardRouter::new(1_000_000).shards(), MAX_SHARDS);
        assert_eq!(ShardConfig::new().shards(1_000_000).resolve(), MAX_SHARDS);
        assert!(ShardConfig::new().shards(0).resolve() >= 1);
    }

    #[test]
    fn explicit_config_wins_and_resolve_is_positive() {
        assert_eq!(ShardConfig::new().shards(3).resolve(), 3);
        let n = configured_shards();
        assert!((1..=MAX_SHARDS).contains(&n));
    }
}
