//! Half-open validity intervals `[start, end)`.
//!
//! The paper's function ρ assigns each property-graph vertex, edge and
//! subgraph the pair ⟨t_start, t_end⟩ between which the element is valid,
//! with `t_end` initialised to `max(T)` for still-open elements. We use
//! half-open semantics (`start` inclusive, `end` exclusive), the standard
//! convention in temporal databases: adjacent intervals tile time with no
//! overlap and no gap.

use crate::time::{Duration, Timestamp};
use std::fmt;

/// A half-open time interval `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Exclusive upper bound.
    pub end: Timestamp,
}

impl Interval {
    /// The interval covering all of time.
    pub const ALL: Interval = Interval {
        start: Timestamp::MIN,
        end: Timestamp::MAX,
    };

    /// Creates `[start, end)`. `start` must not exceed `end`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "interval start {start:?} after end {end:?}");
        Self { start, end }
    }

    /// Creates `[start, end)` if well-formed, `None` otherwise.
    #[inline]
    pub fn try_new(start: Timestamp, end: Timestamp) -> Option<Self> {
        (start <= end).then_some(Self { start, end })
    }

    /// An interval open to the right: `[start, max(T))` — the paper's
    /// initialisation for currently-valid elements.
    #[inline]
    pub fn from(start: Timestamp) -> Self {
        Self {
            start,
            end: Timestamp::MAX,
        }
    }

    /// The degenerate instant `[t, t+1ms)` containing exactly `t`.
    #[inline]
    pub fn at(t: Timestamp) -> Self {
        Self {
            start: t,
            end: t + Duration::from_millis(1),
        }
    }

    /// Interval of length `len` starting at `start`.
    #[inline]
    pub fn starting_at(start: Timestamp, len: Duration) -> Self {
        Self::new(start, start + len)
    }

    /// Whether the interval contains no instants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Length of the interval. Saturates at `i64::MAX` for [`Interval::ALL`].
    #[inline]
    pub fn len(&self) -> Duration {
        Duration(self.end.0.saturating_sub(self.start.0))
    }

    /// Whether instant `t` falls inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Whether the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two intervals are adjacent (touch without overlapping).
    #[inline]
    pub fn is_adjacent(&self, other: &Interval) -> bool {
        self.end == other.start || other.end == self.start
    }

    /// The intersection, or `None` if the intervals are disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// The smallest interval covering both inputs (convex hull).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The union if the inputs overlap or are adjacent, `None` otherwise.
    #[inline]
    pub fn union(&self, other: &Interval) -> Option<Interval> {
        (self.overlaps(other) || self.is_adjacent(other)).then(|| self.hull(other))
    }

    /// Clamps (truncates) `self` to lie within `bound`; empty result maps
    /// to `None`.
    #[inline]
    pub fn clamp_to(&self, bound: &Interval) -> Option<Interval> {
        self.intersect(bound)
    }

    /// Closes a right-open interval at `end` (used when an element is
    /// deleted or superseded at a known instant).
    #[inline]
    pub fn closed_at(&self, end: Timestamp) -> Interval {
        Interval::new(self.start, end.max(self.start))
    }

    /// Splits the interval into consecutive tumbling windows of width
    /// `bucket`, aligned to multiples of `bucket`. Returns an iterator of
    /// (bucket_start, clamped_window) pairs.
    pub fn tumbling(&self, bucket: Duration) -> impl Iterator<Item = (Timestamp, Interval)> + '_ {
        assert!(bucket.is_positive(), "bucket width must be positive");
        let first = self.start.truncate(bucket);
        let me = *self;
        let mut cur = first;
        std::iter::from_fn(move || {
            if cur >= me.end {
                return None;
            }
            let win = Interval::new(cur, cur + bucket);
            cur += bucket;
            win.intersect(&me).map(|w| (win.start, w))
        })
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?})", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(Timestamp::from_millis(a), Timestamp::from_millis(b))
    }

    #[test]
    fn contains_half_open_semantics() {
        let i = iv(10, 20);
        assert!(!i.contains(Timestamp::from_millis(9)));
        assert!(i.contains(Timestamp::from_millis(10)));
        assert!(i.contains(Timestamp::from_millis(19)));
        assert!(!i.contains(Timestamp::from_millis(20)));
    }

    #[test]
    fn empty_interval() {
        let e = iv(5, 5);
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp::from_millis(5)));
        assert_eq!(e.len(), Duration::ZERO);
        assert!(iv(0, 10).contains_interval(&e));
    }

    #[test]
    #[should_panic(expected = "interval start")]
    fn reversed_interval_panics() {
        let _ = iv(10, 5);
    }

    #[test]
    fn try_new_rejects_reversed() {
        assert!(Interval::try_new(Timestamp::from_millis(10), Timestamp::from_millis(5)).is_none());
        assert!(Interval::try_new(Timestamp::from_millis(5), Timestamp::from_millis(5)).is_some());
    }

    #[test]
    fn overlap_cases() {
        assert!(iv(0, 10).overlaps(&iv(5, 15)));
        assert!(iv(5, 15).overlaps(&iv(0, 10)));
        assert!(
            !iv(0, 10).overlaps(&iv(10, 20)),
            "adjacent half-open intervals do not overlap"
        );
        assert!(iv(0, 10).is_adjacent(&iv(10, 20)));
        assert!(!iv(0, 10).overlaps(&iv(11, 20)));
        assert!(iv(0, 100).overlaps(&iv(40, 50)));
    }

    #[test]
    fn intersect_union_hull() {
        assert_eq!(iv(0, 10).intersect(&iv(5, 15)), Some(iv(5, 10)));
        assert_eq!(iv(0, 10).intersect(&iv(10, 20)), None);
        assert_eq!(iv(0, 10).union(&iv(10, 20)), Some(iv(0, 20)));
        assert_eq!(iv(0, 10).union(&iv(11, 20)), None);
        assert_eq!(iv(0, 10).hull(&iv(50, 60)), iv(0, 60));
    }

    #[test]
    fn all_interval_contains_everything() {
        assert!(Interval::ALL.contains(Timestamp::MIN));
        assert!(Interval::ALL.contains(Timestamp::from_millis(0)));
        assert!(!Interval::ALL.contains(Timestamp::MAX), "end is exclusive");
        assert!(Interval::ALL.contains_interval(&iv(-100, 100)));
    }

    #[test]
    fn from_and_at() {
        let open = Interval::from(Timestamp::from_millis(7));
        assert!(open.contains(Timestamp::from_millis(1_000_000)));
        assert!(!open.contains(Timestamp::from_millis(6)));
        let inst = Interval::at(Timestamp::from_millis(3));
        assert!(inst.contains(Timestamp::from_millis(3)));
        assert!(!inst.contains(Timestamp::from_millis(4)));
    }

    #[test]
    fn closed_at_clamps_to_start() {
        let open = Interval::from(Timestamp::from_millis(10));
        assert_eq!(open.closed_at(Timestamp::from_millis(20)), iv(10, 20));
        // Closing before start yields an empty interval, not a panic.
        assert_eq!(open.closed_at(Timestamp::from_millis(5)), iv(10, 10));
    }

    #[test]
    fn tumbling_windows_cover_and_clamp() {
        let i = iv(15, 45);
        let wins: Vec<_> = i.tumbling(Duration::from_millis(10)).collect();
        assert_eq!(
            wins,
            vec![
                (Timestamp::from_millis(10), iv(15, 20)),
                (Timestamp::from_millis(20), iv(20, 30)),
                (Timestamp::from_millis(30), iv(30, 40)),
                (Timestamp::from_millis(40), iv(40, 45)),
            ]
        );
        // windows tile the input exactly
        let total: i64 = wins.iter().map(|(_, w)| w.len().millis()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn tumbling_empty_interval_yields_nothing() {
        let wins: Vec<_> = iv(5, 5).tumbling(Duration::from_millis(10)).collect();
        assert!(wins.is_empty());
    }
}
