//! Dynamic property values.
//!
//! [`Value`] is the static half of the paper's property codomain 𝒩_Σ: the
//! scalar values a property-graph element can carry. Comparisons are
//! total (a well-defined order across types) so values can be sorted,
//! grouped and used as predicate operands inside the query engine.

use crate::time::{Duration, Timestamp};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed static property value (𝒩_Σ).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / SQL-style NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalised away by constructors where possible.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// A point in time.
    Time(Timestamp),
    /// A span of time.
    Span(Duration),
}

impl Value {
    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Time(_) => "timestamp",
            Value::Span(_) => "duration",
        }
    }

    /// Whether this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` coerce to `f64`, `Bool` to 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (no float truncation — `Float(2.0)` is not an int).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Timestamp view.
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Duration view.
    pub fn as_span(&self) -> Option<Duration> {
        match self {
            Value::Span(d) => Some(*d),
            _ => None,
        }
    }

    /// Total order across all values. Within the numeric family, `Int` and
    /// `Float` compare by numeric value; across families, the order is
    /// Null < Bool < numeric < Str < Time < Span. NaN sorts above all
    /// other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn family(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Time(_) => 4,
                Span(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Span(a), Span(b)) => a.cmp(b),
            (a, b) => family(a).cmp(&family(b)),
        }
    }

    /// SQL-ish equality: Null equals nothing (including Null); numerics
    /// compare cross-type. Returns `None` when either side is Null.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            (a, b) => a == b,
        })
    }

    /// Addition where it makes sense (numeric + numeric, string concat,
    /// time + span); `None` otherwise.
    pub fn add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.checked_add(*b)?)),
            (Value::Float(a), Value::Float(b)) => Some(Value::Float(a + b)),
            (Value::Int(a), Value::Float(b)) => Some(Value::Float(*a as f64 + b)),
            (Value::Float(a), Value::Int(b)) => Some(Value::Float(a + *b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(Value::Str(format!("{a}{b}"))),
            (Value::Time(t), Value::Span(d)) => Some(Value::Time(*t + *d)),
            (Value::Span(d), Value::Time(t)) => Some(Value::Time(*t + *d)),
            (Value::Span(a), Value::Span(b)) => Some(Value::Span(*a + *b)),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Time(t)
    }
}
impl From<Duration> for Value {
    fn from(d: Duration) -> Self {
        Value::Span(d)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Span(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Float(2.0).as_i64(), None, "no float->int truncation");
    }

    #[test]
    fn total_order_within_and_across_families() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
        assert_eq!(
            Value::Bool(false).total_cmp(&Value::Int(i64::MIN)),
            Ordering::Less
        );
        // NaN sorts above +inf under total_cmp
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Str("a".into()).sql_eq(&Value::Int(1)), Some(false));
    }

    #[test]
    fn add_semantics() {
        assert_eq!(Value::Int(1).add(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)),
            Some(Value::Float(1.5))
        );
        assert_eq!(
            Value::Str("ab".into()).add(&Value::Str("cd".into())),
            Some(Value::Str("abcd".into()))
        );
        assert_eq!(
            Value::Time(Timestamp::from_millis(10)).add(&Value::Span(Duration::from_millis(5))),
            Some(Value::Time(Timestamp::from_millis(15)))
        );
        assert_eq!(Value::Int(i64::MAX).add(&Value::Int(1)), None, "overflow");
        assert_eq!(Value::Bool(true).add(&Value::Bool(true)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::from(5i64).to_string(), "5");
        assert_eq!(Value::from("hey").to_string(), "hey");
        assert_eq!(Value::from(Duration::from_hours(1)).to_string(), "1h");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1i32), Value::Int(1));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
        assert_eq!(
            Value::from(Timestamp::from_millis(1)),
            Value::Time(Timestamp::from_millis(1))
        );
    }
}
