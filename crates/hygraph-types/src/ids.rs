//! Strongly-typed identifiers for HyGraph elements.
//!
//! All identifiers are thin `u64` newtypes so they are `Copy`, hashable,
//! orderable and cheap to store in adjacency lists and indexes. The
//! distinct types prevent accidentally using a vertex id where an edge id
//! is expected — a class of bug that is otherwise easy to introduce in a
//! model with four parallel id spaces (V, E, S, TS).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the identifier as a `usize` index (for dense arrays).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                Self(raw as u64)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a vertex (property-graph or time-series vertex).
    VertexId,
    "v"
);
id_type!(
    /// Identifier of an edge (property-graph or time-series edge).
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a logical subgraph (the set S of the model).
    SubgraphId,
    "s"
);
id_type!(
    /// Identifier of a (multivariate) time series (the set TS of the model).
    SeriesId,
    "ts"
);

/// A label attached to vertices, edges or subgraphs (the function λ).
///
/// Labels are interned-ish small strings; equality and hashing are on the
/// string content. `Label` is deliberately a distinct type from
/// [`PropertyKey`] so that APIs cannot confuse the two namespaces.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub String);

impl Label {
    /// Creates a label from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A property key (the set K of the model).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropertyKey(pub String);

impl PropertyKey {
    /// Creates a property key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for PropertyKey {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for PropertyKey {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl fmt::Debug for PropertyKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.0)
    }
}

impl fmt::Display for PropertyKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u64), v);
        assert_eq!(VertexId::from(42usize), v);
    }

    #[test]
    fn id_ordering_and_hash() {
        let mut set = HashSet::new();
        set.insert(EdgeId::new(1));
        set.insert(EdgeId::new(1));
        set.insert(EdgeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(EdgeId::new(1) < EdgeId::new(2));
    }

    #[test]
    fn id_display_prefixes() {
        assert_eq!(VertexId::new(7).to_string(), "v7");
        assert_eq!(EdgeId::new(7).to_string(), "e7");
        assert_eq!(SubgraphId::new(7).to_string(), "s7");
        assert_eq!(SeriesId::new(7).to_string(), "ts7");
    }

    #[test]
    fn label_and_key_are_distinct_types() {
        let l = Label::new("User");
        let k = PropertyKey::new("name");
        assert_eq!(l.as_str(), "User");
        assert_eq!(k.as_str(), "name");
        assert_eq!(format!("{l:?}"), ":User");
        assert_eq!(format!("{k:?}"), ".name");
    }

    #[test]
    fn label_from_string_variants() {
        assert_eq!(Label::from("A"), Label::new(String::from("A")));
        assert_eq!(PropertyKey::from("k"), PropertyKey::new("k"));
    }
}
