//! Shared primitive types for the HyGraph workspace.
//!
//! This crate defines the vocabulary every other HyGraph crate speaks:
//! strongly-typed identifiers ([`VertexId`], [`EdgeId`], [`SeriesId`],
//! [`SubgraphId`]), the time domain ([`Timestamp`], [`Interval`]), dynamic
//! [`Value`]s, property maps whose values may be static scalars *or*
//! time-series references ([`PropertyValue`]), and the workspace-wide
//! [`HyGraphError`] type.
//!
//! The design follows the formal model of the paper *"Towards Hybrid
//! Graphs: Unifying Property Graphs and Time Series"* (EDBT 2025, §5):
//! the set of property values 𝒩 is partitioned into static values 𝒩_Σ and
//! time-series values 𝒩_TS, and every property-graph element carries a
//! validity interval given by the function ρ.

pub mod bytes;
pub mod error;
pub mod ids;
pub mod interval;
pub mod net;
pub mod parallel;
pub mod pmap;
pub mod property;
pub mod shard;
pub mod time;
pub mod value;

pub use error::{HyGraphError, Result};
pub use ids::{EdgeId, Label, PropertyKey, SeriesId, SubgraphId, VertexId};
pub use interval::Interval;
pub use property::{PropertyMap, PropertyValue};
pub use time::{Duration, Timestamp};
pub use value::Value;
