//! The time domain: timestamps and durations.
//!
//! HyGraph models time as discrete, totally ordered instants with
//! millisecond resolution (an `i64` count of milliseconds since the Unix
//! epoch). That matches both the paper's ordered timestamp set T and the
//! practical resolution of the bike-sharing / financial datasets it
//! targets.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in time: milliseconds since the Unix epoch.
///
/// `Timestamp` is the carrier of the paper's ordered set T. It is `Copy`,
/// totally ordered and supports arithmetic with [`Duration`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The smallest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable timestamp — used as the paper's `max(T)`
    /// initialisation for still-open validity intervals.
    pub const MAX: Timestamp = Timestamp(i64::MAX);
    /// The epoch origin.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw epoch-milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Self(ms)
    }

    /// Creates a timestamp from whole epoch-seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Self(s * 1_000)
    }

    /// Raw epoch-milliseconds.
    #[inline]
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Self {
        Self(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Self {
        Self(self.0.saturating_sub(d.0))
    }

    /// The duration elapsed from `earlier` to `self` (may be negative).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// Truncates the timestamp down to a multiple of `bucket` (tumbling
    /// window assignment). `bucket` must be positive.
    ///
    /// Works correctly for negative timestamps (floors toward -∞).
    #[inline]
    pub fn truncate(self, bucket: Duration) -> Timestamp {
        debug_assert!(bucket.0 > 0, "bucket duration must be positive");
        let b = bucket.0 as i128;
        // i128 arithmetic: flooring MIN/MAX would otherwise overflow i64
        let floored = (self.0 as i128).div_euclid(b) * b;
        Timestamp(floored.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
    }

    /// Midpoint between two timestamps, without overflow.
    #[inline]
    pub fn midpoint(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0 / 2 + other.0 / 2 + (self.0 % 2 + other.0 % 2) / 2)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0 - d.0)
    }
}

impl SubAssign<Duration> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl From<i64> for Timestamp {
    #[inline]
    fn from(ms: i64) -> Self {
        Self(ms)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Timestamp::MAX {
            write!(f, "t∞")
        } else if *self == Timestamp::MIN {
            write!(f, "t-∞")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A signed span of time in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        Self(ms)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        Self(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    #[inline]
    pub const fn from_mins(m: i64) -> Self {
        Self(m * 60_000)
    }

    /// Creates a duration from whole hours.
    #[inline]
    pub const fn from_hours(h: i64) -> Self {
        Self(h * 3_600_000)
    }

    /// Creates a duration from whole days.
    #[inline]
    pub const fn from_days(d: i64) -> Self {
        Self(d * 86_400_000)
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Duration {
        Duration(self.0.abs())
    }

    /// Whether the duration is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Integer division of two durations (how many `other` fit in `self`).
    /// Named `div` deliberately: `Div::div` would have to return another
    /// `Duration`, but a duration ratio is a dimensionless count.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Duration) -> i64 {
        debug_assert!(other.0 != 0);
        self.0 / other.0
    }

    /// Scales the duration by an integer factor.
    #[inline]
    pub const fn scale(self, k: i64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms % 86_400_000 == 0 && ms != 0 {
            write!(f, "{}d", ms / 86_400_000)
        } else if ms % 3_600_000 == 0 && ms != 0 {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms % 60_000 == 0 && ms != 0 {
            write!(f, "{}m", ms / 60_000)
        } else if ms % 1_000 == 0 && ms != 0 {
            write!(f, "{}s", ms / 1_000)
        } else {
            write!(f, "{ms}ms")
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_scales() {
        assert_eq!(Duration::from_secs(2).millis(), 2_000);
        assert_eq!(Duration::from_mins(2).millis(), 120_000);
        assert_eq!(Duration::from_hours(1).millis(), 3_600_000);
        assert_eq!(Duration::from_days(1).millis(), 86_400_000);
        assert_eq!(Timestamp::from_secs(3).millis(), 3_000);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_millis(1_000);
        assert_eq!(
            t + Duration::from_millis(500),
            Timestamp::from_millis(1_500)
        );
        assert_eq!(t - Duration::from_millis(500), Timestamp::from_millis(500));
        assert_eq!(
            Timestamp::from_millis(1_500) - Timestamp::from_millis(1_000),
            Duration::from_millis(500)
        );
        let mut t2 = t;
        t2 += Duration::from_millis(1);
        t2 -= Duration::from_millis(2);
        assert_eq!(t2, Timestamp::from_millis(999));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_millis(1)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::MIN.saturating_sub(Duration::from_millis(1)),
            Timestamp::MIN
        );
    }

    #[test]
    fn truncate_floors_toward_negative_infinity() {
        let b = Duration::from_millis(100);
        assert_eq!(
            Timestamp::from_millis(250).truncate(b),
            Timestamp::from_millis(200)
        );
        assert_eq!(
            Timestamp::from_millis(200).truncate(b),
            Timestamp::from_millis(200)
        );
        assert_eq!(
            Timestamp::from_millis(-1).truncate(b),
            Timestamp::from_millis(-100)
        );
        assert_eq!(
            Timestamp::from_millis(-100).truncate(b),
            Timestamp::from_millis(-100)
        );
    }

    #[test]
    fn midpoint_no_overflow() {
        assert_eq!(Timestamp::MAX.midpoint(Timestamp::MAX), Timestamp::MAX);
        assert_eq!(
            Timestamp::from_millis(2).midpoint(Timestamp::from_millis(4)),
            Timestamp::from_millis(3)
        );
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", Duration::from_days(2)), "2d");
        assert_eq!(format!("{}", Duration::from_hours(3)), "3h");
        assert_eq!(format!("{}", Duration::from_mins(5)), "5m");
        assert_eq!(format!("{}", Duration::from_secs(7)), "7s");
        assert_eq!(format!("{}", Duration::from_millis(13)), "13ms");
        assert_eq!(format!("{}", Duration::ZERO), "0ms");
    }

    #[test]
    fn timestamp_display_infinities() {
        assert_eq!(format!("{}", Timestamp::MAX), "t∞");
        assert_eq!(format!("{}", Timestamp::MIN), "t-∞");
        assert_eq!(format!("{}", Timestamp::from_millis(5)), "t5");
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(Duration::from_millis(-5).abs(), Duration::from_millis(5));
        assert!(Duration::from_millis(1).is_positive());
        assert!(!Duration::ZERO.is_positive());
        assert_eq!(Duration::from_hours(2).div(Duration::from_mins(30)), 4);
        assert_eq!(Duration::from_mins(1).scale(3), Duration::from_mins(3));
    }
}
