//! Wire-protocol framing and serving-layer configuration.
//!
//! The serving stack (`hygraph-server`) exchanges *frames*: CRC-guarded,
//! length-prefixed binary envelopes carrying a request id, a kind tag,
//! and an opaque payload encoded with the [`crate::bytes`] codecs. The
//! frame layer lives here, next to those codecs, so servers, clients,
//! and tools all agree on the envelope without depending on the server
//! crate.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HYGW"
//! 4       4     body length, u32 little-endian
//! 8       8     request id, u64 little-endian   ┐
//! 16      1     kind tag                        │ body (CRC-covered)
//! 17      n     payload                         ┘
//! 8+body  4     CRC-32 (ISO-HDLC) of the body, u32 little-endian
//! ```
//!
//! Decoding is *untrusted* and distinguishes two failure classes:
//!
//! * **Recoverable** ([`FrameRead::Corrupt`]): the envelope parsed — the
//!   declared body length was read in full — but the CRC check failed.
//!   The stream is still aligned on a frame boundary, so a server can
//!   reject the frame and keep the connection.
//! * **Fatal** (`Err(..)`): bad magic, an over-limit declared length, or
//!   the stream ending mid-frame. The reader cannot know where the next
//!   frame starts; the connection must be dropped.
//!
//! # Configuration ([`ServerConfig`])
//!
//! Mirrors the layered pattern of [`crate::parallel`]:
//!
//! 1. Defaults: [`DEFAULT_ADDR`], worker count =
//!    [`crate::parallel::configured_threads`], [`DEFAULT_QUEUE_DEPTH`],
//!    [`DEFAULT_REQ_TIMEOUT_MS`], [`DEFAULT_MAX_FRAME_BYTES`].
//! 2. Environment, read once per process: `HYGRAPH_ADDR`,
//!    `HYGRAPH_WORKERS`, `HYGRAPH_QUEUE_DEPTH`, `HYGRAPH_REQ_TIMEOUT_MS`.
//! 3. Programmatic: [`ServerConfig`] fields set explicitly win over
//!    both; [`ServerConfig::install`] applies them process-wide.
//!
//! The full knob catalogue — including the observability layer's
//! `HYGRAPH_METRICS`, `HYGRAPH_SLOW_QUERY_MS`, `HYGRAPH_SLOW_QUERY_CAP`
//! and `HYGRAPH_METRICS_LOG_EVERY_MS` — lives in `OPERATIONS.md` at the
//! repository root.
//!
//! # Kind tags
//!
//! The kind byte names the payload vocabulary, defined by the server
//! crate's `proto` module. Requests use low values (ping `0`, HyQL
//! query `1`, mutation `2`, mutation batch `3`, checkpoint `4`, sleep
//! `5`, stats `6`, subscribe `7`, unsubscribe `8`); responses start at
//! 128 (pong `128`, rows `129`, committed `130`, checkpoint-done `131`,
//! stats snapshot `132`, subscribed `133`, unsubscribed `134`) with
//! error at `255`. Kinds `192..255` are *unsolicited pushes* for
//! standing queries (delta `192`, subscription-closed `193`): their id
//! slot carries a subscription id rather than a request correlation id,
//! so clients must route by kind before matching replies. The frame
//! layer never interprets the tag — it only guards it with the CRC.

use crate::bytes::crc32;
use crate::error::{HyGraphError, Result};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Frame magic: "HYGW" (HyGraph Wire).
pub const FRAME_MAGIC: [u8; 4] = *b"HYGW";

/// Default listen address when neither `HYGRAPH_ADDR` nor an explicit
/// address is given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7687";

/// Default bound on the admission queue (requests accepted but not yet
/// picked up by a worker). Beyond it the server sheds load explicitly.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Default per-request deadline in milliseconds (`0` disables it).
pub const DEFAULT_REQ_TIMEOUT_MS: u64 = 5_000;

/// Default per-connection read/write limit: the largest frame either
/// side will encode or accept (16 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Fixed envelope overhead around a frame body: magic + length prefix +
/// CRC trailer.
pub const FRAME_OVERHEAD: usize = 12;

/// Body overhead inside a frame: request id + kind tag.
pub const BODY_OVERHEAD: usize = 9;

/// One decoded wire frame: the envelope around a request or response
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Payload discriminator (the server crate defines the vocabulary).
    pub kind: u8,
    /// Opaque payload bytes (a [`crate::bytes`] encoding).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with the given id, kind, and payload.
    pub fn new(request_id: u64, kind: u8, payload: Vec<u8>) -> Self {
        Self {
            request_id,
            kind,
            payload,
        }
    }

    /// Total encoded size of this frame on the wire.
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD + BODY_OVERHEAD + self.payload.len()
    }

    /// Encodes the frame into a standalone byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = BODY_OVERHEAD + self.payload.len();
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + body_len);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[8..8 + body_len]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// Outcome of reading one frame from a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A structurally valid, CRC-verified frame.
    Frame(Frame),
    /// Clean end of stream: the peer closed between frames.
    Eof,
    /// The envelope parsed but the CRC check failed. The declared body
    /// was consumed in full, so the stream is still frame-aligned and
    /// the connection may continue.
    Corrupt(String),
}

/// Writes one frame. `max_bytes` is the sender-side mirror of the
/// receiver's limit: oversize payloads are refused before any byte hits
/// the stream, so a too-large request can never wedge a connection.
pub fn write_frame(w: &mut impl Write, frame: &Frame, max_bytes: usize) -> Result<()> {
    if frame.wire_len() > max_bytes {
        return Err(HyGraphError::invalid(format!(
            "frame of {} bytes exceeds the {} byte limit",
            frame.wire_len(),
            max_bytes
        )));
    }
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(HyGraphError::corrupt(format!(
                    "stream ended mid-frame ({filled} of {} header bytes)",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Reads one frame from `r`, enforcing `max_bytes` as the
/// per-connection read limit.
///
/// Returns [`FrameRead::Eof`] on a clean close before the first header
/// byte, [`FrameRead::Corrupt`] when the CRC fails (recoverable — see
/// module docs), and a fatal `Err` for bad magic, an over-limit length,
/// a mid-frame hangup, or I/O failure.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<FrameRead> {
    let mut header = [0u8; 8];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(FrameRead::Eof);
    }
    if header[..4] != FRAME_MAGIC {
        return Err(HyGraphError::corrupt(
            "bad frame magic (stream out of sync)",
        ));
    }
    let body_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if body_len < BODY_OVERHEAD || body_len + FRAME_OVERHEAD > max_bytes {
        return Err(HyGraphError::corrupt(format!(
            "declared frame body of {body_len} bytes is outside [{BODY_OVERHEAD}, {}]",
            max_bytes.saturating_sub(FRAME_OVERHEAD)
        )));
    }
    let mut body = vec![0u8; body_len];
    std::io::Read::read_exact(r, &mut body)
        .map_err(|e| HyGraphError::corrupt(format!("stream ended mid-body: {e}")))?;
    let mut crc_bytes = [0u8; 4];
    std::io::Read::read_exact(r, &mut crc_bytes)
        .map_err(|e| HyGraphError::corrupt(format!("stream ended mid-crc: {e}")))?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&body);
    if expected != actual {
        return Ok(FrameRead::Corrupt(format!(
            "frame crc mismatch (stored {expected:08x}, computed {actual:08x})"
        )));
    }
    let request_id = u64::from_le_bytes(body[..8].try_into().expect("8 header bytes"));
    let kind = body[8];
    Ok(FrameRead::Frame(Frame {
        request_id,
        kind,
        payload: body[BODY_OVERHEAD..].to_vec(),
    }))
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

// 0 = unset (fall through to env / defaults)
static WORKERS_OVERRIDE: AtomicU64 = AtomicU64::new(0);
// u64::MAX = unset
static QUEUE_DEPTH_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);
static TIMEOUT_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

fn addr_override() -> &'static Mutex<Option<String>> {
    static ADDR: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    ADDR.get_or_init(|| Mutex::new(None))
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse::<u64>().ok()
}

fn env_workers() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("HYGRAPH_WORKERS").filter(|&n| n > 0).unwrap_or(0) as usize)
}

fn env_queue_depth() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("HYGRAPH_QUEUE_DEPTH").map(|n| n as usize))
}

fn env_req_timeout_ms() -> Option<u64> {
    static CACHE: OnceLock<Option<u64>> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("HYGRAPH_REQ_TIMEOUT_MS"))
}

fn env_addr() -> Option<String> {
    static CACHE: OnceLock<Option<String>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            std::env::var("HYGRAPH_ADDR")
                .ok()
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
        })
        .clone()
}

/// Builder for serving-layer settings.
///
/// Fields set explicitly take precedence over the environment; unset
/// fields fall back to `HYGRAPH_ADDR` / `HYGRAPH_WORKERS` /
/// `HYGRAPH_QUEUE_DEPTH` / `HYGRAPH_REQ_TIMEOUT_MS`, then to the
/// defaults. [`ServerConfig::resolve`] produces the effective
/// [`ServerSettings`]; [`ServerConfig::install`] additionally applies
/// the explicit fields process-wide (so later `resolve` calls on a
/// default config see them).
///
/// ```
/// use hygraph_types::net::ServerConfig;
///
/// let s = ServerConfig::new().workers(2).queue_depth(8).resolve();
/// assert_eq!(s.workers, 2);
/// assert_eq!(s.queue_depth, 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    addr: Option<String>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    req_timeout_ms: Option<u64>,
    max_frame_bytes: Option<usize>,
}

/// Fully-resolved serving-layer settings (see [`ServerConfig`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerSettings {
    /// Listen address, `host:port` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Bound on the admission queue; beyond it requests are rejected
    /// with an explicit overload error.
    pub queue_depth: usize,
    /// Per-request deadline; `None` disables deadline enforcement.
    pub req_timeout: Option<Duration>,
    /// Largest frame either side of a connection will encode or accept.
    pub max_frame_bytes: usize,
}

impl ServerConfig {
    /// A config that changes nothing until its setters are called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Listen address (`host:port`; port `0` = ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = Some(addr.into());
        self
    }

    /// Worker-thread count. `0` restores "one per configured thread"
    /// (see [`crate::parallel::configured_threads`]).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Admission-queue bound. Clamped to at least 1.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = Some(n.max(1));
        self
    }

    /// Per-request deadline in milliseconds; `0` disables it.
    pub fn req_timeout_ms(mut self, ms: u64) -> Self {
        self.req_timeout_ms = Some(ms);
        self
    }

    /// Per-connection frame-size limit in bytes. Clamped so an empty
    /// frame always fits.
    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = Some(n.max(FRAME_OVERHEAD + BODY_OVERHEAD));
        self
    }

    /// Applies the explicit fields process-wide; unset fields are
    /// untouched. Safe to call repeatedly — the last call wins.
    pub fn install(&self) {
        if let Some(addr) = &self.addr {
            *addr_override().lock().unwrap_or_else(|e| e.into_inner()) = Some(addr.clone());
        }
        if let Some(n) = self.workers {
            WORKERS_OVERRIDE.store(n as u64, Ordering::Relaxed);
        }
        if let Some(n) = self.queue_depth {
            QUEUE_DEPTH_OVERRIDE.store(n as u64, Ordering::Relaxed);
        }
        if let Some(ms) = self.req_timeout_ms {
            TIMEOUT_OVERRIDE.store(ms, Ordering::Relaxed);
        }
    }

    /// Resolves the effective settings: explicit field, else installed
    /// override, else environment, else default.
    pub fn resolve(&self) -> ServerSettings {
        let addr = self
            .addr
            .clone()
            .or_else(|| {
                addr_override()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone()
            })
            .or_else(env_addr)
            .unwrap_or_else(|| DEFAULT_ADDR.to_owned());
        let workers = self
            .workers
            .filter(|&n| n > 0)
            .or_else(|| {
                let o = WORKERS_OVERRIDE.load(Ordering::Relaxed) as usize;
                (o > 0).then_some(o)
            })
            .or_else(|| {
                let e = env_workers();
                (e > 0).then_some(e)
            })
            .unwrap_or_else(crate::parallel::configured_threads)
            .max(1);
        let queue_depth = self
            .queue_depth
            .or_else(|| {
                let o = QUEUE_DEPTH_OVERRIDE.load(Ordering::Relaxed);
                (o != u64::MAX).then_some(o as usize)
            })
            .or_else(env_queue_depth)
            .unwrap_or(DEFAULT_QUEUE_DEPTH)
            .max(1);
        let timeout_ms = self
            .req_timeout_ms
            .or_else(|| {
                let o = TIMEOUT_OVERRIDE.load(Ordering::Relaxed);
                (o != u64::MAX).then_some(o)
            })
            .or_else(env_req_timeout_ms)
            .unwrap_or(DEFAULT_REQ_TIMEOUT_MS);
        ServerSettings {
            addr,
            workers,
            queue_depth,
            req_timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
            max_frame_bytes: self.max_frame_bytes.unwrap_or(DEFAULT_MAX_FRAME_BYTES),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> FrameRead {
        let bytes = frame.encode();
        read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME_BYTES).unwrap()
    }

    #[test]
    fn frame_roundtrip() {
        for payload in [vec![], vec![0u8], (0..=255u8).collect::<Vec<_>>()] {
            let f = Frame::new(u64::MAX - 7, 3, payload);
            assert_eq!(roundtrip(&f), FrameRead::Frame(f.clone()));
        }
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let mut empty = Cursor::new(Vec::new());
        assert_eq!(
            read_frame(&mut empty, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            FrameRead::Eof
        );
    }

    #[test]
    fn crc_damage_is_recoverable_and_realigned() {
        let a = Frame::new(1, 0, b"abc".to_vec());
        let b = Frame::new(2, 1, b"def".to_vec());
        let mut bytes = a.encode();
        let flip_at = 9; // inside a's body
        bytes[flip_at] ^= 0x40;
        bytes.extend_from_slice(&b.encode());
        let mut r = Cursor::new(bytes);
        match read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap() {
            FrameRead::Corrupt(msg) => assert!(msg.contains("crc"), "got {msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // the stream stayed aligned: the next frame decodes intact
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            FrameRead::Frame(b)
        );
    }

    #[test]
    fn bad_magic_and_truncation_are_fatal() {
        let f = Frame::new(9, 2, b"payload".to_vec());
        let mut bytes = f.encode();
        bytes[0] = b'X';
        assert!(read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME_BYTES).is_err());
        let bytes = f.encode();
        for cut in 1..bytes.len() {
            let out = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME_BYTES);
            assert!(out.is_err(), "truncation to {cut} bytes must be fatal");
        }
    }

    #[test]
    fn oversize_frames_refused_both_ways() {
        let f = Frame::new(1, 0, vec![0u8; 64]);
        let limit = f.wire_len() - 1;
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &f, limit).is_err());
        assert!(sink.is_empty(), "nothing may hit the stream");
        let bytes = f.encode();
        assert!(read_frame(&mut Cursor::new(bytes), limit).is_err());
    }

    #[test]
    fn config_resolution_layers() {
        let s = ServerConfig::new()
            .addr("127.0.0.1:0")
            .workers(3)
            .queue_depth(0) // clamped to 1
            .req_timeout_ms(250)
            .resolve();
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.workers, 3);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.req_timeout, Some(Duration::from_millis(250)));
        assert_eq!(s.max_frame_bytes, DEFAULT_MAX_FRAME_BYTES);

        let s = ServerConfig::new().req_timeout_ms(0).resolve();
        assert_eq!(s.req_timeout, None, "0 disables the deadline");
        assert!(s.workers >= 1);
    }
}
