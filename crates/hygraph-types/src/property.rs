//! Property maps with static and time-series values.
//!
//! The paper defines the property codomain as 𝒩 = 𝒩_Σ ∪ 𝒩_TS with
//! 𝒩_Σ ∩ 𝒩_TS = ∅: a property value is *either* a static scalar *or* a
//! reference to a time series in TS. [`PropertyValue`] is exactly that
//! sum type; [`PropertyMap`] is the per-element store the assignment
//! function φ reads from.

use crate::ids::{PropertyKey, SeriesId};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A property value: static scalar (𝒩_Σ) or time-series reference (𝒩_TS).
#[derive(Clone, Debug, PartialEq)]
pub enum PropertyValue {
    /// A static value σ ∈ 𝒩_Σ.
    Static(Value),
    /// A reference to a time series ts ∈ 𝒩_TS, stored in the model's TS set.
    Series(SeriesId),
}

impl PropertyValue {
    /// The static value, if this is a static property.
    pub fn as_static(&self) -> Option<&Value> {
        match self {
            PropertyValue::Static(v) => Some(v),
            PropertyValue::Series(_) => None,
        }
    }

    /// The series reference, if this is a time-series property.
    pub fn as_series(&self) -> Option<SeriesId> {
        match self {
            PropertyValue::Static(_) => None,
            PropertyValue::Series(id) => Some(*id),
        }
    }

    /// Whether this is a time-series-valued property.
    pub fn is_series(&self) -> bool {
        matches!(self, PropertyValue::Series(_))
    }
}

impl<T: Into<Value>> From<T> for PropertyValue {
    fn from(v: T) -> Self {
        PropertyValue::Static(v.into())
    }
}

impl From<SeriesId> for PropertyValue {
    fn from(id: SeriesId) -> Self {
        PropertyValue::Series(id)
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Static(v) => write!(f, "{v}"),
            PropertyValue::Series(id) => write!(f, "{id}"),
        }
    }
}

/// An ordered key → value property map (the codomain of φ for one element).
///
/// Backed by a `BTreeMap` so iteration order is deterministic — important
/// for reproducible query output and stable test assertions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PropertyMap {
    entries: BTreeMap<PropertyKey, PropertyValue>,
}

impl PropertyMap {
    /// An empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no properties.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets a property, returning the previous value if any.
    pub fn set(
        &mut self,
        key: impl Into<PropertyKey>,
        value: impl Into<PropertyValue>,
    ) -> Option<PropertyValue> {
        self.entries.insert(key.into(), value.into())
    }

    /// Removes a property.
    pub fn remove(&mut self, key: &PropertyKey) -> Option<PropertyValue> {
        self.entries.remove(key)
    }

    /// Looks up a property.
    pub fn get(&self, key: &PropertyKey) -> Option<&PropertyValue> {
        self.entries.get(key)
    }

    /// Looks up a property by string key.
    pub fn get_str(&self, key: &str) -> Option<&PropertyValue> {
        // BTreeMap<PropertyKey, _> cannot borrow-lookup by &str without an
        // Ord-compatible Borrow impl; a transient key keeps the API simple
        // and this path is not hot.
        self.entries.get(&PropertyKey::new(key))
    }

    /// Static scalar at `key`, if the property exists and is static.
    pub fn static_value(&self, key: &str) -> Option<&Value> {
        self.get_str(key).and_then(PropertyValue::as_static)
    }

    /// Series id at `key`, if the property exists and is series-valued.
    pub fn series_value(&self, key: &str) -> Option<SeriesId> {
        self.get_str(key).and_then(PropertyValue::as_series)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get_str(key).is_some()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PropertyKey, &PropertyValue)> {
        self.entries.iter()
    }

    /// Iterates only the keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &PropertyKey> {
        self.entries.keys()
    }

    /// Iterates only series-valued entries.
    pub fn series_entries(&self) -> impl Iterator<Item = (&PropertyKey, SeriesId)> {
        self.entries
            .iter()
            .filter_map(|(k, v)| v.as_series().map(|id| (k, id)))
    }

    /// Merges `other` into `self`; on conflict `other` wins.
    pub fn merge(&mut self, other: &PropertyMap) {
        for (k, v) in other.iter() {
            self.entries.insert(k.clone(), v.clone());
        }
    }
}

impl FromIterator<(PropertyKey, PropertyValue)> for PropertyMap {
    fn from_iter<I: IntoIterator<Item = (PropertyKey, PropertyValue)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Convenience macro building a [`PropertyMap`] from `key => value` pairs.
///
/// ```
/// use hygraph_types::props;
/// let m = props! { "name" => "Alice", "age" => 42i64 };
/// assert_eq!(m.static_value("age").unwrap().as_i64(), Some(42));
/// ```
#[macro_export]
macro_rules! props {
    () => { $crate::property::PropertyMap::new() };
    ($($k:expr => $v:expr),+ $(,)?) => {{
        let mut m = $crate::property::PropertyMap::new();
        $( m.set($k, $v); )+
        m
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut m = PropertyMap::new();
        assert!(m.is_empty());
        assert_eq!(m.set("a", 1i64), None);
        assert_eq!(m.set("a", 2i64), Some(PropertyValue::Static(Value::Int(1))));
        assert_eq!(m.static_value("a"), Some(&Value::Int(2)));
        assert_eq!(
            m.remove(&PropertyKey::new("a")),
            Some(PropertyValue::Static(Value::Int(2)))
        );
        assert!(m.is_empty());
    }

    #[test]
    fn static_vs_series_disjoint() {
        let mut m = PropertyMap::new();
        m.set("balance", SeriesId::new(3));
        m.set("name", "acct-1");
        assert_eq!(m.series_value("balance"), Some(SeriesId::new(3)));
        assert_eq!(
            m.static_value("balance"),
            None,
            "series value is not static"
        );
        assert_eq!(m.series_value("name"), None);
        assert!(m.get_str("balance").unwrap().is_series());
        let series: Vec<_> = m.series_entries().collect();
        assert_eq!(
            series,
            vec![(&PropertyKey::new("balance"), SeriesId::new(3))]
        );
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut m = PropertyMap::new();
        m.set("z", 1i64);
        m.set("a", 2i64);
        m.set("m", 3i64);
        let keys: Vec<_> = m.keys().map(|k| k.as_str().to_owned()).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_conflict_other_wins() {
        let mut a = props! { "x" => 1i64, "y" => 2i64 };
        let b = props! { "y" => 20i64, "z" => 30i64 };
        a.merge(&b);
        assert_eq!(a.static_value("x"), Some(&Value::Int(1)));
        assert_eq!(a.static_value("y"), Some(&Value::Int(20)));
        assert_eq!(a.static_value("z"), Some(&Value::Int(30)));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn props_macro() {
        let m = props! { "name" => "Alice", "vip" => true };
        assert_eq!(m.len(), 2);
        assert_eq!(m.static_value("name").unwrap().as_str(), Some("Alice"));
        assert_eq!(m.static_value("vip").unwrap().as_bool(), Some(true));
        let empty = props! {};
        assert!(empty.is_empty());
    }

    #[test]
    fn from_iterator() {
        let m: PropertyMap = vec![
            (PropertyKey::new("k"), PropertyValue::from(1i64)),
            (PropertyKey::new("s"), PropertyValue::from(SeriesId::new(9))),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m.series_value("s"), Some(SeriesId::new(9)));
    }
}
