//! Persistent (structurally shared) maps for snapshot publication.
//!
//! The sharded engine publishes an immutable [`HyGraph`] snapshot per
//! commit epoch and readers pin it wait-free. With ordinary `HashMap`s
//! behind `Arc::make_mut`, a pinned snapshot forces the *next* commit to
//! deep-copy every interior map it touches — O(graph) per commit the
//! moment one reader holds an old epoch. [`PMap`] replaces that with a
//! hash-array-mapped trie mutated by **path copying**: `clone` is O(1)
//! (one `Arc` bump per map), and an insert/remove while old snapshots
//! are pinned copies only the O(log n) nodes on the touched path.
//! Everything else stays shared between epochs, which is exactly the
//! structural-sharing version-chain organisation MVCC graph stores use
//! to make snapshot isolation cheap.
//!
//! # Determinism contract
//!
//! Checkpoint and WAL encodings are canonical — byte-identical for equal
//! logical state — so iteration order must be a pure function of the
//! *key set*, never of insertion history. [`PMap`] guarantees this two
//! ways:
//!
//! * The trie consumes the 64-bit [`PmapKey::pmap_hash`] in 6-bit chunks
//!   **most-significant bits first**, and branch children are kept in
//!   ascending chunk order, so iteration yields ascending hash order.
//!   Id keys ([`VertexId`], [`EdgeId`], [`SeriesId`], [`SubgraphId`],
//!   `u64`) hash to themselves, making iteration *ascending id order* —
//!   identical to the `BTreeMap`/dense-`Vec` order the codecs were built
//!   on. String-ish keys ([`Label`]) use FNV-1a; their order is
//!   hash-determined but still history-independent.
//! * Full 64-bit hash collisions live in one leaf with entries sorted by
//!   `K: Ord`, and the trie is **path-compressed**: every branch records
//!   the chunk depth it discriminates at and always has ≥ 2 children, so
//!   a branch exists exactly at the depths where the key set's hashes
//!   first diverge. The tree *shape* (not just the iteration order) is
//!   therefore canonical for a given key set — and dense id ranges,
//!   whose hashes share all their high bits, stay 2–3 levels deep
//!   instead of descending one near-empty level per shared 6-bit chunk.
//!
//! # Choosing an implementation
//!
//! [`SnapshotImpl`] selects between the legacy copy-on-write collections
//! (`cow`) and the persistent ones (`pmap`, the default) at store
//! construction time, via the same layered precedence as
//! [`crate::shard::ShardConfig`]: explicit argument, else installed
//! override, else the `HYGRAPH_SNAPSHOT_IMPL` environment variable, else
//! `pmap`. [`SnapMap`] is the dual-mode map the model layers store so
//! either implementation can be picked per store without generics
//! leaking through every signature.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::ids::{EdgeId, Label, PropertyKey, SeriesId, SubgraphId, VertexId};

// ---------------------------------------------------------------------------
// Key hashing
// ---------------------------------------------------------------------------

/// Key contract for [`PMap`]: a stable 64-bit hash plus a total order
/// for collision leaves. The hash must be a pure function of the key's
/// logical value (stable across processes and versions — checkpoint
/// layouts built on iteration order depend on it).
pub trait PmapKey: Clone + Eq + Ord {
    /// The full 64-bit hash the trie is keyed on. Identity for integer
    /// ids (so iteration is ascending id order); FNV-1a for strings.
    fn pmap_hash(&self) -> u64;
}

/// FNV-1a over a byte string: the workspace's stable string hash.
/// Deliberately not `DefaultHasher` (SipHash is randomly keyed per
/// process, which would make trie shapes non-deterministic).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PmapKey for u64 {
    #[inline]
    fn pmap_hash(&self) -> u64 {
        *self
    }
}

macro_rules! id_pmap_key {
    ($($t:ty),*) => {$(
        impl PmapKey for $t {
            #[inline]
            fn pmap_hash(&self) -> u64 {
                self.raw()
            }
        }
    )*};
}
id_pmap_key!(VertexId, EdgeId, SeriesId, SubgraphId);

impl PmapKey for Label {
    #[inline]
    fn pmap_hash(&self) -> u64 {
        fnv1a(self.as_str().as_bytes())
    }
}

impl PmapKey for PropertyKey {
    #[inline]
    fn pmap_hash(&self) -> u64 {
        fnv1a(self.as_str().as_bytes())
    }
}

impl PmapKey for String {
    #[inline]
    fn pmap_hash(&self) -> u64 {
        fnv1a(self.as_bytes())
    }
}

// ---------------------------------------------------------------------------
// The trie
// ---------------------------------------------------------------------------

/// Depth index of the last hash chunk: chunks 0..=9 are 6 bits each
/// (60 bits), chunk 10 is the final 4 bits. Beyond depth 10 two keys
/// share the full 64-bit hash and live in one sorted collision leaf.
const LAST_CHUNK: usize = 10;

/// The `depth`-th chunk of `hash`, most-significant bits first.
#[inline]
fn chunk(hash: u64, depth: usize) -> u64 {
    debug_assert!(depth <= LAST_CHUNK);
    if depth < LAST_CHUNK {
        (hash >> (58 - 6 * depth)) & 0x3f
    } else {
        hash & 0x0f
    }
}

/// Mask selecting the chunks *above* `depth` (the prefix a branch at
/// `depth` requires all its keys to share). Depth 0 has no prefix.
#[inline]
fn prefix_mask(depth: usize) -> u64 {
    debug_assert!(depth <= LAST_CHUNK);
    if depth == 0 {
        0
    } else {
        !0u64 << (64 - 6 * depth.min(LAST_CHUNK))
    }
}

/// The first chunk depth at which two *distinct* hashes differ.
#[inline]
fn diverge_depth(a: u64, b: u64) -> usize {
    debug_assert_ne!(a, b);
    (((a ^ b).leading_zeros() as usize) / 6).min(LAST_CHUNK)
}

#[derive(Clone)]
enum Node<K, V> {
    /// Path-compressed interior node discriminating on chunk `depth`:
    /// every key below shares the hash prefix above `depth` (`prefix`,
    /// with chunks ≥ `depth` zeroed), `bitmap` bit `c` set means a
    /// child exists for chunk value `c`, and `children` holds them in
    /// ascending chunk order. Canonical shape: a branch always has
    /// ≥ 2 children, so branches sit exactly at divergence depths.
    Branch {
        depth: u8,
        prefix: u64,
        bitmap: u64,
        children: Vec<Arc<Node<K, V>>>,
    },
    /// All keys sharing one full 64-bit hash, sorted by `K`.
    /// `entries.len() > 1` only on a genuine hash collision.
    Leaf { hash: u64, entries: Vec<(K, V)> },
}

/// A persistent hash-array-mapped-trie map: O(1) `clone`, O(log n)
/// insert/remove by path copying, deterministic iteration (ascending
/// `(pmap_hash, key)`). See the module docs for the full contract.
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    #[inline]
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        Self { root: None, len: 0 }
    }
}

impl<K: PmapKey, V: Clone> PMap<K, V> {
    /// The empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `self` and `other` share their root node — i.e. no
    /// divergence has happened since one was cloned from the other.
    /// Test probe for the "miss doesn't copy" contract.
    pub fn shares_root_with(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let hash = key.pmap_hash();
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf { hash: h, entries } => {
                    if *h != hash {
                        return None;
                    }
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                // The prefix is not re-checked on the way down: a
                // mismatched descent can only end at a leaf whose full
                // hash differs (or a missing bitmap bit), both misses.
                Node::Branch {
                    depth,
                    bitmap,
                    children,
                    ..
                } => {
                    let bit = 1u64 << chunk(hash, *depth as usize);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[idx];
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable point lookup. A **miss copies nothing**: presence is
    /// probed read-only first, so only a hit path-copies shared nodes.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if !self.contains_key(key) {
            return None;
        }
        let hash = key.pmap_hash();
        let mut node: &mut Node<K, V> = Arc::make_mut(self.root.as_mut()?);
        loop {
            match node {
                Node::Leaf { entries, .. } => {
                    let i = entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .expect("probed present above");
                    return Some(&mut entries[i].1);
                }
                Node::Branch {
                    depth,
                    bitmap,
                    children,
                    ..
                } => {
                    let bit = 1u64 << chunk(hash, *depth as usize);
                    let idx = (*bitmap & (bit - 1)).count_ones() as usize;
                    node = Arc::make_mut(&mut children[idx]);
                }
            }
        }
    }

    /// Inserts `key → value`, returning the previous value if any.
    /// Copies only the nodes on the root→leaf path that are shared.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let hash = key.pmap_hash();
        let old = match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf {
                    hash,
                    entries: vec![(key, value)],
                }));
                None
            }
            Some(root) => insert_rec(root, hash, key, value),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes `key`, returning its value if present. A miss copies
    /// nothing. Removal restores the canonical shape: a branch left
    /// with a single leaf child collapses back up the path.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if !self.contains_key(key) {
            return None;
        }
        let hash = key.pmap_hash();
        let root = self.root.as_mut().expect("non-empty: key present");
        let (value, now_empty) = remove_rec(root, hash, key);
        if now_empty {
            self.root = None;
        }
        self.len -= 1;
        Some(value)
    }

    /// Iterates entries in ascending `(pmap_hash, key)` order — for
    /// identity-hashed id keys, ascending id order.
    pub fn iter(&self) -> PMapIter<'_, K, V> {
        PMapIter {
            stack: match &self.root {
                Some(root) => vec![(root.as_ref(), 0)],
                None => Vec::new(),
            },
        }
    }

    /// Iterates keys in the same deterministic order as [`Self::iter`].
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in the same deterministic order as [`Self::iter`].
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

/// The hash prefix a node constrains: a leaf pins the full hash, a
/// branch pins the chunks above its discrimination depth (lower
/// chunks zero).
#[inline]
fn node_key<K, V>(node: &Node<K, V>) -> u64 {
    match node {
        Node::Leaf { hash, .. } => *hash,
        Node::Branch { prefix, .. } => *prefix,
    }
}

fn insert_rec<K: PmapKey, V: Clone>(
    slot: &mut Arc<Node<K, V>>,
    hash: u64,
    key: K,
    value: V,
) -> Option<V> {
    // Does `hash` belong inside this node's subtree? A leaf requires
    // the full hash; a branch requires its prefix above `depth`.
    let belongs = match &**slot {
        Node::Leaf { hash: h, .. } => *h == hash,
        Node::Branch { depth, prefix, .. } => hash & prefix_mask(*depth as usize) == *prefix,
    };
    if !belongs {
        // Split: a fresh 2-child branch at the first divergent chunk.
        // The old node (leaf *or* whole branch subtree) is moved under
        // it untouched — no `make_mut`, nothing below is copied.
        let old_hash = node_key(&**slot);
        let d = diverge_depth(hash, old_hash);
        let new_leaf = Arc::new(Node::Leaf {
            hash,
            entries: vec![(key, value)],
        });
        let placeholder = Arc::new(Node::Leaf {
            hash,
            entries: Vec::new(),
        });
        let old = std::mem::replace(slot, placeholder);
        let (ca, cb) = (chunk(old_hash, d), chunk(hash, d));
        debug_assert_ne!(ca, cb, "divergence depth must separate the chunks");
        let children = if ca < cb {
            vec![old, new_leaf]
        } else {
            vec![new_leaf, old]
        };
        *slot = Arc::new(Node::Branch {
            depth: d as u8,
            prefix: hash & prefix_mask(d),
            bitmap: (1u64 << ca) | (1u64 << cb),
            children,
        });
        return None;
    }
    match Arc::make_mut(slot) {
        Node::Leaf { entries, .. } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
            Err(i) => {
                entries.insert(i, (key, value));
                None
            }
        },
        Node::Branch {
            depth,
            bitmap,
            children,
            ..
        } => {
            let bit = 1u64 << chunk(hash, *depth as usize);
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit != 0 {
                insert_rec(&mut children[idx], hash, key, value)
            } else {
                *bitmap |= bit;
                children.insert(
                    idx,
                    Arc::new(Node::Leaf {
                        hash,
                        entries: vec![(key, value)],
                    }),
                );
                None
            }
        }
    }
}

/// Removes a key known to be present. Returns `(value, slot now empty)`.
fn remove_rec<K: PmapKey, V: Clone>(slot: &mut Arc<Node<K, V>>, hash: u64, key: &K) -> (V, bool) {
    let (value, now_empty, collapse) = match Arc::make_mut(slot) {
        Node::Leaf { entries, .. } => {
            let i = entries
                .binary_search_by(|(k, _)| k.cmp(key))
                .expect("caller probed presence");
            let (_, v) = entries.remove(i);
            (v, entries.is_empty(), None)
        }
        Node::Branch {
            bitmap,
            children,
            depth,
            ..
        } => {
            let bit = 1u64 << chunk(hash, *depth as usize);
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            let (v, child_empty) = remove_rec(&mut children[idx], hash, key);
            if child_empty {
                children.remove(idx);
                *bitmap &= !bit;
            }
            // Canonical-shape repair: a branch down to one child is no
            // longer a divergence point, so the survivor (leaf or
            // branch — it carries its own depth) replaces it wholesale.
            let collapse = if children.len() == 1 {
                children.pop()
            } else {
                None
            };
            (v, children.is_empty() && collapse.is_none(), collapse)
        }
    };
    if let Some(survivor) = collapse {
        *slot = survivor;
    }
    (value, now_empty)
}

/// Depth-first in-order iterator over a [`PMap`].
pub struct PMapIter<'a, K, V> {
    stack: Vec<(&'a Node<K, V>, usize)>,
}

impl<'a, K, V> Iterator for PMapIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, cursor)) = self.stack.last_mut() {
            match node {
                Node::Leaf { entries, .. } => {
                    if *cursor < entries.len() {
                        let (k, v) = &entries[*cursor];
                        *cursor += 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                Node::Branch { children, .. } => {
                    if *cursor < children.len() {
                        let child = children[*cursor].as_ref();
                        *cursor += 1;
                        self.stack.push((child, 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
        None
    }
}

impl<'a, K: PmapKey, V: Clone> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = PMapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: PmapKey, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Self::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: PmapKey, V: Clone> Extend<(K, V)> for PMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: PmapKey + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: PmapKey, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        if self.shares_root_with(other) {
            return true;
        }
        // Iteration order is canonical, so zip-compare is sound.
        self.iter()
            .zip(other.iter())
            .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<K: PmapKey, V: Clone + Eq> Eq for PMap<K, V> {}

// ---------------------------------------------------------------------------
// PSet
// ---------------------------------------------------------------------------

/// A persistent set: [`PMap`] with unit values. Same clone/sharing and
/// deterministic-iteration contract.
pub struct PSet<K> {
    map: PMap<K, ()>,
}

impl<K> Clone for PSet<K> {
    #[inline]
    fn clone(&self) -> Self {
        Self {
            map: self.map.clone(),
        }
    }
}

impl<K> Default for PSet<K> {
    fn default() -> Self {
        Self {
            map: PMap::default(),
        }
    }
}

impl<K: PmapKey> PSet<K> {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Adds `key`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Iterates members in ascending `(pmap_hash, key)` order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

impl<K: PmapKey> FromIterator<K> for PSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        Self {
            map: iter.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

impl<K: PmapKey> Extend<K> for PSet<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        self.map.extend(iter.into_iter().map(|k| (k, ())));
    }
}

impl<K: PmapKey + fmt::Debug> fmt::Debug for PSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<K: PmapKey> PartialEq for PSet<K> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<K: PmapKey> Eq for PSet<K> {}

// ---------------------------------------------------------------------------
// Snapshot implementation selection
// ---------------------------------------------------------------------------

/// Which collection family the model layers use for snapshot-published
/// state. `Pmap` (the default) gives O(batch) commits under pinned
/// readers; `Cow` is the pre-PR-10 copy-on-write rollback path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SnapshotImpl {
    /// Legacy `Arc<std map>` + `make_mut`: first write after a snapshot
    /// is pinned deep-copies the whole map.
    Cow,
    /// Persistent HAMT: writes path-copy O(log n) nodes regardless of
    /// how many snapshots are pinned.
    #[default]
    Pmap,
}

// 0 = unset, 1 = Cow, 2 = Pmap.
static IMPL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_impl() -> Option<SnapshotImpl> {
    static CACHE: OnceLock<Option<SnapshotImpl>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = std::env::var("HYGRAPH_SNAPSHOT_IMPL").ok()?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "cow" => Some(SnapshotImpl::Cow),
            "pmap" => Some(SnapshotImpl::Pmap),
            _ => None,
        }
    })
}

impl SnapshotImpl {
    /// Applies this choice process-wide (between the explicit-argument
    /// and environment precedence layers). Repeatable; the last call
    /// wins — the bench uses this to measure both modes in one process.
    pub fn install(self) {
        let v = match self {
            SnapshotImpl::Cow => 1,
            SnapshotImpl::Pmap => 2,
        };
        IMPL_OVERRIDE.store(v, Ordering::Relaxed);
    }

    /// Clears an installed override, falling back to the environment /
    /// default layers.
    pub fn clear_install() {
        IMPL_OVERRIDE.store(0, Ordering::Relaxed);
    }

    /// Resolves the effective implementation: installed override, else
    /// `HYGRAPH_SNAPSHOT_IMPL` (`cow` | `pmap`), else `Pmap`.
    pub fn configured() -> Self {
        match IMPL_OVERRIDE.load(Ordering::Relaxed) {
            1 => SnapshotImpl::Cow,
            2 => SnapshotImpl::Pmap,
            _ => env_impl().unwrap_or_default(),
        }
    }
}

// ---------------------------------------------------------------------------
// SnapMap: the dual-mode map stores actually hold
// ---------------------------------------------------------------------------

/// A map that is either the legacy copy-on-write `Arc<BTreeMap>` or a
/// persistent [`PMap`], chosen per store at construction time. The two
/// variants expose identical semantics; for identity-hashed id keys
/// they also iterate in the identical (ascending id) order, which keeps
/// canonical encodings byte-identical across modes.
pub enum SnapMap<K, V> {
    /// Legacy mode: whole-map deep copy on first write while shared.
    Cow(Arc<BTreeMap<K, V>>),
    /// Structural sharing: O(log n) path copy per write.
    Pmap(PMap<K, V>),
}

impl<K, V> Clone for SnapMap<K, V> {
    #[inline]
    fn clone(&self) -> Self {
        match self {
            SnapMap::Cow(m) => SnapMap::Cow(Arc::clone(m)),
            SnapMap::Pmap(m) => SnapMap::Pmap(m.clone()),
        }
    }
}

impl<K: PmapKey, V: Clone> Default for SnapMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PmapKey, V: Clone> SnapMap<K, V> {
    /// An empty map in the process-configured mode
    /// ([`SnapshotImpl::configured`]).
    pub fn new() -> Self {
        Self::new_with(SnapshotImpl::configured())
    }

    /// An empty map in an explicit mode (tests and the bench pin modes
    /// this way; stores built from a checkpoint inherit the decoder's).
    pub fn new_with(mode: SnapshotImpl) -> Self {
        match mode {
            SnapshotImpl::Cow => SnapMap::Cow(Arc::new(BTreeMap::new())),
            SnapshotImpl::Pmap => SnapMap::Pmap(PMap::new()),
        }
    }

    /// Builds a map of `mode` from entries (decode paths).
    pub fn from_entries<I: IntoIterator<Item = (K, V)>>(mode: SnapshotImpl, entries: I) -> Self {
        match mode {
            SnapshotImpl::Cow => SnapMap::Cow(Arc::new(entries.into_iter().collect())),
            SnapshotImpl::Pmap => SnapMap::Pmap(entries.into_iter().collect()),
        }
    }

    /// The mode this map was built in.
    pub fn mode(&self) -> SnapshotImpl {
        match self {
            SnapMap::Cow(_) => SnapshotImpl::Cow,
            SnapMap::Pmap(_) => SnapshotImpl::Pmap,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            SnapMap::Cow(m) => m.len(),
            SnapMap::Pmap(m) => m.len(),
        }
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self {
            SnapMap::Cow(m) => m.get(key),
            SnapMap::Pmap(m) => m.get(key),
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable point lookup; a miss never un-shares or copies in either
    /// mode (presence is probed before any `make_mut`).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self {
            SnapMap::Cow(m) => {
                if !m.contains_key(key) {
                    return None;
                }
                Arc::make_mut(m).get_mut(key)
            }
            SnapMap::Pmap(m) => m.get_mut(key),
        }
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self {
            SnapMap::Cow(m) => Arc::make_mut(m).insert(key, value),
            SnapMap::Pmap(m) => m.insert(key, value),
        }
    }

    /// Removes `key`, returning its value if present; a miss never
    /// un-shares or copies in either mode.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self {
            SnapMap::Cow(m) => {
                if !m.contains_key(key) {
                    return None;
                }
                Arc::make_mut(m).remove(key)
            }
            SnapMap::Pmap(m) => m.remove(key),
        }
    }

    /// Iterates entries. For identity-hashed id keys both modes yield
    /// ascending id order; for string keys the orders differ (`Cow` is
    /// lexicographic, `Pmap` hash-ordered) but each is deterministic.
    pub fn iter(&self) -> SnapMapIter<'_, K, V> {
        match self {
            SnapMap::Cow(m) => SnapMapIter::Cow(m.iter()),
            SnapMap::Pmap(m) => SnapMapIter::Pmap(m.iter()),
        }
    }

    /// Iterates keys in [`Self::iter`] order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in [`Self::iter`] order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

/// Iterator over a [`SnapMap`], whichever mode it is in.
pub enum SnapMapIter<'a, K, V> {
    #[doc(hidden)]
    Cow(std::collections::btree_map::Iter<'a, K, V>),
    #[doc(hidden)]
    Pmap(PMapIter<'a, K, V>),
}

impl<'a, K, V> Iterator for SnapMapIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SnapMapIter::Cow(it) => it.next(),
            SnapMapIter::Pmap(it) => it.next(),
        }
    }
}

impl<'a, K: PmapKey, V: Clone> IntoIterator for &'a SnapMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = SnapMapIter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: PmapKey + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for SnapMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Content equality regardless of mode (lookup-based, so the string-key
/// iteration-order difference between modes cannot cause false negatives).
impl<K: PmapKey, V: Clone + PartialEq> PartialEq for SnapMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: PmapKey, V: Clone + Eq> Eq for SnapMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_basics() {
        let m: PMap<u64, u32> = PMap::new();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.get(&7), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PMap::new();
        for i in 0..1000u64 {
            assert_eq!(m.insert(i, i * 2), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.insert(500, 0), Some(1000));
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert!(m.remove(&i).is_some());
        }
        assert!(m.is_empty());
        assert!(m.root.is_none());
    }

    #[test]
    fn iteration_is_ascending_for_id_keys() {
        // Insert in scrambled order; iterate ascending.
        let mut m = PMap::new();
        let mut keys: Vec<u64> = (0..257).map(|i| (i * 101) % 257).collect();
        for &k in &keys {
            m.insert(k, ());
        }
        keys.sort_unstable();
        let got: Vec<u64> = m.keys().copied().collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn shape_is_insertion_order_independent() {
        let fwd: PMap<u64, u64> = (0..100).map(|i| (i, i)).collect();
        let rev: PMap<u64, u64> = (0..100).rev().map(|i| (i, i)).collect();
        assert_eq!(fwd, rev);
        let a: Vec<_> = fwd.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<_> = rev.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn clone_is_shared_until_divergence() {
        let mut a: PMap<u64, u64> = (0..64).map(|i| (i, i)).collect();
        let b = a.clone();
        assert!(a.shares_root_with(&b));
        a.insert(1000, 1000);
        assert!(!a.shares_root_with(&b));
        assert_eq!(b.len(), 64);
        assert_eq!(a.len(), 65);
        assert_eq!(b.get(&1000), None);
    }

    #[test]
    fn get_mut_and_remove_miss_do_not_copy() {
        let mut a: PMap<u64, u64> = (0..64).map(|i| (i, i)).collect();
        let b = a.clone();
        assert_eq!(a.get_mut(&999), None);
        assert_eq!(a.remove(&999), None);
        assert!(a.shares_root_with(&b), "miss must not un-share the root");
    }

    #[test]
    fn high_bit_keys_and_extremes() {
        let mut m = PMap::new();
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            m.insert(k, k);
        }
        let got: Vec<u64> = m.keys().copied().collect();
        let mut want = vec![0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(m.remove(&u64::MAX), Some(u64::MAX));
        assert_eq!(m.get(&(u64::MAX - 1)), Some(&(u64::MAX - 1)));
    }

    /// Key type whose hash throws away everything but the low bit:
    /// every pair of same-parity keys is a full 64-bit hash collision.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct Collider(u64);
    impl PmapKey for Collider {
        fn pmap_hash(&self) -> u64 {
            self.0 & 1
        }
    }

    #[test]
    fn hostile_collisions_stay_sorted_and_removable() {
        let mut m = PMap::new();
        for i in (0..40u64).rev() {
            m.insert(Collider(i), i);
        }
        assert_eq!(m.len(), 40);
        // Iteration: hash 0 leaf (evens ascending) then hash 1 leaf (odds).
        let got: Vec<u64> = m.keys().map(|k| k.0).collect();
        let mut want: Vec<u64> = (0..40).filter(|i| i % 2 == 0).collect();
        want.extend((0..40).filter(|i| i % 2 == 1));
        assert_eq!(got, want);
        for i in 0..40u64 {
            assert_eq!(m.get(&Collider(i)), Some(&i));
        }
        for i in 0..40u64 {
            assert_eq!(m.remove(&Collider(i)), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn branch_collapse_restores_canonical_shape() {
        // Two keys differing only in low bits force a deep branch chain;
        // removing one must collapse the chain so the survivor's map
        // equals a fresh single-key map (shape canonicality proxy:
        // equality plus identical iteration).
        let mut m = PMap::new();
        m.insert(0u64, 'a');
        m.insert(1u64, 'b'); // differs only in the final 4-bit chunk
        assert_eq!(m.remove(&1), Some('b'));
        let fresh: PMap<u64, char> = [(0u64, 'a')].into_iter().collect();
        assert_eq!(m, fresh);
        // The root must be a leaf again, not a chain of branches.
        assert!(matches!(m.root.as_deref(), Some(Node::Leaf { .. })));
    }

    #[test]
    fn pset_basics() {
        let mut s = PSet::new();
        assert!(s.insert(EdgeId::new(5)));
        assert!(s.insert(EdgeId::new(3)));
        assert!(!s.insert(EdgeId::new(5)));
        assert_eq!(s.len(), 2);
        let ids: Vec<u64> = s.iter().map(|e| e.raw()).collect();
        assert_eq!(ids, vec![3, 5]);
        assert!(s.remove(&EdgeId::new(3)));
        assert!(!s.remove(&EdgeId::new(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn label_keys_hash_deterministically() {
        let a = Label::new("Station").pmap_hash();
        let b = Label::new("Station").pmap_hash();
        let c = Label::new("Dock").pmap_hash();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
    }

    #[test]
    fn snapshot_impl_precedence() {
        // No override installed in this test binary unless we install one.
        SnapshotImpl::clear_install();
        let base = SnapshotImpl::configured(); // env or default
        SnapshotImpl::Cow.install();
        assert_eq!(SnapshotImpl::configured(), SnapshotImpl::Cow);
        SnapshotImpl::Pmap.install();
        assert_eq!(SnapshotImpl::configured(), SnapshotImpl::Pmap);
        SnapshotImpl::clear_install();
        assert_eq!(SnapshotImpl::configured(), base);
    }

    #[test]
    fn snapmap_modes_agree() {
        let entries: Vec<(u64, u64)> = (0..50).map(|i| (i * 3 % 50, i)).collect();
        let mut cow = SnapMap::new_with(SnapshotImpl::Cow);
        let mut pm = SnapMap::new_with(SnapshotImpl::Pmap);
        for &(k, v) in &entries {
            assert_eq!(cow.insert(k, v), pm.insert(k, v));
        }
        assert_eq!(cow, pm);
        assert_eq!(
            cow.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            pm.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
            "id-keyed SnapMaps iterate identically across modes"
        );
        assert_eq!(cow.remove(&3), pm.remove(&3));
        assert_eq!(cow.remove(&999), None);
        assert_eq!(pm.remove(&999), None);
        assert_eq!(cow.get_mut(&999), None);
        assert_eq!(pm.get_mut(&999), None);
        *cow.get_mut(&6).unwrap() = 1;
        *pm.get_mut(&6).unwrap() = 1;
        assert_eq!(cow, pm);
    }
}
