//! Deterministic synthetic dataset generators for HyGraph.
//!
//! Three families, each standing in for data the paper uses:
//!
//! * [`bike`] — a bike-sharing station network with per-station
//!   availability time series, shaped like the paper's published NYC
//!   dataset (Zenodo 13846868). Drives the Table-1 storage benchmark.
//! * [`fraud`] — the credit-card fraud running example: the exact
//!   Figure-2 micro-instance plus a scalable generator with ground-truth
//!   fraud labels. Drives the Figure-2/Figure-4 experiments.
//! * [`random`] — random temporal graphs and series for property tests
//!   and operator benchmarks.
//!
//! Every generator takes an explicit seed and is fully deterministic.

pub mod bike;
pub mod fraud;
pub mod random;
