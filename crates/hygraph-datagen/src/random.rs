//! Random graphs and series for property tests and operator benchmarks.

use hygraph_graph::TemporalGraph;
use hygraph_ts::TimeSeries;
use hygraph_types::{props, Duration, Interval, Timestamp, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A G(n, m)-style random labelled temporal graph: `n` vertices, `m`
/// edges with endpoints chosen uniformly (self-loops allowed), labels
/// drawn from `labels`, and validity intervals sampled inside `horizon`.
pub fn random_graph(
    n: usize,
    m: usize,
    labels: &[&str],
    horizon: Interval,
    seed: u64,
) -> TemporalGraph {
    assert!(n > 0, "need at least one vertex");
    assert!(!labels.is_empty(), "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TemporalGraph::with_capacity(n, m);
    let span = horizon.len().millis().max(2);
    let rand_iv = |rng: &mut StdRng| {
        let a = rng.random_range(0..span - 1);
        let b = rng.random_range(a + 1..span);
        Interval::new(
            horizon.start + Duration::from_millis(a),
            horizon.start + Duration::from_millis(b),
        )
    };
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            let label = labels[rng.random_range(0..labels.len())];
            let iv = rand_iv(&mut rng);
            g.add_vertex_valid([label], props! {"idx" => i as i64}, iv)
        })
        .collect();
    for _ in 0..m {
        let a = vs[rng.random_range(0..n)];
        let b = vs[rng.random_range(0..n)];
        // edge validity inside the intersection of endpoint validities
        let va = g.vertex(a).expect("exists").validity;
        let vb = g.vertex(b).expect("exists").validity;
        let Some(overlap) = va.intersect(&vb) else {
            continue;
        };
        let w = rng.random_range(0.1..10.0);
        g.add_edge_valid(a, b, ["E"], props! {"w" => w}, overlap)
            .expect("vertices exist");
    }
    g
}

/// A bounded random walk: `x_{k+1} = x_k + N(0, step)` approximated with
/// a uniform increment, reflected at `±bound`.
pub fn random_walk(n: usize, step: f64, bound: f64, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = 0.0f64;
    TimeSeries::generate(Timestamp::ZERO, Duration::from_secs(1), n, |_| {
        x += rng.random_range(-step..step);
        if x > bound {
            x = 2.0 * bound - x;
        }
        if x < -bound {
            x = -2.0 * bound - x;
        }
        x
    })
}

/// A seasonal series: `amplitude·sin(2πk/period) + trend·k + noise`.
pub fn seasonal(
    n: usize,
    period: usize,
    amplitude: f64,
    trend: f64,
    noise: f64,
    seed: u64,
) -> TimeSeries {
    assert!(period > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    TimeSeries::generate(Timestamp::ZERO, Duration::from_secs(60), n, |k| {
        amplitude * ((k % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
            + trend * k as f64
            + rng.random_range(-noise..noise)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_respects_counts_and_integrity() {
        let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(10_000));
        let g = random_graph(50, 200, &["A", "B"], horizon, 9);
        assert_eq!(g.vertex_count(), 50);
        assert!(g.edge_count() <= 200);
        assert!(g.edge_count() > 60, "a solid majority of edges should materialise");
        assert!(g.validate().is_ok(), "edge validity within endpoints");
    }

    #[test]
    fn graph_deterministic() {
        let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(1_000));
        let a = random_graph(20, 50, &["X"], horizon, 5);
        let b = random_graph(20, 50, &["X"], horizon, 5);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn walk_bounded_and_deterministic() {
        let w = random_walk(5_000, 1.0, 50.0, 3);
        assert_eq!(w.len(), 5_000);
        for (_, v) in w.iter() {
            assert!(v.abs() <= 50.0 + 1.0, "reflected at the bound");
        }
        assert_eq!(random_walk(100, 1.0, 50.0, 3), random_walk(100, 1.0, 50.0, 3));
    }

    #[test]
    fn seasonal_has_period() {
        let s = seasonal(500, 50, 10.0, 0.0, 0.1, 11);
        let r = hygraph_ts::ops::stats::autocorrelation(s.values(), 50).unwrap();
        // biased ACF estimator caps at (n-k)/n = 0.9 for a perfect period
        assert!(r > 0.85, "period-50 autocorrelation, got {r}");
    }
}
