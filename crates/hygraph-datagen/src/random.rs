//! Random graphs and series for property tests and operator benchmarks.

use hygraph_core::{ElementRef, HyGraph};
use hygraph_graph::TemporalGraph;
use hygraph_ts::{MultiSeries, TimeSeries};
use hygraph_types::{props, Duration, Interval, PropertyMap, Timestamp, Value, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A G(n, m)-style random labelled temporal graph: `n` vertices, `m`
/// edges with endpoints chosen uniformly (self-loops allowed), labels
/// drawn from `labels`, and validity intervals sampled inside `horizon`.
pub fn random_graph(
    n: usize,
    m: usize,
    labels: &[&str],
    horizon: Interval,
    seed: u64,
) -> TemporalGraph {
    assert!(n > 0, "need at least one vertex");
    assert!(!labels.is_empty(), "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TemporalGraph::with_capacity(n, m);
    let span = horizon.len().millis().max(2);
    let rand_iv = |rng: &mut StdRng| {
        let a = rng.random_range(0..span - 1);
        let b = rng.random_range(a + 1..span);
        Interval::new(
            horizon.start + Duration::from_millis(a),
            horizon.start + Duration::from_millis(b),
        )
    };
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            let label = labels[rng.random_range(0..labels.len())];
            let iv = rand_iv(&mut rng);
            g.add_vertex_valid([label], props! {"idx" => i as i64}, iv)
        })
        .collect();
    for _ in 0..m {
        let a = vs[rng.random_range(0..n)];
        let b = vs[rng.random_range(0..n)];
        // edge validity inside the intersection of endpoint validities
        let va = g.vertex(a).expect("exists").validity;
        let vb = g.vertex(b).expect("exists").validity;
        let Some(overlap) = va.intersect(&vb) else {
            continue;
        };
        let w = rng.random_range(0.1..10.0);
        g.add_edge_valid(a, b, ["E"], props! {"w" => w}, overlap)
            .expect("vertices exist");
    }
    g
}

/// A random full-model HyGraph instance exercising every element class
/// of Definition 1: multivariate series, pg- and ts-vertices, pg- and
/// ts-edges, scalar and series-valued properties, and subgraphs with
/// interval-qualified members. Deterministic in `seed`; the result
/// always passes `validate()` — the generator is the input source for
/// the persistence round-trip property tests.
pub fn random_hygraph(
    n_vertices: usize,
    n_edges: usize,
    n_series: usize,
    n_subgraphs: usize,
    seed: u64,
) -> HyGraph {
    assert!(n_vertices > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hg = HyGraph::new();

    // series: 1–3 named columns, 0–19 rows on an irregular time axis
    let mut sids = Vec::with_capacity(n_series);
    for k in 0..n_series {
        let cols = rng.random_range(1..=3usize);
        let names: Vec<String> = (0..cols).map(|c| format!("var{k}_{c}")).collect();
        let mut s = MultiSeries::new(names);
        let len = rng.random_range(0..20usize);
        let mut t = rng.random_range(0..1_000i64);
        for _ in 0..len {
            let row: Vec<f64> = (0..cols).map(|_| rng.random_range(-100.0..100.0)).collect();
            s.push(Timestamp::from_millis(t), &row)
                .expect("increasing times");
            t += rng.random_range(1..10_000i64);
        }
        sids.push(hg.add_series(s));
    }

    // vertices: ~1 in 4 is a ts-vertex when series exist; a fraction of
    // pg-vertices get a bounded validity interval
    let horizon = 10_000_000i64;
    let mut vertices = Vec::with_capacity(n_vertices);
    let mut all_valid = Vec::new(); // candidates for Interval::ALL edges
    for k in 0..n_vertices {
        if !sids.is_empty() && rng.random_range(0..4) == 0 {
            let sid = sids[rng.random_range(0..sids.len())];
            let v = hg
                .add_ts_vertex([format!("Ts{}", k % 3)], sid)
                .expect("series exists");
            vertices.push(v);
            all_valid.push(v);
        } else {
            let mut p = PropertyMap::new();
            p.set("idx", Value::Int(k as i64));
            if rng.random_range(0..3) == 0 {
                p.set("score", Value::Float(rng.random_range(-1.0..1.0)));
            }
            if rng.random_range(0..3) == 0 {
                p.set("tag", Value::Str(format!("t{}", rng.random_range(0..50))));
            }
            if let Some(&sid) = sids.first() {
                if rng.random_range(0..4) == 0 {
                    p.set("attached", sid); // series-valued property
                }
            }
            let validity = if rng.random_range(0..3) == 0 {
                let a = rng.random_range(0..horizon - 1);
                let b = rng.random_range(a + 1..horizon);
                Interval::new(Timestamp::from_millis(a), Timestamp::from_millis(b))
            } else {
                Interval::ALL
            };
            let v = hg.add_pg_vertex_valid([format!("L{}", k % 4)], p, validity);
            vertices.push(v);
            if validity == Interval::ALL {
                all_valid.push(v);
            }
        }
    }

    // edges: ts-edges only between always-valid endpoints (their
    // validity is Interval::ALL); pg-edges inside the endpoint overlap
    for k in 0..n_edges {
        if !sids.is_empty() && all_valid.len() >= 2 && rng.random_range(0..4) == 0 {
            let a = all_valid[rng.random_range(0..all_valid.len())];
            let b = all_valid[rng.random_range(0..all_valid.len())];
            let sid = sids[rng.random_range(0..sids.len())];
            hg.add_ts_edge(a, b, ["FLOW"], sid)
                .expect("valid endpoints");
        } else {
            let a = vertices[rng.random_range(0..vertices.len())];
            let b = vertices[rng.random_range(0..vertices.len())];
            let va = hg.topology().vertex(a).expect("exists").validity;
            let vb = hg.topology().vertex(b).expect("exists").validity;
            let Some(overlap) = va.intersect(&vb) else {
                continue;
            };
            let mut p = PropertyMap::new();
            p.set("w", Value::Float(rng.random_range(0.1..10.0)));
            hg.add_pg_edge_valid(a, b, [format!("E{}", k % 2)], p, overlap)
                .expect("endpoints exist");
        }
    }

    // subgraphs with interval-qualified members
    for k in 0..n_subgraphs {
        let mut p = PropertyMap::new();
        p.set("rank", Value::Int(k as i64));
        let sg = hg.create_subgraph([format!("S{k}")], p, Interval::ALL);
        for _ in 0..rng.random_range(0..5usize) {
            let v = vertices[rng.random_range(0..vertices.len())];
            let a = rng.random_range(0..horizon - 1);
            let b = rng.random_range(a + 1..horizon);
            let during = Interval::new(Timestamp::from_millis(a), Timestamp::from_millis(b));
            // membership must sit inside the member's own validity
            let validity = hg.topology().vertex(v).expect("exists").validity;
            let Some(during) = during.intersect(&validity) else {
                continue;
            };
            hg.add_subgraph_vertex(sg, v, during)
                .expect("vertex exists");
        }
    }

    // supplementary series-valued properties via set_property
    for &sid in sids.iter().take(2) {
        if let Some(&v) = vertices.first() {
            if hg.vertex_kind(v).expect("exists") == hygraph_core::ElementKind::Pg {
                hg.set_property(ElementRef::Vertex(v), format!("extra{}", sid.raw()), sid)
                    .expect("pg vertex");
            }
        }
    }

    hg.validate().expect("generator emits valid instances");
    hg
}

/// A bounded random walk: `x_{k+1} = x_k + N(0, step)` approximated with
/// a uniform increment, reflected at `±bound`.
pub fn random_walk(n: usize, step: f64, bound: f64, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = 0.0f64;
    TimeSeries::generate(Timestamp::ZERO, Duration::from_secs(1), n, |_| {
        x += rng.random_range(-step..step);
        if x > bound {
            x = 2.0 * bound - x;
        }
        if x < -bound {
            x = -2.0 * bound - x;
        }
        x
    })
}

/// A seasonal series: `amplitude·sin(2πk/period) + trend·k + noise`.
pub fn seasonal(
    n: usize,
    period: usize,
    amplitude: f64,
    trend: f64,
    noise: f64,
    seed: u64,
) -> TimeSeries {
    assert!(period > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    TimeSeries::generate(Timestamp::ZERO, Duration::from_secs(60), n, |k| {
        amplitude * ((k % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
            + trend * k as f64
            + rng.random_range(-noise..noise)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_respects_counts_and_integrity() {
        let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(10_000));
        let g = random_graph(50, 200, &["A", "B"], horizon, 9);
        assert_eq!(g.vertex_count(), 50);
        assert!(g.edge_count() <= 200);
        assert!(
            g.edge_count() > 60,
            "a solid majority of edges should materialise"
        );
        assert!(g.validate().is_ok(), "edge validity within endpoints");
    }

    #[test]
    fn graph_deterministic() {
        let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(1_000));
        let a = random_graph(20, 50, &["X"], horizon, 5);
        let b = random_graph(20, 50, &["X"], horizon, 5);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn hygraph_generator_is_valid_and_deterministic() {
        let a = random_hygraph(20, 30, 4, 2, 17);
        let b = random_hygraph(20, 30, 4, 2, 17);
        assert_eq!(a.vertex_count(), 20);
        assert!(a.validate().is_ok());
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.series_count(), b.series_count());
        // same seed → identical serialisation; different seed → diverges
        let a_text = hygraph_core::io::to_string(&a).unwrap();
        assert_eq!(a_text, hygraph_core::io::to_string(&b).unwrap());
        let c = random_hygraph(20, 30, 4, 2, 18);
        assert_ne!(a_text, hygraph_core::io::to_string(&c).unwrap());
    }

    #[test]
    fn hygraph_generator_covers_element_classes() {
        use hygraph_core::ElementKind;
        let hg = random_hygraph(60, 80, 6, 3, 5);
        let ts_v = hg.vertices_of_kind(ElementKind::Ts).count();
        let pg_v = hg.vertices_of_kind(ElementKind::Pg).count();
        assert!(ts_v > 0, "ts-vertices generated");
        assert!(pg_v > 0, "pg-vertices generated");
        assert!(hg.series_count() >= 6);
        assert_eq!(hg.subgraphs().count(), 3);
    }

    #[test]
    fn walk_bounded_and_deterministic() {
        let w = random_walk(5_000, 1.0, 50.0, 3);
        assert_eq!(w.len(), 5_000);
        for (_, v) in w.iter() {
            assert!(v.abs() <= 50.0 + 1.0, "reflected at the bound");
        }
        assert_eq!(
            random_walk(100, 1.0, 50.0, 3),
            random_walk(100, 1.0, 50.0, 3)
        );
    }

    #[test]
    fn seasonal_has_period() {
        let s = seasonal(500, 50, 10.0, 0.0, 0.1, 11);
        let r = hygraph_ts::ops::stats::autocorrelation(s.values(), 50).unwrap();
        // biased ACF estimator caps at (n-k)/n = 0.9 for a perfect period
        assert!(r > 0.85, "period-50 autocorrelation, got {r}");
    }
}
