//! Credit-card fraud running example (paper §3, Figures 2 and 4).
//!
//! Two generators:
//!
//! * [`figure2_instance`] — the exact micro-instance of Figure 2: three
//!   users whose behaviours reproduce the paper's story. The graph-only
//!   query (Listing 1) flags **User 1 and User 3**; the series-only
//!   outlier detector (Listing 2) flags **User 1**; the hybrid pipeline
//!   confirms User 1 and clears User 3 as a false positive.
//! * [`generate`] — a scalable version with ground-truth labels:
//!   fraudsters (burst spending + high transactions to co-located
//!   merchants in a short window), *bulk shoppers* (benign users whose
//!   purchasing pattern triggers the graph-only rule every week), and
//!   ordinary users.
//!
//! Cards are **ts-vertices** (δ = hourly spending series), users and
//! merchants are pg-vertices, `USES` edges are pg-edges, and `TX`
//! edges are pg-edges carrying `amount` with validity starting at the
//! transaction instant — exactly the modelling §5 prescribes.

use hygraph_core::HyGraph;
use hygraph_ts::TimeSeries;
use hygraph_types::{props, Duration, Interval, SeriesId, Timestamp, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration of the scalable fraud dataset.
#[derive(Clone, Copy, Debug)]
pub struct FraudConfig {
    /// Number of users (one card each).
    pub users: usize,
    /// Number of merchants.
    pub merchants: usize,
    /// Merchants per geographic plaza (co-location cluster).
    pub plaza_size: usize,
    /// Hours of spending history per card.
    pub hours: usize,
    /// Fraction of users that are fraudsters.
    pub fraud_rate: f64,
    /// Fraction of users that are benign bulk shoppers.
    pub bulk_rate: f64,
    /// Fraction of users that are benign one-off big spenders (a single
    /// large legitimate purchase — the *series-only* false positives).
    pub vacation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FraudConfig {
    fn default() -> Self {
        Self {
            users: 200,
            merchants: 60,
            plaza_size: 5,
            hours: 24 * 14,
            fraud_rate: 0.05,
            bulk_rate: 0.05,
            vacation_rate: 0.05,
            seed: 1337,
        }
    }
}

/// The generated dataset with ground truth.
pub struct FraudDataset {
    /// The unified instance.
    pub hygraph: HyGraph,
    /// User vertices, index-aligned with `cards` and `spending`.
    pub users: Vec<VertexId>,
    /// Card ts-vertices (δ = spending series).
    pub cards: Vec<VertexId>,
    /// Spending series ids, one per card.
    pub spending: Vec<SeriesId>,
    /// Merchant vertices.
    pub merchants: Vec<VertexId>,
    /// Indices (into `users`) of true fraudsters.
    pub fraudsters: HashSet<usize>,
    /// Indices of benign bulk shoppers (graph-rule false positives).
    pub bulk_shoppers: HashSet<usize>,
    /// Indices of benign one-off big spenders (series-rule false
    /// positives).
    pub vacation_spenders: HashSet<usize>,
    /// Start of the observation window.
    pub start: Timestamp,
    /// End of the observation window.
    pub end: Timestamp,
}

/// Builds the exact Figure-2 micro-instance. Returns the dataset with
/// `users[0]` = User 1 (fraudster), `users[1]` = User 2 (ordinary),
/// `users[2]` = User 3 (bulk shopper / graph false positive).
pub fn figure2_instance() -> FraudDataset {
    let start = Timestamp::from_millis(0);
    let hour = Duration::from_hours(1);
    let hours = 48usize;
    let mut hg = HyGraph::new();

    // merchants: m0..m2 co-located in one plaza (≤ 1 km), m3 far away
    let merchant_pos = [(0.0, 0.0), (300.0, 200.0), (500.0, 400.0), (9000.0, 9000.0)];
    let merchants: Vec<VertexId> = merchant_pos
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            hg.add_pg_vertex(
                ["Merchant"],
                props! {"name" => format!("m{i}"), "x" => x, "y" => y},
            )
        })
        .collect();

    // spending series per user
    let steady = |base: f64, jitter: f64| {
        move |i: usize| base + ((i * 2654435761) % 97) as f64 / 97.0 * jitter
    };
    // User 1: steady 40±5, with a violent burst in hours 20..24 ([t5,t6) of the figure)
    let user1_spend = TimeSeries::generate(start, hour, hours, |i| {
        if (20..24).contains(&i) {
            1200.0 + (i - 20) as f64 * 150.0
        } else {
            steady(40.0, 5.0)(i)
        }
    });
    // User 2: steady
    let user2_spend = TimeSeries::generate(start, hour, hours, steady(35.0, 6.0));
    // User 3: steady but at a higher level — a business account doing
    // regular bulk purchases; high mean, *no local burst*
    let user3_spend = TimeSeries::generate(start, hour, hours, steady(1100.0, 80.0));

    let mut users = Vec::new();
    let mut cards = Vec::new();
    let mut spending = Vec::new();
    for (i, s) in [user1_spend, user2_spend, user3_spend].iter().enumerate() {
        let u = hg.add_pg_vertex(["User"], props! {"name" => format!("User {}", i + 1)});
        let sid = hg.add_univariate_series("spending", s);
        let c = hg
            .add_ts_vertex(["CreditCard"], sid)
            .expect("series exists");
        hg.add_pg_edge(u, c, ["USES"], props! {})
            .expect("vertices exist");
        users.push(u);
        cards.push(c);
        spending.push(sid);
    }

    let mut tx = |card: VertexId, merchant: VertexId, at_hour: i64, amount: f64| {
        hg.add_pg_edge_valid(
            card,
            merchant,
            ["TX"],
            props! {"amount" => amount},
            Interval::from(start + hour.scale(at_hour)),
        )
        .expect("vertices exist");
    };

    // User 1 (fraud): burst of >1000 tx to the three plaza merchants
    // within the same hour (hour 21)
    tx(cards[0], merchants[0], 21, 1250.0);
    tx(cards[0], merchants[1], 21, 1400.0);
    tx(cards[0], merchants[2], 21, 1800.0);
    // plus normal history
    tx(cards[0], merchants[3], 5, 45.0);
    tx(cards[0], merchants[0], 10, 38.0);

    // User 2 (ordinary): small scattered transactions
    tx(cards[1], merchants[1], 8, 25.0);
    tx(cards[1], merchants[3], 30, 60.0);

    // User 3 (bulk shopper): the same >1000 plaza pattern — every day,
    // to the same three suppliers (hours 9, 33 = daily restock)
    for day in 0..2 {
        let h = 9 + day * 24;
        tx(cards[2], merchants[0], h, 1100.0);
        tx(cards[2], merchants[1], h, 1050.0);
        tx(cards[2], merchants[2], h, 1150.0);
    }

    let end = start + hour.scale(hours as i64);
    FraudDataset {
        hygraph: hg,
        users,
        cards,
        spending,
        merchants,
        fraudsters: HashSet::from([0]),
        bulk_shoppers: HashSet::from([2]),
        vacation_spenders: HashSet::new(),
        start,
        end,
    }
}

/// Generates the scalable dataset.
pub fn generate(cfg: FraudConfig) -> FraudDataset {
    assert!(cfg.users > 0 && cfg.merchants > 0);
    assert!(cfg.plaza_size > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let start = Timestamp::from_millis(0);
    let hour = Duration::from_hours(1);
    let mut hg = HyGraph::new();

    // merchants in plazas: plaza k is centred at (10km * k, 0); members
    // within a few hundred metres of the centre
    let merchants: Vec<VertexId> = (0..cfg.merchants)
        .map(|i| {
            let plaza = i / cfg.plaza_size;
            let x = plaza as f64 * 10_000.0 + rng.random_range(-300.0..300.0);
            let y = rng.random_range(-300.0..300.0);
            hg.add_pg_vertex(
                ["Merchant"],
                props! {"name" => format!("m{i}"), "x" => x, "y" => y, "plaza" => plaza as i64},
            )
        })
        .collect();
    let plazas = cfg.merchants.div_ceil(cfg.plaza_size);

    // user roles
    let n_fraud = ((cfg.users as f64) * cfg.fraud_rate).round() as usize;
    let n_bulk = ((cfg.users as f64) * cfg.bulk_rate).round() as usize;
    let n_vac = ((cfg.users as f64) * cfg.vacation_rate).round() as usize;
    let mut roles: Vec<u8> = vec![0; cfg.users];
    for r in roles.iter_mut().take(n_fraud) {
        *r = 1; // fraud
    }
    for r in roles.iter_mut().skip(n_fraud).take(n_bulk) {
        *r = 2; // bulk
    }
    for r in roles.iter_mut().skip(n_fraud + n_bulk).take(n_vac) {
        *r = 3; // vacation spender
    }
    // deterministic shuffle
    use rand::seq::SliceRandom;
    roles.shuffle(&mut rng);

    let mut users = Vec::with_capacity(cfg.users);
    let mut cards = Vec::with_capacity(cfg.users);
    let mut spending = Vec::with_capacity(cfg.users);
    let mut fraudsters = HashSet::new();
    let mut bulk_shoppers = HashSet::new();
    let mut vacation_spenders = HashSet::new();

    struct Tx {
        card: VertexId,
        merchant: VertexId,
        at: Timestamp,
        amount: f64,
    }
    let mut txs: Vec<Tx> = Vec::new();

    for (ui, &role) in roles.iter().enumerate() {
        let base = rng.random_range(20.0..60.0);
        let jitter = rng.random_range(2.0..10.0);
        let burst_start = rng.random_range(24..cfg.hours.saturating_sub(6).max(25));
        let bulk_level = rng.random_range(900.0..1400.0);
        let home_plaza = rng.random_range(0..plazas);

        // spending series
        let mut spend = TimeSeries::with_capacity(cfg.hours);
        let mut t = start;
        for h in 0..cfg.hours {
            let v: f64 = match role {
                1 if (burst_start..burst_start + 4).contains(&h) => {
                    1000.0 + rng.random_range(0.0..800.0)
                }
                2 => bulk_level + rng.random_range(-100.0..100.0),
                // a single big legitimate purchase: one-hour spike
                3 if h == burst_start => 2500.0 + rng.random_range(0.0..1000.0),
                _ => base + rng.random_range(-jitter..jitter),
            };
            spend.push(t, v.max(0.0)).expect("hours increase");
            t += hour;
        }

        let u = hg.add_pg_vertex(["User"], props! {"name" => format!("user-{ui}")});
        let sid = hg.add_univariate_series("spending", &spend);
        let c = hg
            .add_ts_vertex(["CreditCard"], sid)
            .expect("series exists");
        hg.add_pg_edge(u, c, ["USES"], props! {})
            .expect("vertices exist");
        users.push(u);
        cards.push(c);
        spending.push(sid);

        // transactions
        let plaza_members = |p: usize| -> Vec<VertexId> {
            let lo = p * cfg.plaza_size;
            let hi = ((p + 1) * cfg.plaza_size).min(cfg.merchants);
            merchants[lo..hi].to_vec()
        };
        match role {
            1 => {
                fraudsters.insert(ui);
                // fraud burst: 3-5 high tx to one plaza within one hour
                let plaza = plaza_members(rng.random_range(0..plazas));
                let k = rng.random_range(3..=plaza.len().clamp(3, 5));
                let at = start + hour.scale(burst_start as i64);
                for j in 0..k {
                    let m = plaza[j % plaza.len()];
                    txs.push(Tx {
                        card: c,
                        merchant: m,
                        at: at + Duration::from_mins(rng.random_range(0..50)),
                        amount: 1000.0 + rng.random_range(100.0..2000.0),
                    });
                }
                // plus some normal history
                for _ in 0..rng.random_range(3..8) {
                    txs.push(Tx {
                        card: c,
                        merchant: merchants[rng.random_range(0..cfg.merchants)],
                        at: start + hour.scale(rng.random_range(0..cfg.hours as i64)),
                        amount: rng.random_range(10.0..120.0),
                    });
                }
            }
            2 => {
                bulk_shoppers.insert(ui);
                // daily restock: high tx to the SAME home plaza, every day
                let plaza = plaza_members(home_plaza);
                let days = cfg.hours / 24;
                for d in 0..days {
                    let at = start + hour.scale((d * 24 + 9) as i64);
                    for (j, &m) in plaza.iter().enumerate().take(3) {
                        txs.push(Tx {
                            card: c,
                            merchant: m,
                            at: at + Duration::from_mins(10 * j as i64),
                            amount: 1000.0 + rng.random_range(50.0..400.0),
                        });
                    }
                }
            }
            3 => {
                vacation_spenders.insert(ui);
                // one big purchase at a single merchant (no co-location
                // run), plus ordinary history
                txs.push(Tx {
                    card: c,
                    merchant: merchants[rng.random_range(0..cfg.merchants)],
                    at: start + hour.scale(burst_start as i64),
                    amount: 2500.0 + rng.random_range(0.0..1000.0),
                });
                for _ in 0..rng.random_range(4..10) {
                    txs.push(Tx {
                        card: c,
                        merchant: merchants[rng.random_range(0..cfg.merchants)],
                        at: start + hour.scale(rng.random_range(0..cfg.hours as i64)),
                        amount: rng.random_range(5.0..250.0),
                    });
                }
            }
            _ => {
                // ordinary: scattered small tx
                for _ in 0..rng.random_range(5..15) {
                    txs.push(Tx {
                        card: c,
                        merchant: merchants[rng.random_range(0..cfg.merchants)],
                        at: start + hour.scale(rng.random_range(0..cfg.hours as i64)),
                        amount: rng.random_range(5.0..250.0),
                    });
                }
            }
        }
    }

    for tx in txs {
        hg.add_pg_edge_valid(
            tx.card,
            tx.merchant,
            ["TX"],
            props! {"amount" => tx.amount},
            Interval::from(tx.at),
        )
        .expect("vertices exist");
    }

    FraudDataset {
        hygraph: hg,
        users,
        cards,
        spending,
        merchants,
        fraudsters,
        bulk_shoppers,
        vacation_spenders,
        start,
        end: start + hour.scale(cfg.hours as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_core::ElementRef;
    use hygraph_ts::ops::anomaly;

    #[test]
    fn figure2_shape() {
        let d = figure2_instance();
        assert_eq!(d.users.len(), 3);
        assert_eq!(d.cards.len(), 3);
        assert_eq!(d.merchants.len(), 4);
        assert!(d.hygraph.validate().is_ok());
        assert_eq!(d.fraudsters, HashSet::from([0]));
        assert_eq!(d.bulk_shoppers, HashSet::from([2]));
    }

    #[test]
    fn figure2_listing2_flags_only_user1() {
        // the series-only detector story of the paper
        let d = figure2_instance();
        for (i, &sid) in d.spending.iter().enumerate() {
            let s = d
                .hygraph
                .series(sid)
                .unwrap()
                .to_univariate("spending")
                .unwrap();
            let flagged = !anomaly::zscore(&s, 3.0).is_empty();
            assert_eq!(
                flagged,
                i == 0,
                "only User 1 has a spending burst (user index {i})"
            );
        }
    }

    #[test]
    fn figure2_cards_are_ts_vertices() {
        let d = figure2_instance();
        for &c in &d.cards {
            assert_eq!(
                d.hygraph.vertex_kind(c).unwrap(),
                hygraph_core::ElementKind::Ts
            );
            assert!(!d.hygraph.delta(ElementRef::Vertex(c)).unwrap().is_empty());
        }
    }

    #[test]
    fn scalable_deterministic() {
        let cfg = FraudConfig {
            users: 50,
            merchants: 20,
            hours: 24 * 3,
            ..Default::default()
        };
        let a = generate(cfg);
        let b = generate(cfg);
        assert_eq!(a.fraudsters, b.fraudsters);
        assert_eq!(a.hygraph.edge_count(), b.hygraph.edge_count());
    }

    #[test]
    fn scalable_ground_truth_rates() {
        let cfg = FraudConfig {
            users: 100,
            ..Default::default()
        };
        let d = generate(cfg);
        assert_eq!(d.fraudsters.len(), 5);
        assert_eq!(d.bulk_shoppers.len(), 5);
        assert!(d.fraudsters.is_disjoint(&d.bulk_shoppers));
        assert!(d.hygraph.validate().is_ok());
    }

    #[test]
    fn fraudsters_have_detectable_bursts() {
        let cfg = FraudConfig {
            users: 60,
            hours: 24 * 7,
            ..Default::default()
        };
        let d = generate(cfg);
        for &ui in &d.fraudsters {
            let s = d
                .hygraph
                .series(d.spending[ui])
                .unwrap()
                .to_univariate("spending")
                .unwrap();
            assert!(
                !anomaly::zscore(&s, 3.0).is_empty(),
                "fraudster {ui} should show a burst"
            );
        }
        // bulk shoppers have flat (high) series: no burst
        for &ui in &d.bulk_shoppers {
            let s = d
                .hygraph
                .series(d.spending[ui])
                .unwrap()
                .to_univariate("spending")
                .unwrap();
            assert!(
                anomaly::zscore(&s, 3.0).is_empty(),
                "bulk shopper {ui} should be smooth"
            );
        }
    }

    #[test]
    fn merchants_form_plazas() {
        let d = generate(FraudConfig {
            users: 10,
            merchants: 15,
            plaza_size: 5,
            ..Default::default()
        });
        // merchants in the same plaza are within ~1 km; different plazas far apart
        let pos: Vec<(f64, f64, i64)> = d
            .merchants
            .iter()
            .map(|&m| {
                let p = d.hygraph.props(ElementRef::Vertex(m)).unwrap();
                (
                    p.static_value("x").unwrap().as_f64().unwrap(),
                    p.static_value("y").unwrap().as_f64().unwrap(),
                    p.static_value("plaza").unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                let dist = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
                if pos[i].2 == pos[j].2 {
                    assert!(dist < 1_000.0, "same plaza within 1km");
                } else {
                    assert!(dist > 5_000.0, "different plazas far apart");
                }
            }
        }
    }
}
