//! Bike-sharing dataset generator (the paper's Table-1 workload).
//!
//! Mirrors the shape of the published NYC bike-sharing dataset \[52\]:
//! a station network (vertices) connected by trip relations (edges, with
//! trip counts), where every station carries long, regular time series —
//! bike availability and free docks — sampled every few minutes over
//! weeks, with daily and weekly seasonality plus noise.

use hygraph_core::{ElementRef, HyGraph};
use hygraph_graph::TemporalGraph;
use hygraph_ts::TimeSeries;
use hygraph_types::{props, Duration, SeriesId, Timestamp, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the bike dataset.
#[derive(Clone, Copy, Debug)]
pub struct BikeConfig {
    /// Number of stations.
    pub stations: usize,
    /// Number of days of time-series history.
    pub days: usize,
    /// Sampling interval of the series.
    pub tick: Duration,
    /// Average trip-relation out-degree per station.
    pub avg_degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BikeConfig {
    fn default() -> Self {
        Self {
            stations: 100,
            days: 30,
            tick: Duration::from_mins(5),
            avg_degree: 6,
            seed: 42,
        }
    }
}

/// The generated dataset, exposed both as raw pieces (graph + series,
/// for the storage backends) and as a unified HyGraph instance.
pub struct BikeDataset {
    /// Station/trip topology. Station vertices are labelled `Station`
    /// and carry `name`, `capacity`, `lat`, `lon`; trip edges are
    /// labelled `TRIP` and carry `trips` (count).
    pub graph: TemporalGraph,
    /// Per-station availability series, parallel to `stations`.
    pub availability: Vec<TimeSeries>,
    /// Per-station free-dock series, parallel to `stations`.
    pub docks: Vec<TimeSeries>,
    /// Station vertex ids in generation order.
    pub stations: Vec<VertexId>,
    /// First timestamp of the series.
    pub start: Timestamp,
    /// One past the last timestamp.
    pub end: Timestamp,
    /// Sampling interval.
    pub tick: Duration,
}

impl BikeDataset {
    /// Points per station series.
    pub fn points_per_station(&self) -> usize {
        self.availability.first().map_or(0, TimeSeries::len)
    }

    /// Builds the unified HyGraph: stations as pg-vertices with their
    /// series attached as series-valued properties (`availability`,
    /// `docks`), trips as pg-edges.
    pub fn to_hygraph(&self) -> HyGraph {
        let mut hg = hygraph_core::interfaces::import::graph_to_hygraph(&self.graph);
        for (i, &station) in self.stations.iter().enumerate() {
            let a = hg.add_univariate_series("availability", &self.availability[i]);
            let d = hg.add_univariate_series("docks", &self.docks[i]);
            hg.set_property(ElementRef::Vertex(station), "availability", a)
                .expect("station exists");
            hg.set_property(ElementRef::Vertex(station), "docks", d)
                .expect("station exists");
        }
        hg
    }

    /// The availability series id attached to `station` inside a HyGraph
    /// built by [`Self::to_hygraph`].
    pub fn availability_series(hg: &HyGraph, station: VertexId) -> Option<SeriesId> {
        hg.props(ElementRef::Vertex(station))
            .ok()?
            .series_value("availability")
    }
}

/// Generates the dataset.
pub fn generate(cfg: BikeConfig) -> BikeDataset {
    assert!(cfg.stations > 0, "need at least one station");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = TemporalGraph::with_capacity(cfg.stations, cfg.stations * cfg.avg_degree);
    let start = Timestamp::from_millis(0);

    // stations on a jittered grid (Manhattan-ish)
    let mut stations = Vec::with_capacity(cfg.stations);
    for i in 0..cfg.stations {
        let lat = 40.70 + (i / 10) as f64 * 0.005 + rng.random_range(-0.001..0.001);
        let lon = -74.02 + (i % 10) as f64 * 0.005 + rng.random_range(-0.001..0.001);
        let capacity = rng.random_range(15..60i64);
        let v = graph.add_vertex(
            ["Station"],
            props! {
                "name" => format!("station-{i}"),
                "capacity" => capacity,
                "lat" => lat,
                "lon" => lon
            },
        );
        stations.push(v);
    }

    // trip edges: popularity-skewed destinations
    for (i, &src) in stations.iter().enumerate() {
        let degree = rng.random_range(1..=cfg.avg_degree * 2);
        for _ in 0..degree {
            // skew towards low-index ("downtown") stations
            let j = (rng.random_range(0.0f64..1.0).powi(2) * cfg.stations as f64) as usize
                % cfg.stations;
            if j == i {
                continue;
            }
            let trips = rng.random_range(1..500i64);
            graph
                .add_edge(src, stations[j], ["TRIP"], props! {"trips" => trips})
                .expect("stations exist");
        }
    }

    // per-station series: capacity-bounded availability with daily +
    // weekly seasonality, station-specific phase, and noise
    let ticks_per_day = (Duration::from_days(1).millis() / cfg.tick.millis()) as usize;
    let n = ticks_per_day * cfg.days;
    let mut availability = Vec::with_capacity(cfg.stations);
    let mut docks = Vec::with_capacity(cfg.stations);
    for (i, &station) in stations.iter().enumerate() {
        let capacity = graph
            .vertex(station)
            .expect("station exists")
            .props
            .static_value("capacity")
            .and_then(|v| v.as_i64())
            .expect("capacity set") as f64;
        let phase = rng.random_range(0.0..std::f64::consts::TAU);
        let noise_amp = rng.random_range(0.02..0.10);
        let commuter = i % 3 == 0; // commuter stations drain in rush hours
        let mut avail = TimeSeries::with_capacity(n);
        let mut dock = TimeSeries::with_capacity(n);
        let mut t = start;
        for k in 0..n {
            let day_frac = (k % ticks_per_day) as f64 / ticks_per_day as f64;
            let week_frac = (k % (ticks_per_day * 7)) as f64 / (ticks_per_day * 7) as f64;
            let daily = ((day_frac * std::f64::consts::TAU) + phase).sin();
            let weekly = (week_frac * std::f64::consts::TAU).cos() * 0.3;
            let rush = if commuter {
                // two sharp dips around 8:30 and 17:30
                let morning = (-((day_frac - 0.354) * 40.0).powi(2)).exp();
                let evening = (-((day_frac - 0.729) * 40.0).powi(2)).exp();
                -(morning + evening) * 0.8
            } else {
                0.0
            };
            let noise = rng.random_range(-noise_amp..noise_amp);
            let frac = (0.5 + 0.35 * daily + weekly * 0.2 + rush + noise).clamp(0.0, 1.0);
            let bikes = (capacity * frac).round();
            avail.push(t, bikes).expect("ticks increase");
            dock.push(t, capacity - bikes).expect("ticks increase");
            t += cfg.tick;
        }
        availability.push(avail);
        docks.push(dock);
    }

    let end = start + cfg.tick.scale(n as i64);
    BikeDataset {
        graph,
        availability,
        docks,
        stations,
        start,
        end,
        tick: cfg.tick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::Interval;

    fn small() -> BikeConfig {
        BikeConfig {
            stations: 20,
            days: 3,
            tick: Duration::from_mins(30),
            avg_degree: 4,
            seed: 7,
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(small());
        let b = generate(small());
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.availability[0], b.availability[0]);
        assert_eq!(a.docks[5], b.docks[5]);
    }

    #[test]
    fn shape_matches_config() {
        let d = generate(small());
        assert_eq!(d.stations.len(), 20);
        assert_eq!(d.points_per_station(), 48 * 3);
        assert!(d.graph.edge_count() > 0);
        for s in &d.availability {
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn availability_within_capacity() {
        let d = generate(small());
        for (i, &station) in d.stations.iter().enumerate() {
            let cap = d
                .graph
                .vertex(station)
                .unwrap()
                .props
                .static_value("capacity")
                .unwrap()
                .as_i64()
                .unwrap() as f64;
            for (_, v) in d.availability[i].iter() {
                assert!((0.0..=cap).contains(&v), "bikes within [0, capacity]");
            }
            // availability + docks == capacity at every tick
            for ((_, a), (_, free)) in d.availability[i].iter().zip(d.docks[i].iter()) {
                assert!((a + free - cap).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn daily_seasonality_present() {
        let cfg = BikeConfig { days: 7, ..small() };
        let d = generate(cfg);
        let ticks_per_day = 48;
        // average lag-1-day autocorrelation across stations should be high
        let mut rs = Vec::new();
        for s in &d.availability {
            if let Some(r) = hygraph_ts::ops::stats::autocorrelation(s.values(), ticks_per_day) {
                rs.push(r);
            }
        }
        let mean_r = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!(mean_r > 0.5, "daily pattern should repeat, got {mean_r}");
    }

    #[test]
    fn hygraph_roundtrip() {
        let d = generate(small());
        let hg = d.to_hygraph();
        assert_eq!(hg.vertex_count(), 20);
        assert_eq!(hg.series_count(), 40, "availability + docks per station");
        assert!(hg.validate().is_ok());
        let sid = BikeDataset::availability_series(&hg, d.stations[3]).unwrap();
        let s = hg.series(sid).unwrap();
        assert_eq!(s.len(), d.points_per_station());
        // series content identical to the raw dataset
        assert_eq!(
            s.to_univariate("availability")
                .unwrap()
                .slice(&Interval::ALL),
            d.availability[3]
        );
    }
}
