//! Process-free fault-injection suite: every store's recovery is exact.
//!
//! The harness commits a workload one mutation at a time, snapshotting
//! the WAL directory and the canonical state bytes after every commit.
//! It then simulates crashes —
//!
//! * restore the directory to any commit point (clean crash),
//! * truncate the tail segment at *every* byte (torn append),
//! * flip every byte of the tail segment (damaged sector),
//! * tear or complete a checkpoint mid-write —
//!
//! and asserts that recovery never panics and never lands on a silently
//! wrong state: it recovers a state **bit-identical** to one of the
//! committed states (for clean crashes: exactly the state at that
//! commit), or — when damage makes the log look like another store's —
//! refuses loudly without touching the directory.

use hygraph_core::ElementRef;
use hygraph_persist::fault::{restore_dir, scratch_dir, snapshot_dir, truncate_file};
use hygraph_persist::wal::list_segments;
use hygraph_persist::{
    Durable, DurableStore, HgMutation, PersistConfig, StoreMutation, TsMutation,
};
use hygraph_storage::{AllInGraphStore, PolyglotStore};
use hygraph_ts::TsStore;
use hygraph_types::{
    Interval, Label, PropertyMap, PropertyValue, SeriesId, Timestamp, Value, VertexId,
};

/// Small segments so even tiny workloads rotate; manual checkpoints
/// only, so the scenarios control exactly when snapshots happen.
/// Installed identically from every test (the config is process-wide).
fn configure() {
    PersistConfig::new()
        .segment_bytes(512)
        .checkpoint_every(0)
        .install();
}

struct Suite {
    dir: std::path::PathBuf,
    /// `goldens[i]` = canonical state bytes after `i` commits.
    goldens: Vec<Vec<u8>>,
    /// `snapshots[i]` = the WAL directory after `i` commits.
    snapshots: Vec<Vec<(String, Vec<u8>)>>,
}

fn run_workload<S: Durable>(tag: &str, mutations: &[S::Mutation], checkpoint_at: &[usize]) -> Suite
where
    S::Mutation: Clone,
{
    configure();
    let dir = scratch_dir(tag);
    let mut store: DurableStore<S> = DurableStore::open(&dir).expect("open fresh");
    let mut goldens = vec![store.state_bytes()];
    let mut snapshots = vec![snapshot_dir(&dir).expect("snapshot")];
    for (i, m) in mutations.iter().enumerate() {
        store.commit(m.clone()).expect("commit");
        if checkpoint_at.contains(&i) {
            store.checkpoint().expect("checkpoint");
        }
        goldens.push(store.state_bytes());
        snapshots.push(snapshot_dir(&dir).expect("snapshot"));
    }
    store.close().expect("close");
    Suite {
        dir,
        goldens,
        snapshots,
    }
}

fn recovered_state<S: Durable>(dir: &std::path::Path) -> Vec<u8> {
    let store: DurableStore<S> = DurableStore::open(dir).expect("recovery must not fail");
    store.state_bytes()
}

fn assert_is_committed_state(recovered: &[u8], goldens: &[Vec<u8>], context: &str) {
    assert!(
        goldens.iter().any(|g| g.as_slice() == recovered),
        "{context}: recovered state matches no committed state"
    );
}

fn fault_suite<S: Durable>(tag: &str, mutations: Vec<S::Mutation>, checkpoint_at: &[usize])
where
    S::Mutation: Clone,
{
    let suite = run_workload::<S>(tag, &mutations, checkpoint_at);
    let Suite {
        dir,
        goldens,
        snapshots,
    } = &suite;

    // 1. Clean crash after every single commit: recovery is *exactly*
    //    the state at that commit, bit for bit.
    for (i, snap) in snapshots.iter().enumerate() {
        restore_dir(dir, snap).expect("restore");
        let recovered = recovered_state::<S>(dir);
        assert_eq!(
            recovered, goldens[i],
            "clean crash after commit {i}: recovery not bit-identical"
        );
    }

    // 2. Torn append: truncate the tail segment at every byte. Recovery
    //    must land on some committed prefix, never error, never invent
    //    state.
    let last = snapshots.last().expect("at least the empty snapshot");
    restore_dir(dir, last).expect("restore");
    let segments = list_segments(dir).expect("list");
    let (_, tail) = segments.last().expect("workload produced segments").clone();
    let tail_name = tail.file_name().unwrap().to_string_lossy().into_owned();
    let tail_len = last
        .iter()
        .find(|(n, _)| *n == tail_name)
        .map(|(_, c)| c.len() as u64)
        .expect("tail segment in snapshot");
    for cut in 0..tail_len {
        restore_dir(dir, last).expect("restore");
        truncate_file(&tail, cut).expect("truncate");
        let recovered = recovered_state::<S>(dir);
        assert_is_committed_state(&recovered, goldens, &format!("torn at byte {cut}"));
    }

    // 3. Damaged sector: flip every byte of the tail segment. Recovery
    //    lands on a committed state — except a flip inside the header's
    //    store tag (bytes 5..9), which makes the segment look like
    //    another store's and must be refused loudly instead of deleted.
    for off in 0..tail_len {
        restore_dir(dir, last).expect("restore");
        hygraph_persist::fault::flip_byte(&tail, off).expect("flip");
        match DurableStore::<S>::open(dir) {
            Ok(store) => {
                assert_is_committed_state(&store.state_bytes(), goldens, &format!("flip at {off}"))
            }
            Err(e) => assert!(
                (5..9).contains(&(off as usize)),
                "flip at {off} refused unexpectedly: {e}"
            ),
        }
    }

    // 4. Crash *during* checkpoint write: the torn checkpoint must be
    //    ignored and the pre-checkpoint state recovered exactly.
    restore_dir(dir, last).expect("restore");
    let pre = snapshot_dir(dir).expect("snapshot");
    {
        let mut store: DurableStore<S> = DurableStore::open(dir).expect("open");
        store.checkpoint().expect("checkpoint");
    }
    let post = snapshot_dir(dir).expect("snapshot");
    let (ck_name, ck_bytes) = post
        .iter()
        .filter(|(n, _)| n.starts_with("ckpt-"))
        .max_by(|a, b| a.0.cmp(&b.0))
        .expect("checkpoint written")
        .clone();
    for torn_len in [0usize, 5, ck_bytes.len() / 2, ck_bytes.len() - 1] {
        restore_dir(dir, &pre).expect("restore");
        std::fs::write(dir.join(&ck_name), &ck_bytes[..torn_len]).expect("write torn ckpt");
        let recovered = recovered_state::<S>(dir);
        assert_eq!(
            recovered,
            *goldens.last().unwrap(),
            "mid-checkpoint crash (torn at {torn_len}): recovery not bit-identical"
        );
    }

    // 5. Crash *between* checkpoint write and segment purge: the intact
    //    new checkpoint plus the stale segments must recover exactly.
    restore_dir(dir, &pre).expect("restore");
    std::fs::write(dir.join(&ck_name), &ck_bytes).expect("write intact ckpt");
    let recovered = recovered_state::<S>(dir);
    assert_eq!(
        recovered,
        *goldens.last().unwrap(),
        "crash between checkpoint and purge: recovery not bit-identical"
    );
    // ... and the stale artifacts were cleaned up: reopening once more
    // replays nothing and still matches.
    let recovered = recovered_state::<S>(dir);
    assert_eq!(recovered, *goldens.last().unwrap());

    std::fs::remove_dir_all(dir).ok();
}

fn ts(i: i64) -> Timestamp {
    Timestamp::from_millis(i * 60_000)
}

#[test]
fn ts_store_recovery_is_exact_under_faults() {
    let s0 = SeriesId::new(0);
    let s1 = SeriesId::new(1);
    let mut ops = vec![TsMutation::CreateSeries(s0), TsMutation::CreateSeries(s1)];
    for i in 0..25 {
        ops.push(TsMutation::Insert(s0, ts(i), i as f64 * 0.5));
        if i % 2 == 0 {
            ops.push(TsMutation::Insert(s1, ts(i), 100.0 - i as f64));
        }
    }
    ops.push(TsMutation::RetainFrom(s0, ts(5)));
    ops.push(TsMutation::DropSeries(s1));
    fault_suite::<TsStore>("faults-ts", ops, &[20]);
}

fn station_workload() -> Vec<StoreMutation> {
    let station = |name: &str| StoreMutation::AddStation {
        labels: vec![Label::new("Station")],
        props: {
            let mut p = PropertyMap::new();
            p.set("name", Value::Str(name.into()));
            p
        },
    };
    let mut ops = vec![station("a"), station("b"), station("c")];
    ops.push(StoreMutation::AddTrip {
        src: VertexId::new(0),
        dst: VertexId::new(1),
        labels: vec![Label::new("TRIP")],
        props: PropertyMap::new(),
    });
    ops.push(StoreMutation::AddTrip {
        src: VertexId::new(2),
        dst: VertexId::new(0),
        labels: vec![Label::new("TRIP")],
        props: PropertyMap::new(),
    });
    for i in 0..20 {
        ops.push(StoreMutation::Observe {
            station: VertexId::new((i % 3) as u64),
            t: ts(i),
            value: (i * i) as f64 * 0.25,
        });
    }
    ops
}

#[test]
fn all_in_graph_recovery_is_exact_under_faults() {
    fault_suite::<AllInGraphStore>("faults-aig", station_workload(), &[12]);
}

#[test]
fn polyglot_recovery_is_exact_under_faults() {
    fault_suite::<PolyglotStore>("faults-poly", station_workload(), &[12]);
}

#[test]
fn hygraph_recovery_is_exact_under_faults() {
    let mut ops = vec![
        HgMutation::AddSeries {
            names: vec!["availability".into()],
            rows: vec![(ts(0), vec![10.0])],
        },
        HgMutation::AddTsVertex {
            labels: vec![Label::new("Station")],
            series: SeriesId::new(0),
        },
        HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: PropertyMap::new(),
            validity: Interval::ALL,
        },
        HgMutation::AddPgVertex {
            labels: vec![Label::new("User")],
            props: PropertyMap::new(),
            validity: Interval::ALL,
        },
        HgMutation::AddPgEdge {
            src: VertexId::new(1),
            dst: VertexId::new(2),
            labels: vec![Label::new("knows")],
            props: PropertyMap::new(),
            validity: Interval::ALL,
        },
        HgMutation::AddTsEdge {
            src: VertexId::new(1),
            dst: VertexId::new(0),
            labels: vec![Label::new("observes")],
            series: SeriesId::new(0),
        },
        HgMutation::SetProperty {
            el: ElementRef::Vertex(VertexId::new(1)),
            key: "age".into(),
            value: PropertyValue::Static(Value::Int(44)),
        },
        HgMutation::CreateSubgraph {
            labels: vec![Label::new("Community")],
            props: PropertyMap::new(),
            validity: Interval::ALL,
        },
        HgMutation::AddSubgraphVertex {
            s: hygraph_types::SubgraphId::new(0),
            v: VertexId::new(1),
            during: Interval::ALL,
        },
        HgMutation::CloseEdge {
            e: hygraph_types::EdgeId::new(0),
            t: ts(40),
        },
    ];
    for i in 1..15 {
        ops.push(HgMutation::Append {
            series: SeriesId::new(0),
            t: ts(i),
            row: vec![10.0 - i as f64 * 0.1],
        });
    }
    fault_suite::<hygraph_core::HyGraph>("faults-hg", ops, &[8]);
}

/// Re-checkpointing a quiescent store (periodic checkpointer ticking
/// with no traffic, or an explicit checkpoint at shutdown right after
/// an auto-checkpoint) must never endanger the — after purge, only —
/// intact checkpoint: it is a no-op, and even a crash mid-rewrite
/// leaves the old snapshot loadable.
#[test]
fn quiescent_recheckpoint_never_endangers_the_only_checkpoint() {
    configure();
    let dir = scratch_dir("faults-quiesce");
    let mut store: DurableStore<PolyglotStore> = DurableStore::open(&dir).expect("open fresh");
    for m in station_workload() {
        store.commit(m).expect("commit");
    }
    store.checkpoint().expect("checkpoint");
    let golden = store.state_bytes();
    let after_first = snapshot_dir(&dir).expect("snapshot");
    // a second checkpoint with nothing new to capture changes no bytes
    store.checkpoint().expect("re-checkpoint");
    assert_eq!(
        snapshot_dir(&dir).expect("snapshot"),
        after_first,
        "quiescent checkpoint rewrote on-disk state"
    );
    store.close().expect("close");
    // a crash mid-rewrite of the same checkpoint leaves only a torn
    // .tmp sibling, which must not shadow the intact snapshot
    let ck_name = after_first
        .iter()
        .map(|(n, _)| n.clone())
        .find(|n| n.starts_with("ckpt-"))
        .expect("checkpoint on disk");
    std::fs::write(dir.join(format!("{ck_name}.tmp")), b"HGCK1torn").expect("write torn tmp");
    let recovered = recovered_state::<PolyglotStore>(&dir);
    assert_eq!(
        recovered, golden,
        "crashed quiescent re-checkpoint lost committed state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The bulk-load-then-go-durable path: `DurableStore::create` seeds the
/// log with a full checkpoint of a dataset-loaded store, incremental
/// commits ride the WAL, and an unclean drop recovers bit-exactly.
#[test]
fn create_from_bulk_load_then_crash() {
    configure();
    let dataset = hygraph_datagen::bike::generate(hygraph_datagen::bike::BikeConfig {
        stations: 5,
        days: 1,
        tick: hygraph_types::Duration::from_mins(60),
        avg_degree: 2,
        seed: 7,
    });
    let dir = scratch_dir("faults-create");
    let golden = {
        let loaded = PolyglotStore::load(&dataset);
        let mut store = DurableStore::create(&dir, loaded).expect("create");
        let station = store.get().stations()[0];
        for i in 0..10 {
            store
                .commit(StoreMutation::Observe {
                    station,
                    t: Timestamp::from_millis(i * 1_000_000_000),
                    value: i as f64,
                })
                .expect("observe");
        }
        store.state_bytes()
        // dropped without close — commits are already durable
    };
    let recovered = recovered_state::<PolyglotStore>(&dir);
    assert_eq!(recovered, golden, "post-crash recovery not bit-identical");
    // creating again over a non-empty log is refused
    assert!(DurableStore::create(&dir, PolyglotStore::new()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
