//! Integration suite for the hash-sharded store: equivalence with the
//! single-WAL engine, CSN-merged crash recovery (contiguous-prefix
//! discard of orphaned frames), legacy-layout migration (the PR 8-era
//! single-WAL fixture), layout-mismatch refusal, and re-sharding.

use hygraph_core::HyGraph;
use hygraph_persist::fault::{restore_dir, scratch_dir, snapshot_dir};
use hygraph_persist::{
    Durable, DurableStore, HgMutation, PersistConfig, RecoveryObserver, ShardedStore, TsMutation,
};
use hygraph_ts::TsStore;
use hygraph_types::{HyGraphError, Interval, Label, PropertyMap, SeriesId, Timestamp};

/// Small segments so tiny workloads rotate; manual checkpoints only, so
/// the scenarios control exactly when snapshots happen. Process-wide,
/// installed identically from every test.
fn configure() {
    PersistConfig::new()
        .segment_bytes(512)
        .checkpoint_every(0)
        .install();
}

fn ts(n: i64) -> Timestamp {
    Timestamp::from_millis(n)
}

/// A HyGraph workload that exercises both affinity-routed mutations
/// (appends, ts elements) and CSN-spread structural ones.
fn hg_workload() -> Vec<HgMutation> {
    let validity = Interval::new(ts(0), ts(1_000));
    let mut muts = Vec::new();
    for i in 0..4 {
        muts.push(HgMutation::AddSeries {
            names: vec![format!("var{i}")],
            rows: vec![(ts(0), vec![i as f64])],
        });
    }
    for i in 0..4u64 {
        muts.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Sensor")],
            series: SeriesId::new(i),
        });
    }
    muts.push(HgMutation::AddPgVertex {
        labels: vec![Label::new("Room")],
        props: PropertyMap::new(),
        validity,
    });
    for i in 0..4u64 {
        for k in 1..6 {
            muts.push(HgMutation::Append {
                series: SeriesId::new(i),
                t: ts(k * 10),
                row: vec![(i * 100 + k as u64) as f64],
            });
        }
    }
    muts.push(HgMutation::CreateSubgraph {
        labels: vec![Label::new("Floor")],
        props: PropertyMap::new(),
        validity,
    });
    muts
}

/// The same workload through the single-WAL store and through sharded
/// stores at N = 1, 2, 4 recovers bit-identical state everywhere.
#[test]
fn sharded_state_matches_single_wal_bit_for_bit() {
    configure();
    let golden = {
        let dir = scratch_dir("shard-eq-single");
        let mut store: DurableStore<HyGraph> = DurableStore::open(&dir).unwrap();
        store.commit_batch(hg_workload()).unwrap();
        let bytes = store.state_bytes();
        store.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    for shards in [1usize, 2, 4] {
        let dir = scratch_dir(&format!("shard-eq-{shards}"));
        let mut store: ShardedStore<HyGraph> = ShardedStore::open(&dir, shards).unwrap();
        store.commit_batch(hg_workload()).unwrap();
        assert_eq!(
            store.state_bytes(),
            golden,
            "{shards}-shard state diverged from the single-WAL engine"
        );
        drop(store); // crash: no clean close
        let store: ShardedStore<HyGraph> = ShardedStore::open(&dir, shards).unwrap();
        assert_eq!(
            store.state_bytes(),
            golden,
            "{shards}-shard recovery diverged from the committed state"
        );
        assert_eq!(store.shards(), shards);
        assert_eq!(store.orphans_discarded(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Committed mutations survive a crash mid-stream: checkpoints rotate
/// and purge per-shard logs, and reopen recovers the exact CSN frontier.
#[test]
fn sharded_crash_recovery_across_checkpoints() {
    configure();
    let dir = scratch_dir("shard-crash");
    let mut store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 4).unwrap();
    let muts = hg_workload();
    let mid = muts.len() / 2;
    store.commit_batch(muts[..mid].iter().cloned()).unwrap();
    store.checkpoint().unwrap();
    store.commit_batch(muts[mid..].iter().cloned()).unwrap();
    let golden = store.state_bytes();
    let next_csn = store.next_csn();
    assert_eq!(next_csn, muts.len() as u64);
    drop(store);

    let store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 4).unwrap();
    assert_eq!(store.state_bytes(), golden);
    assert_eq!(store.next_csn(), next_csn);
    assert_eq!(store.checkpoint_csn(), mid as u64);
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash between per-shard fsyncs can persist a later frame while an
/// earlier one is lost. Recovery must apply only the contiguous CSN
/// prefix, discard the orphaned tail, purge it from disk, and hand out
/// the gap CSN again without colliding.
#[test]
fn orphaned_frames_past_a_csn_gap_are_discarded_and_purged() {
    configure();
    let dir = scratch_dir("shard-orphan");
    // Two shards; series 0 routes to shard 0, series 1 to shard 1.
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    store
        .commit_batch([
            TsMutation::CreateSeries(SeriesId::new(0)),
            TsMutation::CreateSeries(SeriesId::new(1)),
        ])
        .unwrap();
    let base_state = store.state_bytes();
    let base_snapshot = snapshot_dir(&dir).unwrap();

    // csn 2 → shard 0, csn 3 → shard 1, csn 4 → shard 0.
    store
        .commit(TsMutation::Insert(SeriesId::new(0), ts(10), 1.0))
        .unwrap();
    let after_first = store.state_bytes();
    store
        .commit(TsMutation::Insert(SeriesId::new(1), ts(10), 2.0))
        .unwrap();
    store
        .commit(TsMutation::Insert(SeriesId::new(0), ts(20), 3.0))
        .unwrap();
    assert_eq!(store.next_csn(), 5);
    drop(store);

    // Simulate the partial crash: roll shard 1 back to the pre-batch
    // snapshot (its csn-3 frame vanishes) while shard 0 keeps csn 2 and
    // csn 4.
    let full_snapshot = snapshot_dir(&dir).unwrap();
    let shard1: Vec<_> = base_snapshot
        .iter()
        .filter(|(name, _)| name.contains("shard-01"))
        .cloned()
        .collect();
    let keep: Vec<_> = full_snapshot
        .iter()
        .filter(|(name, _)| !name.contains("shard-01"))
        .cloned()
        .chain(shard1)
        .collect();
    restore_dir(&dir, &keep).unwrap();

    let store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(
        store.state_bytes(),
        after_first,
        "recovery must stop at the first CSN gap"
    );
    assert_ne!(store.state_bytes(), base_state);
    assert_eq!(store.orphans_discarded(), 1, "csn 4 is an orphan");
    assert_eq!(store.next_csn(), 3, "the gap CSN is reissued");
    drop(store);

    // The orphan was physically purged: reopening is clean, and the
    // reissued CSN cannot collide with the discarded frame.
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(store.orphans_discarded(), 0);
    assert_eq!(store.state_bytes(), after_first);
    store
        .commit(TsMutation::Insert(SeriesId::new(1), ts(30), 9.0))
        .unwrap();
    drop(store);
    let store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(store.get().value_at(SeriesId::new(1), ts(30)), Some(9.0));
    assert_eq!(store.get().value_at(SeriesId::new(0), ts(20)), None);
    std::fs::remove_dir_all(&dir).ok();
}

/// The contiguity gap can sit at the *very first* frame past the
/// checkpoint: zero frames apply, so `next_csn == checkpoint_csn` and a
/// naive post-recovery checkpoint would take its quiescent no-op guard.
/// The physical purge must still run — a skipped purge leaves the
/// orphan on disk, its CSN is reissued to new acknowledged commits, and
/// the *next* recovery merges the discarded frame back in place of (or
/// colliding with) acknowledged data.
#[test]
fn orphan_purge_runs_when_gap_is_at_the_first_post_checkpoint_csn() {
    configure();
    let dir = scratch_dir("shard-orphan-first");
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    let base_snapshot = snapshot_dir(&dir).unwrap();
    // csn 0 → shard 0, csn 1 → shard 1 (series-affine routing)
    store
        .commit(TsMutation::CreateSeries(SeriesId::new(0)))
        .unwrap();
    store
        .commit(TsMutation::CreateSeries(SeriesId::new(1)))
        .unwrap();
    assert_eq!(store.next_csn(), 2);
    drop(store);

    // Crash: shard 0 loses csn 0 while shard 1 keeps csn 1 — the gap is
    // at the first post-checkpoint CSN, so recovery applies nothing.
    let full_snapshot = snapshot_dir(&dir).unwrap();
    let shard0: Vec<_> = base_snapshot
        .iter()
        .filter(|(name, _)| name.contains("shard-00"))
        .cloned()
        .collect();
    let keep: Vec<_> = full_snapshot
        .iter()
        .filter(|(name, _)| !name.contains("shard-00"))
        .cloned()
        .chain(shard0)
        .collect();
    restore_dir(&dir, &keep).unwrap();

    let store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(store.orphans_discarded(), 1, "csn 1 is an orphan");
    assert_eq!(store.next_csn(), 0, "nothing applied past the checkpoint");
    drop(store);

    // The orphan must be physically gone: a second open sees a clean
    // log, and reissued CSNs cannot resurrect the discarded frame.
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(
        store.orphans_discarded(),
        0,
        "orphan frame survived recovery on disk"
    );
    // Both new commits route to shard 1 — the stream that held the
    // orphan — reusing csn 0 and csn 1.
    store
        .commit(TsMutation::CreateSeries(SeriesId::new(3)))
        .unwrap();
    store
        .commit(TsMutation::Insert(SeriesId::new(3), ts(5), 7.0))
        .unwrap();
    drop(store);

    let store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(store.orphans_discarded(), 0);
    assert_eq!(store.next_csn(), 2);
    assert_eq!(
        store.get().value_at(SeriesId::new(3), ts(5)),
        Some(7.0),
        "acknowledged commit lost to a resurrected orphan"
    );
    // Bit-identical to a clean run of the same acknowledged commits:
    // the discarded CreateSeries(1) must not have come back.
    let golden = {
        let gdir = scratch_dir("shard-orphan-first-golden");
        let mut golden: ShardedStore<TsStore> = ShardedStore::open(&gdir, 2).unwrap();
        golden
            .commit(TsMutation::CreateSeries(SeriesId::new(3)))
            .unwrap();
        golden
            .commit(TsMutation::Insert(SeriesId::new(3), ts(5), 7.0))
            .unwrap();
        let bytes = golden.state_bytes();
        golden.close().unwrap();
        std::fs::remove_dir_all(&gdir).ok();
        bytes
    };
    assert_eq!(
        store.state_bytes(),
        golden,
        "recovered state contains traces of the discarded orphan"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-shard durable CSN frontiers track *commit* durability, not WAL
/// stream depth: an idle shard (empty stream) follows the global CSN
/// frontier instead of pinning the cross-shard watermark at zero, and a
/// shard with staged-but-unsynced frames sits at its first unsynced
/// CSN.
#[test]
fn csn_frontiers_track_durability_not_stream_depth() {
    configure();
    let dir = scratch_dir("shard-frontiers");
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    // All traffic routes to shard 0; shard 1 stays idle.
    store
        .commit(TsMutation::CreateSeries(SeriesId::new(0)))
        .unwrap();
    store
        .commit(TsMutation::Insert(SeriesId::new(0), ts(1), 1.0))
        .unwrap();
    assert_eq!(
        store.shard_csn_frontiers(),
        vec![2, 2],
        "an idle shard follows the global CSN frontier"
    );
    assert_eq!(
        store.shard_lsns()[1],
        (0, 0),
        "…even though its WAL stream is empty"
    );
    // A staged-but-unsynced frame holds its shard at the frame's CSN.
    store
        .stage(TsMutation::Insert(SeriesId::new(0), ts(2), 2.0))
        .unwrap();
    assert_eq!(store.shard_csn_frontiers(), vec![2, 3]);
    store.sync().unwrap();
    assert_eq!(store.shard_csn_frontiers(), vec![3, 3]);
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Collects the recovery stream so tests can assert observer parity.
#[derive(Default)]
struct Timeline {
    base_watermark: i64,
    replayed: Vec<u64>,
}

impl<S: Durable> RecoveryObserver<S> for Timeline {
    fn base(&mut self, watermark: i64, _state: &[u8]) {
        self.base_watermark = watermark;
    }
    fn replay(&mut self, lsn: u64, _ts: i64, _m: &S::Mutation) {
        self.replayed.push(lsn);
    }
}

/// The PR 8-era regression: a directory written by the single-WAL
/// engine must *migrate* — full replay, re-checkpoint under the sharded
/// header, old segments archived — never silently ignore the old log.
#[test]
fn legacy_single_wal_directory_migrates_with_segments_archived() {
    configure();
    let dir = scratch_dir("shard-migrate");
    // Build the PR 8-era fixture with the single-WAL engine: a
    // checkpoint mid-stream plus live segments above it.
    let golden = {
        let mut store: DurableStore<HyGraph> = DurableStore::open(&dir).unwrap();
        let muts = hg_workload();
        let mid = muts.len() / 2;
        store.commit_batch(muts[..mid].iter().cloned()).unwrap();
        store.checkpoint().unwrap();
        store.commit_batch(muts[mid..].iter().cloned()).unwrap();
        let bytes = store.state_bytes();
        store.close().unwrap();
        bytes
    };
    let legacy_segments: Vec<_> = hygraph_persist::wal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .map(|(_, p)| p.file_name().unwrap().to_owned())
        .collect();
    assert!(
        !legacy_segments.is_empty(),
        "fixture must leave live top-level segments behind"
    );

    let mut timeline = Timeline::default();
    let store: ShardedStore<HyGraph> = ShardedStore::open_observed(&dir, 4, &mut timeline).unwrap();
    assert_eq!(store.state_bytes(), golden, "migration lost state");
    assert!(
        !timeline.replayed.is_empty(),
        "migration must replay the legacy suffix through the observer"
    );
    // Old segments are archived, not ignored and not deleted.
    assert!(
        hygraph_persist::wal::list_segments(&dir)
            .unwrap()
            .is_empty(),
        "legacy segments must leave the top level"
    );
    let archive = dir.join("legacy-wal");
    for name in &legacy_segments {
        assert!(
            archive.join(name).exists(),
            "{name:?} missing from legacy-wal/"
        );
    }
    drop(store);

    // Once migrated, the directory reopens as a sharded store.
    let store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 4).unwrap();
    assert_eq!(store.state_bytes(), golden);
    std::fs::remove_dir_all(&dir).ok();
}

/// The reverse direction refuses loudly: the single-WAL engine reports
/// a typed layout error on a sharded directory and leaves it untouched.
#[test]
fn single_wal_store_refuses_sharded_directory_with_typed_error() {
    configure();
    let dir = scratch_dir("shard-refuse");
    let mut store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    store
        .commit_batch([
            TsMutation::CreateSeries(SeriesId::new(0)),
            TsMutation::Insert(SeriesId::new(0), ts(1), 4.5),
        ])
        .unwrap();
    store.close().unwrap();

    let before = snapshot_dir(&dir).unwrap();
    match DurableStore::<TsStore>::open(&dir) {
        Err(HyGraphError::ShardLayout(msg)) => {
            assert!(msg.contains("ShardedStore"), "unhelpful message: {msg}")
        }
        other => panic!("expected ShardLayout error, got {other:?}"),
    }
    assert_eq!(
        snapshot_dir(&dir).unwrap(),
        before,
        "refused open mutated the directory"
    );

    // The rightful engine still recovers everything.
    let store: ShardedStore<TsStore> = ShardedStore::open(&dir, 2).unwrap();
    assert_eq!(store.get().value_at(SeriesId::new(0), ts(1)), Some(4.5));
    std::fs::remove_dir_all(&dir).ok();
}

/// Changing `HYGRAPH_SHARDS` between runs re-shards in place: state is
/// preserved, the old generation directory is swept, and a stale
/// generation left by a crashed rebuild is ignored and removed.
#[test]
fn reopening_with_a_different_shard_count_reshards() {
    configure();
    let dir = scratch_dir("shard-reshard");
    let mut store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 2).unwrap();
    store.commit_batch(hg_workload()).unwrap();
    let golden = store.state_bytes();
    let csn = store.next_csn();
    store.close().unwrap();

    // Plant a stale generation dir, as a rebuild crashed mid-way would.
    std::fs::create_dir_all(dir.join("shards-0002").join("shard-00")).unwrap();

    let store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 4).unwrap();
    assert_eq!(store.shards(), 4);
    assert_eq!(store.state_bytes(), golden, "re-shard lost state");
    assert_eq!(
        store.next_csn(),
        csn,
        "re-shard must preserve the CSN frontier"
    );
    drop(store);

    // Old generations are swept once the new checkpoint is durable.
    let generations: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.starts_with("shards-").then_some(name)
        })
        .collect();
    assert_eq!(generations, vec!["shards-0002".to_string()]);

    // Down-sharding works too — N = 1 keeps the same bytes.
    let mut store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 1).unwrap();
    assert_eq!(store.shards(), 1);
    assert_eq!(store.state_bytes(), golden);
    store
        .commit(HgMutation::Append {
            series: SeriesId::new(0),
            t: ts(10_000),
            row: vec![42.0],
        })
        .unwrap();
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
