//! [`ShardedStore`]: a [`Durable`] state behind **per-shard WAL
//! streams** with a global commit sequence number.
//!
//! Where [`crate::durable::DurableStore`] funnels every mutation through
//! one log, the sharded store routes each frame to one of `N` WALs —
//! series-affine mutations to the shard that owns their series (so a
//! vertex range and its time series co-locate), everything else spread
//! by commit sequence number. Each shard directory is a complete,
//! self-contained [`Wal`] with its own segments, rotation, and fsync.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   ckpt-<csn>.ck            checkpoint: shard meta ++ full state
//!   shards-<epoch>/
//!     shard-00/wal-*.seg     per-shard segmented WAL streams
//!     shard-01/wal-*.seg
//!     ...
//!   legacy-wal/              archived pre-shard segments (migration)
//! ```
//!
//! The checkpoint payload leads with a shard-meta header (magic
//! [`SHARD_META_MAGIC`], generation epoch, shard count, per-shard next
//! LSNs) so a checkpoint fully describes which generation of shard
//! directories is live — directory swaps (migration, re-sharding) are
//! committed by the checkpoint rename, arc-swap style, and stale
//! generations are swept on the next open.
//!
//! # Commit sequence numbers
//!
//! Every frame record carries the **CSN** (global commit sequence
//! number) it was staged at, ahead of the mutation bytes. Within one
//! shard stream CSNs are strictly increasing; across shards they
//! interleave. Recovery re-merges the streams by CSN and applies the
//! **longest contiguous prefix** above the checkpoint watermark: a
//! crash between per-shard fsyncs can persist frames `{5, 7}` but lose
//! `6`, and replaying `7` over a state missing `6` would be silently
//! wrong, so frames after the first gap are discarded and physically
//! purged (via an immediate post-recovery checkpoint) — exactly the
//! committed-prefix contract the single-WAL store gives for a torn
//! batch tail. Since a batch is acknowledged only after *all* involved
//! shards fsynced, an acknowledged batch can never land after a gap.
//!
//! # Migration from single-WAL layouts
//!
//! Pointing a sharded store at a legacy [`DurableStore`] directory (the
//! pre-shard layout: one `wal-*.seg` stream at top level) performs a
//! full legacy recovery, re-checkpoints the state under the sharded
//! meta header, and archives the old segments into `legacy-wal/` —
//! never silently ignoring them. The reverse direction refuses loudly:
//! [`DurableStore`] returns [`HyGraphError::ShardLayout`] when it finds
//! a sharded checkpoint. Re-opening with a different `HYGRAPH_SHARDS`
//! re-shards the same way (recover with the recorded count, rewrite
//! under a fresh generation).

use crate::checkpoint;
use crate::config;
use crate::durable::{Durable, DurableStore, RecoveryObserver};
use crate::wal::Wal;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::shard::ShardRouter;
use hygraph_types::{HyGraphError, Result};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Magic prefix of a sharded checkpoint payload (ahead of the state
/// bytes). Its presence is how the two store engines tell layouts
/// apart.
pub const SHARD_META_MAGIC: &[u8; 4] = b"HGSH";

/// Routing affinity of a mutation vocabulary: which shard a logged
/// operation is pinned to, if any.
///
/// Implementors return `Some(shard)` for mutations with data affinity
/// (an append belongs with its series) and `None` for the rest, which
/// the store spreads across shards by CSN. Routing must be a pure
/// function of the mutation and the router: frame placement on disk is
/// the only routing record, recovery never recomputes it.
pub trait ShardRouted {
    /// The shard this mutation is pinned to under `router`, or `None`
    /// when any shard will do.
    fn shard_affinity(&self, router: &ShardRouter) -> Option<usize>;
}

fn generation_dir(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("shards-{epoch:04}"))
}

fn shard_dir(dir: &Path, epoch: u64, idx: usize) -> PathBuf {
    generation_dir(dir, epoch).join(format!("shard-{idx:02}"))
}

/// Shard meta decoded from (or encoded into) a checkpoint payload
/// prefix.
struct ShardMeta {
    epoch: u64,
    next_lsns: Vec<u64>,
}

fn encode_meta(meta: &ShardMeta, w: &mut ByteWriter) {
    w.raw(SHARD_META_MAGIC);
    w.u64(meta.epoch);
    w.len_of(meta.next_lsns.len());
    for &lsn in &meta.next_lsns {
        w.u64(lsn);
    }
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<ShardMeta> {
    if r.raw(4)? != SHARD_META_MAGIC {
        return Err(HyGraphError::corrupt("bad shard meta magic"));
    }
    let epoch = r.u64()?;
    let n = r.len_of()?;
    if n == 0 || n > hygraph_types::shard::MAX_SHARDS {
        return Err(HyGraphError::corrupt(format!(
            "shard meta names {n} shards, outside 1..={}",
            hygraph_types::shard::MAX_SHARDS
        )));
    }
    let mut next_lsns = Vec::with_capacity(n);
    for _ in 0..n {
        next_lsns.push(r.u64()?);
    }
    Ok(ShardMeta { epoch, next_lsns })
}

fn encode_record<S: Durable>(csn: u64, m: &S::Mutation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(csn);
    S::encode_mutation(m, &mut w);
    w.into_bytes()
}

fn decode_record<S: Durable>(record: &[u8]) -> Result<(u64, S::Mutation)> {
    let mut r = ByteReader::new(record);
    let csn = r.u64()?;
    let m = S::decode_mutation(&mut r)?;
    r.expect_exhausted()?;
    Ok((csn, m))
}

/// A [`Durable`] state behind hash-sharded per-shard WAL streams with
/// CSN-merged recovery. See the module docs for the protocol.
///
/// The commit API mirrors [`DurableStore`] — stage / commit /
/// commit_batch / sync / checkpoint — returning CSNs where the single
/// store returns LSNs, so the engine can drive either through the same
/// motions.
pub struct ShardedStore<S: Durable>
where
    S::Mutation: ShardRouted,
{
    state: S,
    dir: PathBuf,
    router: ShardRouter,
    epoch: u64,
    wals: Vec<Wal>,
    /// Shards with appends staged since their last fsync.
    dirty: Vec<bool>,
    /// First CSN staged to each shard since its last fsync — only
    /// meaningful while `dirty[shard]`. Feeds the per-shard durable
    /// *CSN* frontiers (see [`ShardedStore::shard_csn_frontiers`]).
    pending_csn: Vec<u64>,
    /// Global commit sequence number of the next staged frame.
    next_csn: u64,
    /// CSN watermark of the newest durable checkpoint.
    checkpoint_csn: u64,
    checkpoint_on_disk: bool,
    since_checkpoint: u64,
    commit_ts: i64,
    /// Frames discarded by the last recovery's contiguous-prefix rule
    /// (a crash tail between per-shard fsyncs); 0 after a clean open.
    orphans_discarded: u64,
}

impl<S: Durable> ShardedStore<S>
where
    S::Mutation: ShardRouted,
{
    /// Opens (or initialises) a sharded store over `shards` partitions
    /// in `dir`, recovering committed state after a crash: newest
    /// intact checkpoint + the longest contiguous CSN prefix merged
    /// from every shard stream. Legacy single-WAL directories are
    /// migrated (old segments archived into `legacy-wal/`); a recorded
    /// shard count different from `shards` triggers a re-shard under a
    /// fresh directory generation.
    pub fn open(dir: impl Into<PathBuf>, shards: usize) -> Result<Self> {
        Self::open_impl(dir.into(), shards, None)
    }

    /// [`ShardedStore::open`], reporting the recovered base state and
    /// every replayed frame (in CSN order, with commit timestamps) to
    /// `observer` — the same seeding hook as
    /// [`DurableStore::open_observed`], with CSNs in the LSN seat.
    pub fn open_observed(
        dir: impl Into<PathBuf>,
        shards: usize,
        observer: &mut dyn RecoveryObserver<S>,
    ) -> Result<Self> {
        Self::open_impl(dir.into(), shards, Some(observer))
    }

    fn open_impl(
        dir: PathBuf,
        shards: usize,
        mut observer: Option<&mut dyn RecoveryObserver<S>>,
    ) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let router = ShardRouter::new(shards);
        let shards = router.shards();
        let segment_bytes = config::configured_segment_bytes();

        let checkpoint = checkpoint::load_latest(&dir, S::STORE_TAG)?;
        let legacy_segments = crate::wal::list_segments(&dir)?;
        let is_sharded_ckpt = matches!(
            &checkpoint,
            Some((_, _, payload)) if payload.starts_with(SHARD_META_MAGIC)
        );

        if !is_sharded_ckpt && (checkpoint.is_some() || !legacy_segments.is_empty()) {
            // Legacy single-WAL layout: migrate rather than silently
            // ignore the old segments. A full legacy recovery replays
            // them (feeding the observer), then the state is
            // re-checkpointed under the sharded meta header and the old
            // segments are archived.
            drop(checkpoint);
            let legacy = match observer.as_deref_mut() {
                Some(o) => DurableStore::<S>::open_observed(&dir, o)?,
                None => DurableStore::<S>::open(&dir)?,
            };
            let csn = legacy.next_lsn();
            let commit_ts = legacy.history_watermark();
            let state = legacy.into_state()?;
            let store = Self::rebuild(dir, router, 1, state, csn, commit_ts, segment_bytes)?;
            store.sweep_stale()?;
            return Ok(store);
        }

        let Some((ckpt_csn, watermark, payload)) = checkpoint else {
            // Fresh directory: pin the empty state under epoch 1 so
            // recovery always has a checkpoint to start from.
            if let Some(o) = observer.as_deref_mut() {
                let state = S::fresh();
                let mut w = ByteWriter::new();
                state.encode_state(&mut w);
                o.base(0, &w.into_bytes());
            }
            let store = Self::rebuild(dir, router, 1, S::fresh(), 0, 0, segment_bytes)?;
            store.sweep_stale()?;
            return Ok(store);
        };

        let mut r = ByteReader::new(&payload);
        let meta = decode_meta(&mut r)?;
        let state = S::decode_state(&mut r)?;
        r.expect_exhausted()?;
        checkpoint::purge_newer_than(&dir, ckpt_csn)?;

        if meta.next_lsns.len() != shards {
            // Shard count changed between runs: recover fully with the
            // recorded count, then rewrite under a fresh generation.
            let recovered = Self::recover_generation(
                &dir,
                ShardRouter::new(meta.next_lsns.len()),
                &meta,
                ckpt_csn,
                watermark,
                state,
                segment_bytes,
                observer,
            )?;
            let store = Self::rebuild(
                dir,
                router,
                meta.epoch + 1,
                recovered.state,
                recovered.next_csn,
                recovered.commit_ts,
                segment_bytes,
            )?;
            store.sweep_stale()?;
            return Ok(store);
        }

        let recovered = Self::recover_generation(
            &dir,
            router,
            &meta,
            ckpt_csn,
            watermark,
            state,
            segment_bytes,
            observer,
        )?;
        let mut store = Self {
            state: recovered.state,
            dir,
            router,
            epoch: meta.epoch,
            wals: recovered.wals,
            dirty: vec![false; shards],
            pending_csn: vec![0; shards],
            next_csn: recovered.next_csn,
            checkpoint_csn: ckpt_csn,
            checkpoint_on_disk: true,
            since_checkpoint: recovered.next_csn - ckpt_csn,
            commit_ts: recovered.commit_ts,
            orphans_discarded: recovered.orphans,
        };
        if recovered.orphans > 0 {
            // Orphaned frames (past the contiguity gap) are still on
            // disk; a fresh CSN would collide with theirs. Checkpointing
            // right away rotates and purges every shard stream, erasing
            // them before any new append can reuse a CSN. The purge must
            // happen even when the gap sat at the very first
            // post-checkpoint CSN (zero frames applied, `next_csn ==
            // checkpoint_csn`): clearing `checkpoint_on_disk` bypasses
            // the quiescent no-op guard so the physical rotate/purge
            // always runs.
            let orphans = store.orphans_discarded;
            store.checkpoint_on_disk = false;
            store.checkpoint()?;
            store.orphans_discarded = orphans;
        }
        store.sweep_stale()?;
        Ok(store)
    }

    /// Creates a sharded store in an *empty* `dir` from an existing
    /// in-memory state (bulk-load-then-go-durable): writes the initial
    /// checkpoint of `initial` at CSN 0 under epoch 1.
    pub fn create(dir: impl Into<PathBuf>, shards: usize, initial: S) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if !checkpoint::list_checkpoints(&dir)?.is_empty()
            || !crate::wal::list_segments(&dir)?.is_empty()
            || list_generations(&dir)?.next().is_some()
        {
            return Err(HyGraphError::invalid(format!(
                "ShardedStore::create: {} already holds a log",
                dir.display()
            )));
        }
        let router = ShardRouter::new(shards);
        Self::rebuild(
            dir,
            router,
            1,
            initial,
            0,
            0,
            config::configured_segment_bytes(),
        )
    }

    /// Recovers one shard generation: per-shard [`Wal::recover`], then
    /// a CSN merge applying the longest contiguous prefix above the
    /// checkpoint watermark.
    #[allow(clippy::too_many_arguments)]
    fn recover_generation(
        dir: &Path,
        router: ShardRouter,
        meta: &ShardMeta,
        ckpt_csn: u64,
        watermark: i64,
        mut state: S,
        segment_bytes: u64,
        mut observer: Option<&mut dyn RecoveryObserver<S>>,
    ) -> Result<RecoveredGeneration<S>> {
        if let Some(o) = observer.as_deref_mut() {
            let mut w = ByteWriter::new();
            state.encode_state(&mut w);
            o.base(watermark, &w.into_bytes());
        }
        let mut frames: Vec<(u64, i64, S::Mutation)> = Vec::new();
        let mut wals = Vec::with_capacity(router.shards());
        for (idx, &from_lsn) in meta.next_lsns.iter().enumerate() {
            let sdir = shard_dir(dir, meta.epoch, idx);
            let wal = Wal::recover(
                &sdir,
                S::STORE_TAG,
                segment_bytes,
                from_lsn,
                |_, ts, rec| {
                    let (csn, m) = decode_record::<S>(rec)?;
                    if csn < ckpt_csn {
                        return Err(HyGraphError::corrupt(format!(
                            "shard {idx} frame carries CSN {csn} below the checkpoint \
                         watermark {ckpt_csn}"
                        )));
                    }
                    frames.push((csn, ts, m));
                    Ok(())
                },
            )?;
            wals.push(wal);
        }
        // Merge the shard streams by CSN; apply the contiguous prefix.
        frames.sort_by_key(|&(csn, _, _)| csn);
        let mut expected = ckpt_csn;
        let mut commit_ts = watermark;
        let mut applied = 0u64;
        for (csn, ts, m) in &frames {
            if *csn != expected {
                break; // gap: everything from here is a crash tail
            }
            state.apply(m)?;
            commit_ts = commit_ts.max(*ts);
            if let Some(o) = observer.as_deref_mut() {
                o.replay(*csn, *ts, m);
            }
            expected += 1;
            applied += 1;
        }
        Ok(RecoveredGeneration {
            state,
            wals,
            next_csn: expected,
            commit_ts,
            orphans: frames.len() as u64 - applied,
        })
    }

    /// Builds a fresh shard generation around `state` and commits it
    /// with a checkpoint: new `shards-<epoch>` directory, empty WALs,
    /// meta checkpoint at `csn`. The rename of the checkpoint file is
    /// the commit point — a crash before it leaves the previous layout
    /// authoritative, a crash after it leaves only stale directories
    /// for the next open's sweep.
    fn rebuild(
        dir: PathBuf,
        router: ShardRouter,
        epoch: u64,
        state: S,
        csn: u64,
        commit_ts: i64,
        segment_bytes: u64,
    ) -> Result<Self> {
        let gen_dir = generation_dir(&dir, epoch);
        if gen_dir.exists() {
            // leftovers of a rebuild that crashed before its checkpoint
            // committed — the current checkpoint references another
            // epoch, so nothing in here is live
            std::fs::remove_dir_all(&gen_dir)?;
        }
        let shards = router.shards();
        let mut wals = Vec::with_capacity(shards);
        for idx in 0..shards {
            wals.push(Wal::create(
                shard_dir(&dir, epoch, idx),
                S::STORE_TAG,
                segment_bytes,
            )?);
        }
        let mut store = Self {
            state,
            dir,
            router,
            epoch,
            wals,
            dirty: vec![false; shards],
            pending_csn: vec![0; shards],
            next_csn: csn,
            checkpoint_csn: csn,
            checkpoint_on_disk: false,
            since_checkpoint: 0,
            commit_ts,
            orphans_discarded: 0,
        };
        store.checkpoint()?;
        Ok(store)
    }

    /// Removes shard generations other than the live one and archives
    /// stray top-level legacy segments into `legacy-wal/`. Runs only
    /// after the live checkpoint is durable — everything swept is
    /// superseded by it, so a crash at any point here loses nothing.
    fn sweep_stale(&self) -> Result<()> {
        for (epoch, path) in list_generations(&self.dir)? {
            if epoch != self.epoch {
                std::fs::remove_dir_all(path)?;
            }
        }
        legacy_wal_archive_moves(&self.dir)?;
        Ok(())
    }

    /// The wrapped state. All mutation goes through
    /// [`ShardedStore::commit`] / [`ShardedStore::stage`]; reads are
    /// direct.
    pub fn get(&self) -> &S {
        &self.state
    }

    /// Stages one mutation: routes it to its shard, appends
    /// `[CSN ++ record]` to that shard's WAL, then applies. Returns the
    /// CSN. Not durable until the next [`ShardedStore::sync`]. A
    /// mutation the state rejects is retracted from its shard's log and
    /// the error returned.
    pub fn stage(&mut self, m: S::Mutation) -> Result<u64> {
        let csn = self.next_csn;
        let shard = m
            .shard_affinity(&self.router)
            .unwrap_or_else(|| self.router.of_csn(csn));
        let record = encode_record::<S>(csn, &m);
        let wal = &mut self.wals[shard];
        let mark = wal.mark();
        wal.append(self.commit_ts, &record);
        match self.state.apply(&m) {
            Ok(()) => {
                self.next_csn += 1;
                self.since_checkpoint += 1;
                if !self.dirty[shard] {
                    self.pending_csn[shard] = csn;
                    self.dirty[shard] = true;
                }
                Ok(csn)
            }
            Err(e) => {
                self.wals[shard].rollback_to(mark);
                Err(e)
            }
        }
    }

    /// Commits one mutation: stage + fsync of its shard. On return it
    /// is durable.
    pub fn commit(&mut self, m: S::Mutation) -> Result<u64> {
        let csn = self.stage(m)?;
        self.sync()?;
        Ok(csn)
    }

    /// Group commit: stages every mutation, then makes the whole batch
    /// durable with one fsync *per touched shard*. Returns the batch's
    /// CSN range. If a mutation is rejected the batch stops there —
    /// earlier mutations stay staged (and the sync of that prefix is
    /// still attempted) — and the rejection is returned. The semantic
    /// rejection outranks a sync failure: callers must be able to tell
    /// a rejected mutation from an I/O error. The I/O failure is not
    /// lost — the WAL either winds the torn batch back for a clean
    /// retry or poisons itself, so a persistent failure resurfaces on
    /// the next durability call.
    pub fn commit_batch(
        &mut self,
        mutations: impl IntoIterator<Item = S::Mutation>,
    ) -> Result<Range<u64>> {
        let start = self.next_csn;
        let mut staged = Ok(());
        for m in mutations {
            if let Err(e) = self.stage(m) {
                staged = Err(e);
                break;
            }
        }
        let end = self.next_csn;
        let synced = self.sync();
        staged.and(synced).map(|()| start..end)
    }

    /// Makes every staged mutation durable (one fsync per dirty shard),
    /// then checkpoints automatically if the configured interval
    /// (`HYGRAPH_CHECKPOINT_EVERY`) has elapsed. A batch is
    /// acknowledged only after *every* involved shard synced — the
    /// invariant the recovery contiguity rule relies on.
    pub fn sync(&mut self) -> Result<()> {
        for (idx, wal) in self.wals.iter_mut().enumerate() {
            if self.dirty[idx] {
                wal.sync()?;
                self.dirty[idx] = false;
            }
        }
        let every = config::configured_checkpoint_every();
        if every > 0 && self.since_checkpoint >= every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Snapshots the full state (plus the shard meta) at the current
    /// CSN, then rotates every shard stream and purges segments and
    /// checkpoints the snapshot supersedes. No-op on a quiescent store.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.sync_all_wals()?;
        let csn = self.next_csn;
        if self.checkpoint_on_disk && csn == self.checkpoint_csn {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let mut w = ByteWriter::new();
        encode_meta(
            &ShardMeta {
                epoch: self.epoch,
                next_lsns: self.wals.iter().map(Wal::next_lsn).collect(),
            },
            &mut w,
        );
        self.state.encode_state(&mut w);
        checkpoint::write_checkpoint(
            &self.dir,
            S::STORE_TAG,
            csn,
            self.commit_ts,
            &w.into_bytes(),
        )?;
        checkpoint::purge_older(&self.dir, csn)?;
        for wal in &mut self.wals {
            let lsn = wal.next_lsn();
            wal.rotate();
            wal.purge_up_to(lsn)?;
        }
        self.checkpoint_csn = csn;
        self.checkpoint_on_disk = true;
        self.since_checkpoint = 0;
        if let Some(m) = hygraph_metrics::get() {
            m.persist.checkpoints.inc();
            m.persist.checkpoint_us.observe_duration(start.elapsed());
        }
        Ok(())
    }

    fn sync_all_wals(&mut self) -> Result<()> {
        for (idx, wal) in self.wals.iter_mut().enumerate() {
            wal.sync()?;
            self.dirty[idx] = false;
        }
        Ok(())
    }

    /// The exact state encoding — what a checkpoint at this instant
    /// would contain after the shard meta; equivalence tests compare
    /// these bytes for bit-identity with the single-WAL store's.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.state.encode_state(&mut w);
        w.into_bytes()
    }

    /// CSN the next staged mutation will receive.
    pub fn next_csn(&self) -> u64 {
        self.next_csn
    }

    /// CSN watermark of the newest durable checkpoint.
    pub fn checkpoint_csn(&self) -> u64 {
        self.checkpoint_csn
    }

    /// Number of shards (and WAL streams).
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The router mapping elements to shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Per-shard `(next_lsn, durable_lsn)` positions, indexed by shard
    /// — the feed for per-shard WAL-depth gauges. These are **per-stream
    /// frame counters** (each shard's WAL numbers frames independently
    /// from 0), not global CSNs; for the cross-shard durability
    /// frontier use [`ShardedStore::shard_csn_frontiers`].
    pub fn shard_lsns(&self) -> Vec<(u64, u64)> {
        self.wals
            .iter()
            .map(|w| (w.next_lsn(), w.durable_lsn()))
            .collect()
    }

    /// Per-shard durable **CSN** frontiers, indexed by shard: every
    /// frame a shard holds with a CSN *strictly below* its frontier is
    /// durable on disk. A fully-synced shard's frontier is the global
    /// [`ShardedStore::next_csn`] — it holds no frame at or above it —
    /// so an idle shard never pins the cross-shard watermark; a shard
    /// with staged-but-unsynced frames sits at the CSN of its first
    /// unsynced frame. The minimum across shards is the cross-shard
    /// durable watermark (`hygraph_temporal::ShardWatermark`).
    pub fn shard_csn_frontiers(&self) -> Vec<u64> {
        self.dirty
            .iter()
            .zip(&self.pending_csn)
            .map(|(&dirty, &pending)| if dirty { pending } else { self.next_csn })
            .collect()
    }

    /// Frames the last recovery discarded past a CSN contiguity gap
    /// (a crash tail between per-shard fsyncs); 0 after a clean open.
    pub fn orphans_discarded(&self) -> u64 {
        self.orphans_discarded
    }

    /// Sets the commit timestamp stamped onto subsequently staged WAL
    /// frames (and persisted as the next checkpoint's watermark), as
    /// [`DurableStore::set_commit_ts`].
    pub fn set_commit_ts(&mut self, ts: i64) {
        self.commit_ts = ts;
    }

    /// The highest transaction time this store has seen.
    pub fn history_watermark(&self) -> i64 {
        self.commit_ts
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flushes staged mutations on every shard and closes the store.
    pub fn close(mut self) -> Result<()> {
        self.sync_all_wals()
    }
}

struct RecoveredGeneration<S: Durable> {
    state: S,
    wals: Vec<Wal>,
    next_csn: u64,
    commit_ts: i64,
    orphans: u64,
}

impl<S: Durable> std::fmt::Debug for ShardedStore<S>
where
    S::Mutation: ShardRouted,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards())
            .field("epoch", &self.epoch)
            .field("next_csn", &self.next_csn)
            .field("checkpoint_csn", &self.checkpoint_csn)
            .finish()
    }
}

/// Iterates `(epoch, path)` of every `shards-<epoch>` generation
/// directory in `dir`.
fn list_generations(dir: &Path) -> Result<impl Iterator<Item = (u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name.strip_prefix("shards-") else {
            continue;
        };
        if let Ok(epoch) = hex.parse::<u64>() {
            out.push((epoch, entry.path()));
        }
    }
    Ok(out.into_iter())
}

/// Moves stray top-level `wal-*.seg` files (a pre-shard layout) into
/// `legacy-wal/`, returning the archived paths. Idempotent; called only
/// after the sharded checkpoint covering those frames is durable.
fn legacy_wal_archive_moves(dir: &Path) -> Result<Vec<PathBuf>> {
    let segments = crate::wal::list_segments(dir)?;
    if segments.is_empty() {
        return Ok(Vec::new());
    }
    let archive = dir.join("legacy-wal");
    std::fs::create_dir_all(&archive)?;
    let mut moved = Vec::with_capacity(segments.len());
    for (_, path) in segments {
        let dest = archive.join(path.file_name().expect("segment file name"));
        std::fs::rename(&path, &dest)?;
        moved.push(dest);
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PersistConfig;
    use crate::fault::scratch_dir;
    use crate::stores::HgMutation;
    use hygraph_core::HyGraph;
    use hygraph_types::{SeriesId, Timestamp};

    /// A rejected mutation in a batch must surface as the semantic
    /// rejection even when the trailing sync of the staged prefix also
    /// fails — callers distinguish "mutation refused at position k"
    /// from "I/O error of unknown extent".
    #[test]
    fn batch_rejection_outranks_sync_failure() {
        PersistConfig::new()
            .segment_bytes(512)
            .checkpoint_every(0)
            .install();
        let dir = scratch_dir("sharded-reject-vs-sync");
        let mut store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 2).unwrap();
        store
            .commit(HgMutation::AddSeries {
                names: vec!["v".into()],
                rows: vec![],
            })
            .unwrap();
        // series 0 routes to shard 0: make that shard's next write fail
        store.wals[0].fail_write_after = Some(0);
        let err = store
            .commit_batch([
                HgMutation::Append {
                    series: SeriesId::new(0),
                    t: Timestamp::from_millis(1),
                    row: vec![1.0],
                },
                HgMutation::Append {
                    series: SeriesId::new(99), // rejected: no such series
                    t: Timestamp::from_millis(2),
                    row: vec![2.0],
                },
            ])
            .unwrap_err();
        assert!(
            matches!(err, HyGraphError::SeriesNotFound(_)),
            "expected the semantic rejection, got {err:?}"
        );
        // the I/O failure was transient (the WAL wound the torn batch
        // back): a retry syncs the accepted prefix and nothing is lost
        store.sync().unwrap();
        drop(store);
        let store: ShardedStore<HyGraph> = ShardedStore::open(&dir, 2).unwrap();
        assert_eq!(store.next_csn(), 2, "the accepted prefix survived");
        std::fs::remove_dir_all(&dir).ok();
    }
}
