//! Append-only, segmented write-ahead log.
//!
//! A log is a directory of segment files named `wal-<base>.seg`, where
//! `<base>` is the 16-hex-digit LSN of the segment's first frame.
//! Every segment starts with a 9-byte header — magic `HGWL2` plus the
//! 4-byte store tag — followed by CRC-guarded frames
//! ([`crate::frame`]). In a v2 segment every frame record is prefixed
//! with the 8-byte little-endian commit timestamp (epoch ms) of the
//! transaction that produced it; legacy `HGWL1` segments (no
//! timestamp) are still recovered, reporting timestamp 0, and the
//! first sync after recovering one rotates to a fresh v2 segment so a
//! single segment never mixes the two layouts. Appends buffer frames
//! in memory (group commit);
//! [`Wal::sync`] writes the batch with one `write` + `fdatasync` pair,
//! rotating to a fresh segment once the active one exceeds the
//! configured size.
//!
//! Recovery ([`Wal::recover`]) replays segments in base order, checks
//! header, checksum, and LSN continuity, and — on the first torn or
//! corrupt frame — truncates the segment at the last intact frame and
//! discards any later segments, exactly reproducing the "committed =
//! synced prefix" contract.

use crate::frame::{append_frame, read_frame, FrameOutcome};
use hygraph_metrics as metrics;
use hygraph_types::{HyGraphError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEGMENT_MAGIC: &[u8; 5] = b"HGWL2";
const SEGMENT_MAGIC_V1: &[u8; 5] = b"HGWL1";
const SEGMENT_HEADER_BYTES: usize = SEGMENT_MAGIC.len() + 4;
/// Bytes of the commit-timestamp prefix on every v2 frame record.
const TS_PREFIX_BYTES: usize = 8;

fn segment_name(base: u64) -> String {
    format!("wal-{base:016x}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Lists `(base LSN, path)` of every segment in `dir`, sorted by base.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(base) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((base, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

fn sync_dir(dir: &Path) -> Result<()> {
    // directory fsync makes created/removed segment names durable; on
    // platforms where directories cannot be opened this is a no-op
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

struct ActiveSegment {
    path: PathBuf,
    file: File,
    len: u64,
}

/// An opaque position in the unsynced batch (see [`Wal::mark`]).
#[derive(Clone, Copy, Debug)]
pub struct PendingMark {
    pending_len: usize,
    next_lsn: u64,
}

/// The segmented write-ahead log of one durable store.
pub struct Wal {
    dir: PathBuf,
    tag: [u8; 4],
    segment_bytes: u64,
    active: Option<ActiveSegment>,
    /// Frames appended but not yet written+synced (the group-commit
    /// batch).
    pending: Vec<u8>,
    /// LSN of the first pending frame (base for a new segment).
    pending_base: u64,
    next_lsn: u64,
    /// `next_lsn` as of the last successful [`Wal::sync`] — everything
    /// below this is durable.
    durable_lsn: u64,
    /// Set when a failed sync left the active segment in a state that
    /// could not be wound back: further syncs refuse, because retrying
    /// would append the batch *after* the torn bytes and then claim it
    /// durable while recovery truncates at the tear.
    poisoned: bool,
    /// Test-only fault injection: the next batch write persists at most
    /// this many bytes, then errors (a disk filling up mid-`write`).
    #[cfg(test)]
    pub(crate) fail_write_after: Option<usize>,
}

impl Wal {
    /// Opens a fresh, empty log in `dir` (created if missing).
    pub fn create(dir: impl Into<PathBuf>, tag: [u8; 4], segment_bytes: u64) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            tag,
            segment_bytes: segment_bytes.max(1),
            active: None,
            pending: Vec::new(),
            pending_base: 0,
            next_lsn: 0,
            durable_lsn: 0,
            poisoned: false,
            #[cfg(test)]
            fail_write_after: None,
        })
    }

    /// Recovers the log from `dir`: replays every intact frame with
    /// LSN ≥ `from_lsn` through `apply` (in LSN order, with the frame's
    /// commit timestamp — 0 for legacy v1 segments), truncates at the
    /// first torn or corrupt frame, and positions the log for appends.
    pub fn recover(
        dir: impl Into<PathBuf>,
        tag: [u8; 4],
        segment_bytes: u64,
        from_lsn: u64,
        mut apply: impl FnMut(u64, i64, &[u8]) -> Result<()>,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let start = Instant::now();
        let mut replayed = 0u64;
        let mut truncations = 0u64;
        let segments = list_segments(&dir)?;
        if let Some((first_base, _)) = segments.first() {
            // the log must reach back to the recovery watermark: a first
            // segment starting above it means the prefix (and whatever
            // checkpoint covered it) is gone — replaying the suffix onto
            // a state missing those mutations would be silently wrong
            if *first_base > from_lsn {
                return Err(HyGraphError::corrupt(format!(
                    "WAL in {} starts at LSN {first_base} but recovery needs LSN {from_lsn}: \
                     the log prefix (or the checkpoint covering it) is missing",
                    dir.display(),
                )));
            }
        }
        let mut expected: Option<u64> = None;
        let mut survivors: Vec<(u64, PathBuf, u64)> = Vec::new(); // (base, path, file len)
        let mut torn = false;
        let mut last_survivor_v1 = false;

        for (idx, (base, path)) in segments.iter().enumerate() {
            if torn {
                std::fs::remove_file(path)?;
                truncations += 1;
                continue;
            }
            let bytes = std::fs::read(path)?;
            let header_long_enough = bytes.len() >= SEGMENT_HEADER_BYTES;
            let v2 = header_long_enough && &bytes[..SEGMENT_MAGIC.len()] == SEGMENT_MAGIC;
            let v1 = header_long_enough && &bytes[..SEGMENT_MAGIC.len()] == SEGMENT_MAGIC_V1;
            let magic_ok = v1 || v2;
            if magic_ok && bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER_BYTES] != tag {
                // a healthy segment of a *different* store: refuse to
                // open (deleting it here would destroy someone else's
                // data; a truly corrupt header fails the magic instead)
                return Err(HyGraphError::corrupt(format!(
                    "WAL segment {} belongs to store tag {:?}, expected {:?}",
                    path.display(),
                    String::from_utf8_lossy(&bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER_BYTES]),
                    String::from_utf8_lossy(&tag),
                )));
            }
            let header_ok = magic_ok;
            // a later segment whose base disagrees with the running LSN
            // means frames in between vanished: stop at the gap
            let continuous = match expected {
                None => true,
                Some(e) => *base == e,
            };
            if !header_ok || !continuous {
                // nothing in this segment (or anything later) is usable
                torn = true;
                std::fs::remove_file(path)?;
                truncations += 1;
                continue;
            }
            let body = &bytes[SEGMENT_HEADER_BYTES..];
            let mut offset = 0usize;
            let mut lsn_here = *base;
            loop {
                match read_frame(body, offset) {
                    FrameOutcome::Frame {
                        lsn,
                        record,
                        next_offset,
                    } => {
                        if lsn != lsn_here {
                            break; // LSN discontinuity: corrupt from here
                        }
                        // v2 records lead with the commit timestamp; a
                        // v2 record too short to hold one is corrupt
                        let (ts, record) = if v2 {
                            let Some(prefix) = record.get(..TS_PREFIX_BYTES) else {
                                break;
                            };
                            (
                                i64::from_le_bytes(prefix.try_into().expect("8 bytes")),
                                &record[TS_PREFIX_BYTES..],
                            )
                        } else {
                            (0, record)
                        };
                        if lsn >= from_lsn {
                            apply(lsn, ts, record)?;
                            replayed += 1;
                        }
                        lsn_here += 1;
                        offset = next_offset;
                    }
                    FrameOutcome::End => break,
                    FrameOutcome::Torn => break,
                }
            }
            let valid_file_len = (SEGMENT_HEADER_BYTES + offset) as u64;
            if valid_file_len < bytes.len() as u64 {
                // torn tail: truncate to the intact prefix, drop the rest
                crate::fault::truncate_file(path, valid_file_len)?;
                torn = true;
                truncations += 1;
            }
            expected = Some(lsn_here);
            survivors.push((*base, path.clone(), valid_file_len));
            last_survivor_v1 = v1;
            let _ = idx;
        }
        // If the log ends below the recovery watermark (a crash landed
        // between checkpoint-write and segment purge), every surviving
        // segment is fully covered by the checkpoint: drop them all so
        // the next append opens a fresh segment at the watermark —
        // otherwise the LSN jump would read as a gap on the *next*
        // recovery.
        if expected.unwrap_or(0) < from_lsn {
            for (_, path, _) in survivors.drain(..) {
                std::fs::remove_file(path)?;
                truncations += 1;
            }
            torn = true; // force the directory fsync below
        }
        if torn {
            sync_dir(&dir)?;
        }

        let next_lsn = expected.unwrap_or(0).max(from_lsn);
        // never append v2 frames into a surviving v1 segment — leave it
        // finalized so the next sync opens a fresh v2 segment
        let active = match survivors.last() {
            Some((_, path, len)) if !last_survivor_v1 => Some(ActiveSegment {
                path: path.clone(),
                file: OpenOptions::new().append(true).open(path)?,
                len: *len,
            }),
            _ => None,
        };
        if let Some(m) = metrics::get() {
            m.persist.recoveries.inc();
            m.persist.recovery_frames_replayed.add(replayed);
            m.persist.recovery_truncations.add(truncations);
            m.persist.recovery_us.observe_duration(start.elapsed());
        }
        Ok(Self {
            dir,
            tag,
            segment_bytes: segment_bytes.max(1),
            active,
            pending: Vec::new(),
            pending_base: next_lsn,
            next_lsn,
            durable_lsn: next_lsn,
            poisoned: false,
            #[cfg(test)]
            fail_write_after: None,
        })
    }

    /// The LSN the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Everything below this LSN is durable on disk.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record stamped with commit timestamp `ts` (epoch ms;
    /// 0 when the caller tracks no transaction time) to the
    /// group-commit batch and returns its LSN. The record is *not*
    /// durable until [`Wal::sync`] returns.
    pub fn append(&mut self, ts: i64, record: &[u8]) -> u64 {
        let start = metrics::enabled().then(Instant::now);
        let lsn = self.next_lsn;
        if self.pending.is_empty() {
            self.pending_base = lsn;
        }
        let mut stamped = Vec::with_capacity(TS_PREFIX_BYTES + record.len());
        stamped.extend_from_slice(&ts.to_le_bytes());
        stamped.extend_from_slice(record);
        append_frame(&mut self.pending, lsn, &stamped);
        self.next_lsn += 1;
        if let Some(m) = metrics::get() {
            m.persist.wal_appends.inc();
            if let Some(s) = start {
                m.persist.wal_append_us.observe_duration(s.elapsed());
            }
        }
        lsn
    }

    /// Bytes currently buffered (group-commit batch size).
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// A position in the unsynced batch, for [`Wal::rollback_to`].
    pub fn mark(&self) -> PendingMark {
        PendingMark {
            pending_len: self.pending.len(),
            next_lsn: self.next_lsn,
        }
    }

    /// Retracts every append made after `mark` — valid only while none
    /// of them has been synced (the WAL-before-apply protocol appends,
    /// tries to apply, and retracts the frame if the apply is rejected,
    /// so rejected mutations never reach disk).
    pub fn rollback_to(&mut self, mark: PendingMark) {
        assert!(
            mark.pending_len <= self.pending.len() && mark.next_lsn <= self.next_lsn,
            "rollback mark is from after a sync"
        );
        self.pending.truncate(mark.pending_len);
        self.next_lsn = mark.next_lsn;
        if self.pending.is_empty() {
            self.pending_base = self.next_lsn;
        }
    }

    /// Writes the batch with one `write` + `fdatasync`, rotating first
    /// if the active segment is over the size threshold. On success the
    /// whole batch is durable.
    ///
    /// A failed sync is safe to retry: a partially written batch is
    /// wound back to the segment's known-good length first, so the
    /// retry cannot land the batch after torn bytes. If the wind-back
    /// itself fails (or the `fdatasync` fails, after which the kernel
    /// may silently drop the error state), the log is poisoned and
    /// refuses all further syncs — reopen the store to recover the
    /// durable prefix.
    pub fn sync(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(HyGraphError::corrupt(
                "WAL poisoned by an earlier failed sync; reopen the store to recover",
            ));
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let batch_frames = self.next_lsn - self.pending_base;
        let batch_bytes = self.pending.len() as u64;
        let mut rotated = false;
        if let Some(a) = &self.active {
            if a.len >= self.segment_bytes {
                self.active = None; // finalized; a fresh segment follows
            }
        }
        if self.active.is_none() {
            let path = self.dir.join(segment_name(self.pending_base));
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            file.write_all(SEGMENT_MAGIC)?;
            file.write_all(&self.tag)?;
            sync_dir(&self.dir)?;
            self.active = Some(ActiveSegment {
                path,
                file,
                len: SEGMENT_HEADER_BYTES as u64,
            });
            rotated = true;
        }
        #[cfg(test)]
        let injected_quota = self.fail_write_after.take();
        let a = self.active.as_mut().expect("active segment opened above");
        #[cfg(test)]
        let write_res = match injected_quota {
            Some(quota) => {
                let n = quota.min(self.pending.len());
                a.file
                    .write_all(&self.pending[..n])
                    .and_then(|()| Err(std::io::Error::other("injected write fault")))
            }
            None => a.file.write_all(&self.pending),
        };
        #[cfg(not(test))]
        let write_res = a.file.write_all(&self.pending);
        if let Err(e) = write_res {
            // part of the batch may already be in the file: wind the
            // segment (and the write cursor) back to the known-good
            // length so a retried sync starts exactly where the last
            // successful one ended
            use std::io::{Seek as _, SeekFrom};
            let rewound = a
                .file
                .set_len(a.len)
                .and_then(|()| a.file.seek(SeekFrom::Start(a.len)).map(|_| ()));
            if rewound.is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        if let Err(e) = a.file.sync_data() {
            // after a failed fdatasync the fate of the just-written
            // bytes is unknowable (the kernel may clear the error), so
            // nothing later can be trusted to reach disk
            self.poisoned = true;
            return Err(e.into());
        }
        a.len += self.pending.len() as u64;
        self.pending.clear();
        self.pending_base = self.next_lsn;
        self.durable_lsn = self.next_lsn;
        if let Some(m) = metrics::get() {
            m.persist.wal_syncs.inc();
            m.persist.wal_synced_bytes.add(batch_bytes);
            m.persist.group_commit_frames.observe(batch_frames);
            m.persist.wal_sync_us.observe_duration(start.elapsed());
            if rotated {
                m.persist.wal_rotations.inc();
            }
        }
        Ok(())
    }

    /// Closes the active segment so the next [`Wal::sync`] starts a new
    /// one — called after a checkpoint, making the closed segment
    /// purgeable by the following checkpoint.
    pub fn rotate(&mut self) {
        self.active = None;
    }

    /// Deletes every segment whose frames all have LSN < `lsn` (they
    /// are covered by a checkpoint). The active segment is never
    /// deleted.
    pub fn purge_up_to(&mut self, lsn: u64) -> Result<()> {
        let segments = list_segments(&self.dir)?;
        let active_path = self.active.as_ref().map(|a| a.path.clone());
        // windows(2) never visits the last segment, so the tail — which
        // may be active or carry the next appends — is always kept
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_base, _) = window[1];
            // every frame of window[0] has LSN < next_base
            if next_base <= lsn && Some(path) != active_path.as_ref() {
                std::fs::remove_file(path)?;
            }
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Flushes and closes the log. Dropping without this loses any
    /// unsynced batch — by design (that is the crash the WAL protects
    /// against).
    pub fn close(mut self) -> Result<()> {
        self.sync()
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_lsn", &self.next_lsn)
            .field("durable_lsn", &self.durable_lsn)
            .field("pending_bytes", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{flip_byte, scratch_dir, truncate_file};

    const TAG: [u8; 4] = *b"TEST";

    fn collect(dir: &Path, from: u64) -> (Vec<(u64, Vec<u8>)>, Wal) {
        let mut seen = Vec::new();
        let wal = Wal::recover(dir, TAG, 64, from, |lsn, _ts, rec| {
            seen.push((lsn, rec.to_vec()));
            Ok(())
        })
        .unwrap();
        (seen, wal)
    }

    #[test]
    fn append_sync_recover_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let mut wal = Wal::create(&dir, TAG, 1024).unwrap();
        for i in 0..10u64 {
            assert_eq!(wal.append(0, format!("r{i}").as_bytes()), i);
        }
        wal.sync().unwrap();
        let (seen, wal2) = collect(&dir, 0);
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[3], (3, b"r3".to_vec()));
        assert_eq!(wal2.next_lsn(), 10);
        // replay from a watermark skips the prefix
        let (tail, _) = collect(&dir, 7);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_batch_is_lost_synced_prefix_survives() {
        let dir = scratch_dir("unsynced");
        let mut wal = Wal::create(&dir, TAG, 1024).unwrap();
        wal.append(0, b"durable");
        wal.sync().unwrap();
        wal.append(0, b"volatile");
        drop(wal); // crash: batch never synced
        let (seen, wal2) = collect(&dir, 0);
        assert_eq!(seen, vec![(0, b"durable".to_vec())]);
        assert_eq!(wal2.next_lsn(), 1, "lost LSN is reused");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_produces_multiple_segments_and_replays_in_order() {
        let dir = scratch_dir("rotate");
        let mut wal = Wal::create(&dir, TAG, 64).unwrap(); // tiny segments
        for i in 0..50u64 {
            wal.append(0, format!("record-{i:04}").as_bytes());
            wal.sync().unwrap();
        }
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let (seen, _) = collect(&dir, 0);
        assert_eq!(seen.len(), 50);
        for (i, (lsn, rec)) in seen.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(rec, format!("record-{i:04}").as_bytes());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncated_on_recovery() {
        let dir = scratch_dir("torn");
        let mut wal = Wal::create(&dir, TAG, 4096).unwrap();
        for i in 0..5u64 {
            wal.append(0, format!("r{i}").as_bytes());
        }
        wal.sync().unwrap();
        let (base, path) = list_segments(&dir).unwrap().pop().unwrap();
        assert_eq!(base, 0);
        let full = std::fs::metadata(&path).unwrap().len();
        truncate_file(&path, full - 3).unwrap(); // tear the last frame
        let (seen, wal2) = collect(&dir, 0);
        assert_eq!(seen.len(), 4, "last frame gone, prefix intact");
        assert_eq!(wal2.next_lsn(), 4);
        // the file was physically truncated to the intact prefix
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < full - 3);
        // and the log accepts new appends at the reused LSN
        let mut wal2 = wal2;
        assert_eq!(wal2.append(0, b"replacement"), 4);
        wal2.sync().unwrap();
        let (seen, _) = collect(&dir, 0);
        assert_eq!(seen[4], (4, b"replacement".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_segment_drops_suffix_and_later_segments() {
        let dir = scratch_dir("corrupt");
        let mut wal = Wal::create(&dir, TAG, 64).unwrap();
        for i in 0..30u64 {
            wal.append(0, format!("record-{i:05}").as_bytes());
            wal.sync().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // flip a byte in the middle of the second segment
        let (_, ref second) = segments[1];
        let len = std::fs::metadata(second).unwrap().len();
        flip_byte(second, len / 2).unwrap();
        let (seen, _) = collect(&dir, 0);
        assert!(!seen.is_empty() && seen.len() < 30);
        // the surviving prefix is sequential from 0
        for (i, (lsn, _)) in seen.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
        }
        // later segments were deleted
        let remaining = list_segments(&dir).unwrap();
        assert!(remaining.len() < segments.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_tag_segment_is_rejected() {
        let dir = scratch_dir("tag");
        let mut wal = Wal::create(&dir, TAG, 1024).unwrap();
        wal.append(0, b"x");
        wal.sync().unwrap();
        drop(wal);
        let res = Wal::recover(&dir, *b"OTHR", 1024, 0, |_, _, _| Ok(()));
        assert!(res.is_err(), "foreign log must not open");
        // the segment survives untouched for its rightful owner
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let mut seen = Vec::new();
        Wal::recover(&dir, TAG, 1024, 0, |lsn, _ts, rec| {
            seen.push((lsn, rec.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![(0, b"x".to_vec())]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn purge_removes_covered_segments() {
        let dir = scratch_dir("purge");
        let mut wal = Wal::create(&dir, TAG, 64).unwrap();
        for i in 0..30u64 {
            wal.append(0, format!("record-{i:05}").as_bytes());
            wal.sync().unwrap();
        }
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 3);
        wal.rotate();
        wal.purge_up_to(wal.next_lsn()).unwrap();
        let after = list_segments(&dir).unwrap();
        assert!(after.len() < before, "covered segments deleted");
        // a purged log only opens from a watermark the surviving
        // segments cover (the checkpoint's LSN); recovering from 0
        // would silently skip the purged prefix and must fail loudly
        assert!(Wal::recover(&dir, TAG, 64, 0, |_, _, _| Ok(())).is_err());
        // ...while recovery from the watermark replays what remains and
        // positions the log at next_lsn
        let wal2 = Wal::recover(&dir, TAG, 64, 30, |_, _, _| Ok(())).unwrap();
        assert_eq!(wal2.next_lsn(), 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_log_prefix_is_a_loud_error() {
        let dir = scratch_dir("prefix");
        let mut wal = Wal::create(&dir, TAG, 64).unwrap();
        for i in 0..30u64 {
            wal.append(0, format!("record-{i:05}").as_bytes());
            wal.sync().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // the first segment vanishes (lost checkpoint scenario): the
        // remaining suffix must not be replayed onto a state missing
        // the prefix mutations
        std::fs::remove_file(&segments[0].1).unwrap();
        let res = Wal::recover(&dir, TAG, 64, 0, |_, _, _| Ok(()));
        assert!(res.is_err(), "missing prefix silently skipped");
        // the error is detected before anything is deleted
        assert_eq!(list_segments(&dir).unwrap().len(), segments.len() - 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_sync_is_safe_to_retry() {
        let dir = scratch_dir("retry");
        let mut wal = Wal::create(&dir, TAG, 4096).unwrap();
        wal.append(0, b"first");
        wal.sync().unwrap();
        wal.append(0, b"second");
        wal.append(0, b"third");
        // the write persists 7 bytes of the batch, then errors (ENOSPC)
        wal.fail_write_after = Some(7);
        assert!(wal.sync().is_err());
        assert_eq!(wal.durable_lsn(), 1, "failed batch not reported durable");
        // the retry must not append the batch after the torn fragment:
        // all three records recover, in order, with nothing in between
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 3);
        let (seen, _) = collect(&dir, 0);
        assert_eq!(
            seen,
            vec![
                (0, b"first".to_vec()),
                (1, b"second".to_vec()),
                (2, b"third".to_vec()),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_timestamps_roundtrip_through_recovery() {
        let dir = scratch_dir("wal-ts");
        let mut wal = Wal::create(&dir, TAG, 4096).unwrap();
        wal.append(1_000, b"a");
        wal.append(1_000, b"b");
        wal.append(2_500, b"c");
        wal.sync().unwrap();
        let mut seen = Vec::new();
        Wal::recover(&dir, TAG, 4096, 0, |lsn, ts, rec| {
            seen.push((lsn, ts, rec.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                (0, 1_000, b"a".to_vec()),
                (1, 1_000, b"b".to_vec()),
                (2, 2_500, b"c".to_vec()),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_segment_recovers_with_zero_ts_and_is_not_appended_to() {
        let dir = scratch_dir("wal-v1");
        // hand-write a v1 segment: old header, frames without ts prefix
        let path = dir.join(segment_name(0));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC_V1);
        bytes.extend_from_slice(&TAG);
        crate::frame::append_frame(&mut bytes, 0, b"old-a");
        crate::frame::append_frame(&mut bytes, 1, b"old-b");
        std::fs::write(&path, &bytes).unwrap();

        let mut seen = Vec::new();
        let mut wal = Wal::recover(&dir, TAG, 4096, 0, |lsn, ts, rec| {
            seen.push((lsn, ts, rec.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![(0, 0, b"old-a".to_vec()), (1, 0, b"old-b".to_vec())]
        );
        assert_eq!(wal.next_lsn(), 2);

        // new appends land in a fresh v2 segment, not the v1 one
        wal.append(9_999, b"new");
        wal.sync().unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 2, "v1 segment was finalized, not reused");
        let v1_after = std::fs::read(&path).unwrap();
        assert_eq!(v1_after, bytes, "v1 segment untouched");

        // the mixed log replays fully, v1 frames with ts 0
        let mut seen = Vec::new();
        Wal::recover(&dir, TAG, 4096, 0, |lsn, ts, rec| {
            seen.push((lsn, ts, rec.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                (0, 0, b"old-a".to_vec()),
                (1, 0, b"old-b".to_vec()),
                (2, 9_999, b"new".to_vec()),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_into_one_segment_write() {
        let dir = scratch_dir("group");
        let mut wal = Wal::create(&dir, TAG, 1 << 20).unwrap();
        for i in 0..100u64 {
            wal.append(0, format!("batched-{i}").as_bytes());
        }
        assert!(wal.pending_bytes() > 0);
        assert_eq!(wal.durable_lsn(), 0);
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 100);
        assert_eq!(wal.pending_bytes(), 0);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let (seen, _) = collect(&dir, 0);
        assert_eq!(seen.len(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }
}
