//! Durability configuration knobs.
//!
//! Mirrors the layered pattern of `hygraph_types::parallel`:
//!
//! 1. Defaults: 4 MiB segments, checkpoint every 10 000 committed
//!    records, WAL directory chosen explicitly by the caller.
//! 2. Environment, read once per process: `HYGRAPH_WAL_DIR` (default
//!    directory for [`crate::DurableStore::open_default`]),
//!    `HYGRAPH_WAL_SEGMENT_BYTES` (segment rotation threshold) and
//!    `HYGRAPH_CHECKPOINT_EVERY` (records between automatic
//!    checkpoints; `0` disables automatic checkpointing).
//! 3. Programmatic: [`PersistConfig`] applied via
//!    [`PersistConfig::install`], overriding the environment for the
//!    rest of the process (tests use this for small segments so
//!    rotation is exercised on tiny workloads).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default segment-rotation threshold: 4 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// Default number of committed records between automatic checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 10_000;

// u64::MAX = unset (fall through to env / defaults)
static SEGMENT_BYTES_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);
static CHECKPOINT_EVERY_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse::<u64>().ok()
}

fn env_segment_bytes() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        env_u64("HYGRAPH_WAL_SEGMENT_BYTES")
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SEGMENT_BYTES)
    })
}

fn env_checkpoint_every() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("HYGRAPH_CHECKPOINT_EVERY").unwrap_or(DEFAULT_CHECKPOINT_EVERY))
}

/// The default WAL directory from `HYGRAPH_WAL_DIR`, if set.
pub fn configured_wal_dir() -> Option<PathBuf> {
    static CACHE: OnceLock<Option<PathBuf>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            std::env::var_os("HYGRAPH_WAL_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        })
        .clone()
}

/// Builder for process-wide durability settings.
///
/// ```
/// use hygraph_persist::config::PersistConfig;
///
/// PersistConfig::new().segment_bytes(64 * 1024).install();
/// assert_eq!(hygraph_persist::config::configured_segment_bytes(), 64 * 1024);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistConfig {
    segment_bytes: Option<u64>,
    checkpoint_every: Option<u64>,
}

impl PersistConfig {
    /// A config that changes nothing until its setters are called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes after which the active WAL segment is rotated. Clamped to
    /// at least 1.
    pub fn segment_bytes(mut self, n: u64) -> Self {
        self.segment_bytes = Some(n.max(1));
        self
    }

    /// Committed records between automatic checkpoints; `0` disables
    /// automatic checkpointing (manual [`crate::DurableStore::checkpoint`]
    /// only).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Applies the settings process-wide; unset fields are untouched.
    /// Safe to call repeatedly — the last call wins.
    pub fn install(self) {
        if let Some(n) = self.segment_bytes {
            SEGMENT_BYTES_OVERRIDE.store(n, Ordering::Relaxed);
        }
        if let Some(n) = self.checkpoint_every {
            CHECKPOINT_EVERY_OVERRIDE.store(n, Ordering::Relaxed);
        }
    }
}

/// The effective segment-rotation threshold: installed override, else
/// `HYGRAPH_WAL_SEGMENT_BYTES`, else [`DEFAULT_SEGMENT_BYTES`].
pub fn configured_segment_bytes() -> u64 {
    let o = SEGMENT_BYTES_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    env_segment_bytes()
}

/// The effective auto-checkpoint interval: installed override, else
/// `HYGRAPH_CHECKPOINT_EVERY`, else [`DEFAULT_CHECKPOINT_EVERY`].
pub fn configured_checkpoint_every() -> u64 {
    let o = CHECKPOINT_EVERY_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    env_checkpoint_every()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // install() mutates process-global state; serialise dependent tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn scoped<T>(cfg: PersistConfig, f: impl FnOnce() -> T) -> T {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev_seg = SEGMENT_BYTES_OVERRIDE.load(Ordering::Relaxed);
        let prev_ck = CHECKPOINT_EVERY_OVERRIDE.load(Ordering::Relaxed);
        cfg.install();
        let out = f();
        SEGMENT_BYTES_OVERRIDE.store(prev_seg, Ordering::Relaxed);
        CHECKPOINT_EVERY_OVERRIDE.store(prev_ck, Ordering::Relaxed);
        out
    }

    #[test]
    fn install_overrides_and_is_partial() {
        scoped(PersistConfig::new().segment_bytes(1234), || {
            assert_eq!(configured_segment_bytes(), 1234);
            // updating only the checkpoint interval leaves segments alone
            PersistConfig::new().checkpoint_every(7).install();
            assert_eq!(configured_segment_bytes(), 1234);
            assert_eq!(configured_checkpoint_every(), 7);
        });
    }

    #[test]
    fn segment_bytes_clamped_to_one() {
        scoped(PersistConfig::new().segment_bytes(0), || {
            assert_eq!(configured_segment_bytes(), 1);
        });
    }
}
