//! [`Durable`] implementations for the engine's stores, with their
//! logged mutation vocabularies.
//!
//! Three stores go durable here:
//!
//! * [`TsStore`] — the chunked time-series store ([`TsMutation`]);
//! * [`AllInGraphStore`] and [`PolyglotStore`] — the paper's two
//!   storage architectures, sharing the station/trip/observe
//!   vocabulary ([`StoreMutation`]);
//! * [`HyGraph`] — the full hybrid model, whose [`HgMutation`] covers
//!   vertex, edge, subgraph, property, and observation operations.
//!
//! Every store allocates ids densely and deterministically, so
//! replaying a mutation prefix reproduces the exact ids the original
//! run handed out — the property that lets WAL records reference ids
//! produced by earlier records.

use crate::durable::Durable;
use hygraph_core::{ElementRef, HyGraph};
use hygraph_storage::{AllInGraphStore, PolyglotStore};
use hygraph_ts::{MultiSeries, TsStore};
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::shard::ShardRouter;
use hygraph_types::{
    EdgeId, HyGraphError, Interval, Label, PropertyMap, PropertyValue, Result, SeriesId,
    SubgraphId, Timestamp, VertexId,
};

fn corrupt_tag(what: &str, tag: u8) -> HyGraphError {
    HyGraphError::corrupt(format!("unknown {what} mutation tag {tag}"))
}

// ---- TsStore ----------------------------------------------------------

/// Logged operations of the chunked time-series store.
#[derive(Clone, Debug, PartialEq)]
pub enum TsMutation {
    /// Register an (empty) series under an explicit id.
    CreateSeries(SeriesId),
    /// Append one observation.
    Insert(SeriesId, Timestamp, f64),
    /// Remove a series and its chunks.
    DropSeries(SeriesId),
    /// Drop every observation before `t` (retention).
    RetainFrom(SeriesId, Timestamp),
}

impl Durable for TsStore {
    type Mutation = TsMutation;
    const STORE_TAG: [u8; 4] = *b"TSST";

    fn fresh() -> Self {
        TsStore::new()
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        hygraph_ts::persist::encode_store(self, w);
    }

    fn decode_state(r: &mut ByteReader<'_>) -> Result<Self> {
        hygraph_ts::persist::decode_store(r)
    }

    fn encode_mutation(m: &TsMutation, w: &mut ByteWriter) {
        match m {
            TsMutation::CreateSeries(id) => {
                w.u8(0);
                w.u64(id.raw());
            }
            TsMutation::Insert(id, t, v) => {
                w.u8(1);
                w.u64(id.raw());
                w.timestamp(*t);
                w.f64(*v);
            }
            TsMutation::DropSeries(id) => {
                w.u8(2);
                w.u64(id.raw());
            }
            TsMutation::RetainFrom(id, t) => {
                w.u8(3);
                w.u64(id.raw());
                w.timestamp(*t);
            }
        }
    }

    fn decode_mutation(r: &mut ByteReader<'_>) -> Result<TsMutation> {
        Ok(match r.u8()? {
            0 => TsMutation::CreateSeries(SeriesId::new(r.u64()?)),
            1 => TsMutation::Insert(SeriesId::new(r.u64()?), r.timestamp()?, r.f64()?),
            2 => TsMutation::DropSeries(SeriesId::new(r.u64()?)),
            3 => TsMutation::RetainFrom(SeriesId::new(r.u64()?), r.timestamp()?),
            tag => return Err(corrupt_tag("TsStore", tag)),
        })
    }

    fn apply(&mut self, m: &TsMutation) -> Result<()> {
        match m {
            TsMutation::CreateSeries(id) => {
                self.create_series(*id);
                Ok(())
            }
            TsMutation::Insert(id, t, v) => {
                self.insert(*id, *t, *v);
                Ok(())
            }
            TsMutation::DropSeries(id) => {
                self.drop_series(*id);
                Ok(())
            }
            TsMutation::RetainFrom(id, t) => self.retain_from(*id, *t),
        }
    }
}

// ---- the two storage-architecture stores ------------------------------

/// Logged operations shared by [`AllInGraphStore`] and
/// [`PolyglotStore`] — the bike-sharing ingest vocabulary of the
/// paper's storage experiment.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreMutation {
    /// Add a station vertex (id allocated densely on replay).
    AddStation {
        /// Station labels.
        labels: Vec<Label>,
        /// Static station properties.
        props: PropertyMap,
    },
    /// Add a trip edge between two stations.
    AddTrip {
        /// Source station.
        src: VertexId,
        /// Destination station.
        dst: VertexId,
        /// Trip labels.
        labels: Vec<Label>,
        /// Trip properties.
        props: PropertyMap,
    },
    /// Record one availability observation for a station.
    Observe {
        /// The observed station.
        station: VertexId,
        /// Observation time.
        t: Timestamp,
        /// Observed value.
        value: f64,
    },
}

fn encode_store_mutation(m: &StoreMutation, w: &mut ByteWriter) {
    match m {
        StoreMutation::AddStation { labels, props } => {
            w.u8(0);
            w.labels(labels);
            w.property_map(props);
        }
        StoreMutation::AddTrip {
            src,
            dst,
            labels,
            props,
        } => {
            w.u8(1);
            w.u64(src.raw());
            w.u64(dst.raw());
            w.labels(labels);
            w.property_map(props);
        }
        StoreMutation::Observe { station, t, value } => {
            w.u8(2);
            w.u64(station.raw());
            w.timestamp(*t);
            w.f64(*value);
        }
    }
}

fn decode_store_mutation(r: &mut ByteReader<'_>) -> Result<StoreMutation> {
    Ok(match r.u8()? {
        0 => StoreMutation::AddStation {
            labels: r.labels()?,
            props: r.property_map()?,
        },
        1 => StoreMutation::AddTrip {
            src: VertexId::new(r.u64()?),
            dst: VertexId::new(r.u64()?),
            labels: r.labels()?,
            props: r.property_map()?,
        },
        2 => StoreMutation::Observe {
            station: VertexId::new(r.u64()?),
            t: r.timestamp()?,
            value: r.f64()?,
        },
        tag => return Err(corrupt_tag("storage", tag)),
    })
}

macro_rules! impl_durable_station_store {
    ($store:ty, $tag:expr) => {
        impl Durable for $store {
            type Mutation = StoreMutation;
            const STORE_TAG: [u8; 4] = *$tag;

            fn fresh() -> Self {
                <$store>::new()
            }

            fn encode_state(&self, w: &mut ByteWriter) {
                self.encode_state(w);
            }

            fn decode_state(r: &mut ByteReader<'_>) -> Result<Self> {
                <$store>::decode_state(r)
            }

            fn encode_mutation(m: &StoreMutation, w: &mut ByteWriter) {
                encode_store_mutation(m, w);
            }

            fn decode_mutation(r: &mut ByteReader<'_>) -> Result<StoreMutation> {
                decode_store_mutation(r)
            }

            fn apply(&mut self, m: &StoreMutation) -> Result<()> {
                match m {
                    StoreMutation::AddStation { labels, props } => {
                        self.add_station(labels.iter().cloned(), props.clone());
                        Ok(())
                    }
                    StoreMutation::AddTrip {
                        src,
                        dst,
                        labels,
                        props,
                    } => {
                        self.add_trip(*src, *dst, labels.iter().cloned(), props.clone())?;
                        Ok(())
                    }
                    StoreMutation::Observe { station, t, value } => {
                        self.observe(*station, *t, *value)
                    }
                }
            }
        }
    };
}

impl_durable_station_store!(AllInGraphStore, b"AIGS");
impl_durable_station_store!(PolyglotStore, b"POLY");

// ---- HyGraph ----------------------------------------------------------

/// Logged operations of the full hybrid model: the vertex, edge,
/// subgraph, property, and observation mutations of Definition 1.
#[derive(Clone, Debug, PartialEq)]
pub enum HgMutation {
    /// Register a series (id allocated densely on replay), optionally
    /// pre-populated.
    AddSeries {
        /// Variable names (one per column).
        names: Vec<String>,
        /// Initial observations: `(t, row)` per time point.
        rows: Vec<(Timestamp, Vec<f64>)>,
    },
    /// Append one observation tuple to a series.
    Append {
        /// Target series.
        series: SeriesId,
        /// Observation time.
        t: Timestamp,
        /// One value per variable.
        row: Vec<f64>,
    },
    /// Add a property-graph vertex.
    AddPgVertex {
        /// Vertex labels.
        labels: Vec<Label>,
        /// Vertex properties.
        props: PropertyMap,
        /// Validity interval ρ(v).
        validity: Interval,
    },
    /// Add a time-series vertex bound to `series` (δ(v)).
    AddTsVertex {
        /// Vertex labels.
        labels: Vec<Label>,
        /// The series that *is* this vertex's content.
        series: SeriesId,
    },
    /// Add a property-graph edge.
    AddPgEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Edge labels.
        labels: Vec<Label>,
        /// Edge properties.
        props: PropertyMap,
        /// Validity interval ρ(e).
        validity: Interval,
    },
    /// Add a time-series edge bound to `series` (δ(e)).
    AddTsEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Edge labels.
        labels: Vec<Label>,
        /// The series that *is* this edge's content.
        series: SeriesId,
    },
    /// Set a property on a pg-element or subgraph (φ).
    SetProperty {
        /// Target element.
        el: ElementRef,
        /// Property key.
        key: String,
        /// Scalar or series-valued property.
        value: PropertyValue,
    },
    /// End a vertex's validity at `t`.
    CloseVertex {
        /// The vertex.
        v: VertexId,
        /// Closing time.
        t: Timestamp,
    },
    /// End an edge's validity at `t`.
    CloseEdge {
        /// The edge.
        e: EdgeId,
        /// Closing time.
        t: Timestamp,
    },
    /// Create a logical subgraph (id allocated densely on replay).
    CreateSubgraph {
        /// Subgraph labels.
        labels: Vec<Label>,
        /// Subgraph properties.
        props: PropertyMap,
        /// Validity interval ρ(s).
        validity: Interval,
    },
    /// Add a vertex to a subgraph for `during`.
    AddSubgraphVertex {
        /// The subgraph.
        s: SubgraphId,
        /// The member vertex.
        v: VertexId,
        /// Membership interval.
        during: Interval,
    },
    /// Add an edge to a subgraph for `during`.
    AddSubgraphEdge {
        /// The subgraph.
        s: SubgraphId,
        /// The member edge.
        e: EdgeId,
        /// Membership interval.
        during: Interval,
    },
}

fn encode_element_ref(el: &ElementRef, w: &mut ByteWriter) {
    match el {
        ElementRef::Vertex(v) => {
            w.u8(0);
            w.u64(v.raw());
        }
        ElementRef::Edge(e) => {
            w.u8(1);
            w.u64(e.raw());
        }
        ElementRef::Subgraph(s) => {
            w.u8(2);
            w.u64(s.raw());
        }
    }
}

fn decode_element_ref(r: &mut ByteReader<'_>) -> Result<ElementRef> {
    Ok(match r.u8()? {
        0 => ElementRef::Vertex(VertexId::new(r.u64()?)),
        1 => ElementRef::Edge(EdgeId::new(r.u64()?)),
        2 => ElementRef::Subgraph(SubgraphId::new(r.u64()?)),
        tag => return Err(corrupt_tag("element-ref", tag)),
    })
}

impl Durable for HyGraph {
    type Mutation = HgMutation;
    const STORE_TAG: [u8; 4] = *b"HYGR";

    fn fresh() -> Self {
        HyGraph::new()
    }

    fn encode_state(&self, w: &mut ByteWriter) {
        hygraph_core::binio::encode_hygraph(self, w);
    }

    fn decode_state(r: &mut ByteReader<'_>) -> Result<Self> {
        hygraph_core::binio::decode_hygraph(r)
    }

    fn encode_mutation(m: &HgMutation, w: &mut ByteWriter) {
        match m {
            HgMutation::AddSeries { names, rows } => {
                w.u8(0);
                w.len_of(names.len());
                for n in names {
                    w.str(n);
                }
                w.len_of(rows.len());
                for (t, row) in rows {
                    w.timestamp(*t);
                    w.len_of(row.len());
                    for &v in row {
                        w.f64(v);
                    }
                }
            }
            HgMutation::Append { series, t, row } => {
                w.u8(1);
                w.u64(series.raw());
                w.timestamp(*t);
                w.len_of(row.len());
                for &v in row {
                    w.f64(v);
                }
            }
            HgMutation::AddPgVertex {
                labels,
                props,
                validity,
            } => {
                w.u8(2);
                w.labels(labels);
                w.property_map(props);
                w.interval(validity);
            }
            HgMutation::AddTsVertex { labels, series } => {
                w.u8(3);
                w.labels(labels);
                w.u64(series.raw());
            }
            HgMutation::AddPgEdge {
                src,
                dst,
                labels,
                props,
                validity,
            } => {
                w.u8(4);
                w.u64(src.raw());
                w.u64(dst.raw());
                w.labels(labels);
                w.property_map(props);
                w.interval(validity);
            }
            HgMutation::AddTsEdge {
                src,
                dst,
                labels,
                series,
            } => {
                w.u8(5);
                w.u64(src.raw());
                w.u64(dst.raw());
                w.labels(labels);
                w.u64(series.raw());
            }
            HgMutation::SetProperty { el, key, value } => {
                w.u8(6);
                encode_element_ref(el, w);
                w.str(key);
                w.property_value(value);
            }
            HgMutation::CloseVertex { v, t } => {
                w.u8(7);
                w.u64(v.raw());
                w.timestamp(*t);
            }
            HgMutation::CloseEdge { e, t } => {
                w.u8(8);
                w.u64(e.raw());
                w.timestamp(*t);
            }
            HgMutation::CreateSubgraph {
                labels,
                props,
                validity,
            } => {
                w.u8(9);
                w.labels(labels);
                w.property_map(props);
                w.interval(validity);
            }
            HgMutation::AddSubgraphVertex { s, v, during } => {
                w.u8(10);
                w.u64(s.raw());
                w.u64(v.raw());
                w.interval(during);
            }
            HgMutation::AddSubgraphEdge { s, e, during } => {
                w.u8(11);
                w.u64(s.raw());
                w.u64(e.raw());
                w.interval(during);
            }
        }
    }

    fn decode_mutation(r: &mut ByteReader<'_>) -> Result<HgMutation> {
        Ok(match r.u8()? {
            0 => {
                let n = r.len_of()?;
                let mut names = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    names.push(r.str()?);
                }
                let n = r.len_of()?;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let t = r.timestamp()?;
                    let k = r.len_of()?;
                    let mut row = Vec::with_capacity(k.min(1 << 16));
                    for _ in 0..k {
                        row.push(r.f64()?);
                    }
                    rows.push((t, row));
                }
                HgMutation::AddSeries { names, rows }
            }
            1 => {
                let series = SeriesId::new(r.u64()?);
                let t = r.timestamp()?;
                let k = r.len_of()?;
                let mut row = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    row.push(r.f64()?);
                }
                HgMutation::Append { series, t, row }
            }
            2 => HgMutation::AddPgVertex {
                labels: r.labels()?,
                props: r.property_map()?,
                validity: r.interval()?,
            },
            3 => HgMutation::AddTsVertex {
                labels: r.labels()?,
                series: SeriesId::new(r.u64()?),
            },
            4 => HgMutation::AddPgEdge {
                src: VertexId::new(r.u64()?),
                dst: VertexId::new(r.u64()?),
                labels: r.labels()?,
                props: r.property_map()?,
                validity: r.interval()?,
            },
            5 => HgMutation::AddTsEdge {
                src: VertexId::new(r.u64()?),
                dst: VertexId::new(r.u64()?),
                labels: r.labels()?,
                series: SeriesId::new(r.u64()?),
            },
            6 => HgMutation::SetProperty {
                el: decode_element_ref(r)?,
                key: r.str()?,
                value: r.property_value()?,
            },
            7 => HgMutation::CloseVertex {
                v: VertexId::new(r.u64()?),
                t: r.timestamp()?,
            },
            8 => HgMutation::CloseEdge {
                e: EdgeId::new(r.u64()?),
                t: r.timestamp()?,
            },
            9 => HgMutation::CreateSubgraph {
                labels: r.labels()?,
                props: r.property_map()?,
                validity: r.interval()?,
            },
            10 => HgMutation::AddSubgraphVertex {
                s: SubgraphId::new(r.u64()?),
                v: VertexId::new(r.u64()?),
                during: r.interval()?,
            },
            11 => HgMutation::AddSubgraphEdge {
                s: SubgraphId::new(r.u64()?),
                e: EdgeId::new(r.u64()?),
                during: r.interval()?,
            },
            tag => return Err(corrupt_tag("HyGraph", tag)),
        })
    }

    fn apply(&mut self, m: &HgMutation) -> Result<()> {
        match m {
            HgMutation::AddSeries { names, rows } => {
                let mut s = MultiSeries::new(names.iter().cloned());
                for (t, row) in rows {
                    s.push(*t, row)?;
                }
                self.add_series(s);
                Ok(())
            }
            HgMutation::Append { series, t, row } => self.append(*series, *t, row),
            HgMutation::AddPgVertex {
                labels,
                props,
                validity,
            } => {
                self.add_pg_vertex_valid(labels.iter().cloned(), props.clone(), *validity);
                Ok(())
            }
            HgMutation::AddTsVertex { labels, series } => {
                self.add_ts_vertex(labels.iter().cloned(), *series)?;
                Ok(())
            }
            HgMutation::AddPgEdge {
                src,
                dst,
                labels,
                props,
                validity,
            } => {
                self.add_pg_edge_valid(
                    *src,
                    *dst,
                    labels.iter().cloned(),
                    props.clone(),
                    *validity,
                )?;
                Ok(())
            }
            HgMutation::AddTsEdge {
                src,
                dst,
                labels,
                series,
            } => {
                self.add_ts_edge(*src, *dst, labels.iter().cloned(), *series)?;
                Ok(())
            }
            HgMutation::SetProperty { el, key, value } => {
                self.set_property(*el, key.clone(), value.clone())
            }
            HgMutation::CloseVertex { v, t } => self.close_vertex(*v, *t),
            HgMutation::CloseEdge { e, t } => self.close_edge(*e, *t),
            HgMutation::CreateSubgraph {
                labels,
                props,
                validity,
            } => {
                self.create_subgraph(labels.iter().cloned(), props.clone(), *validity);
                Ok(())
            }
            HgMutation::AddSubgraphVertex { s, v, during } => {
                self.add_subgraph_vertex(*s, *v, *during)
            }
            HgMutation::AddSubgraphEdge { s, e, during } => self.add_subgraph_edge(*s, *e, *during),
        }
    }
}

// ---- shard routing ----------------------------------------------------

impl crate::sharded::ShardRouted for HgMutation {
    /// Observation traffic — the hot path by volume — is pinned to the
    /// shard that owns its series, co-locating a ts-element's WAL frames
    /// with the series they feed. Structural mutations (vertices, edges,
    /// subgraphs, property writes) have no single-shard affinity and let
    /// the store spread them by commit sequence number.
    fn shard_affinity(&self, router: &ShardRouter) -> Option<usize> {
        match self {
            HgMutation::Append { series, .. }
            | HgMutation::AddTsVertex { series, .. }
            | HgMutation::AddTsEdge { series, .. } => Some(router.of_series(*series)),
            _ => None,
        }
    }
}

impl crate::sharded::ShardRouted for TsMutation {
    /// Every ts-store mutation names its series, so everything routes to
    /// the series' home shard.
    fn shard_affinity(&self, router: &ShardRouter) -> Option<usize> {
        let sid = match self {
            TsMutation::CreateSeries(id)
            | TsMutation::Insert(id, ..)
            | TsMutation::DropSeries(id)
            | TsMutation::RetainFrom(id, ..) => *id,
        };
        Some(router.of_series(sid))
    }
}

impl crate::sharded::ShardRouted for StoreMutation {
    /// Observations follow their station's shard; station/trip creation
    /// (allocated densely on replay) spreads by commit sequence number.
    fn shard_affinity(&self, router: &ShardRouter) -> Option<usize> {
        match self {
            StoreMutation::Observe { station, .. } => Some(router.of_vertex(*station)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurableStore;
    use crate::fault::scratch_dir;

    fn roundtrip_mutation<S: Durable>(m: &S::Mutation) -> S::Mutation {
        let mut w = ByteWriter::new();
        S::encode_mutation(m, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = S::decode_mutation(&mut r).expect("decodes");
        r.expect_exhausted().expect("no trailing bytes");
        back
    }

    #[test]
    fn ts_mutations_roundtrip() {
        let ms = [
            TsMutation::CreateSeries(SeriesId::new(3)),
            TsMutation::Insert(SeriesId::new(3), Timestamp::from_millis(99), -1.25),
            TsMutation::DropSeries(SeriesId::new(7)),
            TsMutation::RetainFrom(SeriesId::new(3), Timestamp::from_millis(50)),
        ];
        for m in &ms {
            assert_eq!(&roundtrip_mutation::<TsStore>(m), m);
        }
    }

    #[test]
    fn store_mutations_roundtrip() {
        let mut props = PropertyMap::new();
        props.set("capacity", hygraph_types::Value::Int(30));
        let ms = [
            StoreMutation::AddStation {
                labels: vec![Label::new("Station")],
                props: props.clone(),
            },
            StoreMutation::AddTrip {
                src: VertexId::new(0),
                dst: VertexId::new(1),
                labels: vec![Label::new("Trip")],
                props,
            },
            StoreMutation::Observe {
                station: VertexId::new(0),
                t: Timestamp::from_millis(1234),
                value: 17.0,
            },
        ];
        for m in &ms {
            assert_eq!(&roundtrip_mutation::<AllInGraphStore>(m), m);
            assert_eq!(&roundtrip_mutation::<PolyglotStore>(m), m);
        }
    }

    #[test]
    fn hygraph_mutations_roundtrip() {
        let mut props = PropertyMap::new();
        props.set("name", hygraph_types::Value::Str("a".into()));
        let ms = [
            HgMutation::AddSeries {
                names: vec!["x".into(), "y".into()],
                rows: vec![(Timestamp::from_millis(1), vec![0.5, -0.5])],
            },
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(2),
                row: vec![1.0, 2.0],
            },
            HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: props.clone(),
                validity: Interval::ALL,
            },
            HgMutation::AddTsVertex {
                labels: vec![Label::new("Sensor")],
                series: SeriesId::new(0),
            },
            HgMutation::AddPgEdge {
                src: VertexId::new(0),
                dst: VertexId::new(1),
                labels: vec![Label::new("knows")],
                props: props.clone(),
                validity: Interval::ALL,
            },
            HgMutation::AddTsEdge {
                src: VertexId::new(0),
                dst: VertexId::new(1),
                labels: vec![Label::new("flow")],
                series: SeriesId::new(0),
            },
            HgMutation::SetProperty {
                el: ElementRef::Vertex(VertexId::new(0)),
                key: "age".into(),
                value: PropertyValue::Static(hygraph_types::Value::Int(44)),
            },
            HgMutation::CloseVertex {
                v: VertexId::new(0),
                t: Timestamp::from_millis(9),
            },
            HgMutation::CloseEdge {
                e: EdgeId::new(0),
                t: Timestamp::from_millis(9),
            },
            HgMutation::CreateSubgraph {
                labels: vec![Label::new("Community")],
                props,
                validity: Interval::ALL,
            },
            HgMutation::AddSubgraphVertex {
                s: SubgraphId::new(0),
                v: VertexId::new(0),
                during: Interval::ALL,
            },
            HgMutation::AddSubgraphEdge {
                s: SubgraphId::new(0),
                e: EdgeId::new(0),
                during: Interval::ALL,
            },
        ];
        for m in &ms {
            assert_eq!(&roundtrip_mutation::<HyGraph>(m), m);
        }
    }

    #[test]
    fn unknown_mutation_tag_is_corrupt_not_panic() {
        let bytes = [255u8, 0, 0, 0];
        let mut r = ByteReader::new(&bytes);
        assert!(<TsStore as Durable>::decode_mutation(&mut r).is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(<HyGraph as Durable>::decode_mutation(&mut r).is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(<AllInGraphStore as Durable>::decode_mutation(&mut r).is_err());
    }

    #[test]
    fn durable_ts_store_survives_reopen() {
        let dir = scratch_dir("durable-ts");
        let sid = SeriesId::new(0);
        {
            let mut store: DurableStore<TsStore> = DurableStore::open(&dir).unwrap();
            store.commit(TsMutation::CreateSeries(sid)).unwrap();
            let batch: Vec<_> = (0..100)
                .map(|i| TsMutation::Insert(sid, Timestamp::from_millis(i * 1000), i as f64))
                .collect();
            store.commit_batch(batch).unwrap();
            store.close().unwrap();
        }
        let store: DurableStore<TsStore> = DurableStore::open(&dir).unwrap();
        assert_eq!(store.get().len(sid), 100);
        assert_eq!(
            store.get().value_at(sid, Timestamp::from_millis(42_000)),
            Some(42.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_hygraph_replay_reproduces_ids_and_bits() {
        let dir = scratch_dir("durable-hg");
        let golden = {
            let mut store: DurableStore<HyGraph> = DurableStore::open(&dir).unwrap();
            store
                .commit(HgMutation::AddSeries {
                    names: vec!["avail".into()],
                    rows: vec![],
                })
                .unwrap();
            store
                .commit(HgMutation::AddTsVertex {
                    labels: vec![Label::new("Station")],
                    series: SeriesId::new(0),
                })
                .unwrap();
            store
                .commit(HgMutation::AddPgVertex {
                    labels: vec![Label::new("User")],
                    props: PropertyMap::new(),
                    validity: Interval::ALL,
                })
                .unwrap();
            store
                .commit(HgMutation::Append {
                    series: SeriesId::new(0),
                    t: Timestamp::from_millis(5),
                    row: vec![3.5],
                })
                .unwrap();
            store.state_bytes()
            // store dropped without close: the commits are already synced
        };
        let store: DurableStore<HyGraph> = DurableStore::open(&dir).unwrap();
        assert_eq!(store.state_bytes(), golden, "recovery is bit-identical");
        assert_eq!(store.get().vertex_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutation_never_reaches_the_log() {
        let dir = scratch_dir("durable-reject");
        {
            let mut store: DurableStore<PolyglotStore> = DurableStore::open(&dir).unwrap();
            store
                .commit(StoreMutation::AddStation {
                    labels: vec![Label::new("Station")],
                    props: PropertyMap::new(),
                })
                .unwrap();
            let before = store.next_lsn();
            // observing an unknown vertex is rejected by the state
            let err = store.commit(StoreMutation::Observe {
                station: VertexId::new(999),
                t: Timestamp::from_millis(0),
                value: 1.0,
            });
            assert!(err.is_err());
            assert_eq!(store.next_lsn(), before, "frame was retracted");
            store.close().unwrap();
        }
        // reopen replays cleanly — the rejected record is absent
        let store: DurableStore<PolyglotStore> = DurableStore::open(&dir).unwrap();
        assert_eq!(store.get().stations().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
    #[test]
    fn foreign_store_type_cannot_hijack_a_directory() {
        let dir = crate::fault::scratch_dir("foreign-open");
        {
            let mut store: DurableStore<TsStore> = DurableStore::open(&dir).unwrap();
            store
                .commit(TsMutation::CreateSeries(SeriesId::new(0)))
                .unwrap();
            store
                .commit(TsMutation::Insert(
                    SeriesId::new(0),
                    Timestamp::from_millis(0),
                    7.0,
                ))
                .unwrap();
            store.close().unwrap();
        }
        // opening the TsStore directory as a different store type is a
        // hard error and must not delete or rewrite anything
        let before: Vec<_> = {
            let mut names: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            names.sort();
            names
        };
        assert!(DurableStore::<PolyglotStore>::open(&dir).is_err());
        let after: Vec<_> = {
            let mut names: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            names.sort();
            names
        };
        assert_eq!(before, after, "foreign open mutated the directory");
        // the rightful owner still recovers everything
        let store: DurableStore<TsStore> = DurableStore::open(&dir).unwrap();
        assert_eq!(store.get().len(SeriesId::new(0)), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
