//! Process-free fault injection for the recovery test harness.
//!
//! Crashes are simulated by mutating on-disk state the way a real crash
//! would leave it — no subprocesses, no signals:
//!
//! * a torn append = the file truncated mid-frame ([`truncate_file`]);
//! * a damaged sector = one byte flipped ([`flip_byte`]);
//! * a crash at an arbitrary point = a byte-exact snapshot of the WAL
//!   directory taken earlier ([`snapshot_dir`]) and restored.
//!
//! [`FailingWriter`] additionally proves the write path propagates IO
//! errors: it accepts a byte quota and fails with `ErrorKind::Other`
//! once the quota is spent, after which the bytes that did get through
//! must parse as a clean (possibly empty) frame prefix.

use std::io;
use std::path::Path;

/// An [`io::Write`] sink that fails once its byte quota is exhausted,
/// keeping whatever was "written" before the fault — the in-memory
/// equivalent of a disk filling up or a device erroring mid-write.
#[derive(Debug)]
pub struct FailingWriter {
    written: Vec<u8>,
    remaining: usize,
}

impl FailingWriter {
    /// A writer that accepts exactly `quota` bytes, then errors.
    pub fn failing_after(quota: usize) -> Self {
        Self {
            written: Vec::new(),
            remaining: quota,
        }
    }

    /// The bytes that made it through before (or without) the fault.
    pub fn written(&self) -> &[u8] {
        &self.written
    }
}

impl io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write fault"));
        }
        let n = buf.len().min(self.remaining);
        self.written.extend_from_slice(&buf[..n]);
        self.remaining -= n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Truncates `path` to `len` bytes — a crash mid-append.
pub fn truncate_file(path: impl AsRef<Path>, len: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

/// Flips every bit of the byte at `offset` in `path` — a damaged sector.
pub fn flip_byte(path: impl AsRef<Path>, offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8];
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

/// Byte-exact recursive snapshot of a directory tree: returns
/// `(path relative to dir, contents)` pairs, with `/`-separated
/// relative paths. Covers both the flat single-WAL layout and the
/// sharded layout's `shards-*/shard-*/` subdirectories.
pub fn snapshot_dir(dir: impl AsRef<Path>) -> io::Result<Vec<(String, Vec<u8>)>> {
    fn walk(root: &Path, sub: &Path, out: &mut Vec<(String, Vec<u8>)>) -> io::Result<()> {
        for entry in std::fs::read_dir(root.join(sub))? {
            let entry = entry?;
            let rel = sub.join(entry.file_name());
            if entry.file_type()?.is_dir() {
                walk(root, &rel, out)?;
            } else if entry.file_type()?.is_file() {
                out.push((
                    rel.to_string_lossy().replace('\\', "/"),
                    std::fs::read(entry.path())?,
                ));
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(dir.as_ref(), Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

/// Restores a directory tree to a [`snapshot_dir`] state: extra files
/// (and directories emptied by their removal) are deleted, snapshot
/// files are rewritten byte-exactly — the disk as the crash left it.
pub fn restore_dir(dir: impl AsRef<Path>, snapshot: &[(String, Vec<u8>)]) -> io::Result<()> {
    fn prune(root: &Path, sub: &Path, snapshot: &[(String, Vec<u8>)]) -> io::Result<bool> {
        let mut emptied = true;
        for entry in std::fs::read_dir(root.join(sub))? {
            let entry = entry?;
            let rel = sub.join(entry.file_name());
            if entry.file_type()?.is_dir() {
                if prune(root, &rel, snapshot)? {
                    std::fs::remove_dir(entry.path())?;
                } else {
                    emptied = false;
                }
            } else {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if snapshot.iter().any(|(name, _)| *name == rel) {
                    emptied = false;
                } else {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(emptied)
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    prune(dir, Path::new(""), snapshot)?;
    for (name, contents) in snapshot {
        let path = dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, contents)?;
    }
    Ok(())
}

/// A fresh scratch directory under the system temp dir, unique per
/// process and call.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hygraph-wal-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn failing_writer_honours_quota() {
        let mut w = FailingWriter::failing_after(5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2, "partial write at the edge");
        assert!(w.write(b"h").is_err());
        assert_eq!(w.written(), b"abcde");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let dir = scratch_dir("snap");
        std::fs::write(dir.join("a.seg"), b"alpha").unwrap();
        std::fs::write(dir.join("b.seg"), b"beta").unwrap();
        let snap = snapshot_dir(&dir).unwrap();
        // mutate: modify one file, add another
        std::fs::write(dir.join("a.seg"), b"ALTERED").unwrap();
        std::fs::write(dir.join("c.seg"), b"new").unwrap();
        restore_dir(&dir, &snap).unwrap();
        let back = snapshot_dir(&dir).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_and_flip() {
        let dir = scratch_dir("mutate");
        let p = dir.join("x.bin");
        std::fs::write(&p, b"0123456789").unwrap();
        truncate_file(&p, 4).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"0123");
        flip_byte(&p, 0).unwrap();
        assert_eq!(std::fs::read(&p).unwrap()[0], b'0' ^ 0xFF);
        std::fs::remove_dir_all(&dir).ok();
    }
}
