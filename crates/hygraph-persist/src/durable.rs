//! The [`Durable`] trait and the [`DurableStore`] engine that wraps any
//! implementor with write-ahead logging, periodic checkpoints, and
//! crash recovery.
//!
//! # Protocol
//!
//! * **WAL before apply.** [`DurableStore::stage`] encodes the mutation
//!   and appends it to the log's group-commit batch *before* touching
//!   the in-memory state; if the state rejects the mutation, the frame
//!   is retracted (it was never synced), so the log only ever holds
//!   mutations that applied cleanly.
//! * **Committed = synced prefix.** Staged mutations become durable at
//!   the next [`DurableStore::sync`] / [`DurableStore::commit`] — one
//!   `write` + `fdatasync` for the whole batch (group commit).
//! * **Checkpoint, then purge.** [`DurableStore::checkpoint`] syncs the
//!   log, snapshots the full state at the current LSN, and only after
//!   the snapshot is fsynced rotates and purges segments the snapshot
//!   covers. A crash at any point leaves either the new checkpoint or
//!   the old checkpoint + the segments it needs.
//! * **Recovery.** [`DurableStore::open`] loads the newest *intact*
//!   checkpoint (torn ones are skipped and deleted), replays intact
//!   WAL frames above it, and truncates the log at the first torn or
//!   corrupt frame instead of failing — the recovered state is
//!   bit-identical to the committed state at the crash.
//!
//! One directory holds one store's log: segment and checkpoint files
//! carry the store's [`Durable::STORE_TAG`] as a guard against mixups,
//! but recovery treats unrecognised files as corruption, so never point
//! two stores at the same directory.

use crate::checkpoint;
use crate::config;
use crate::wal::Wal;
use hygraph_metrics as metrics;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// A store whose state and mutations have exact binary codecs — the
/// contract the WAL engine needs to make it durable.
pub trait Durable: Sized {
    /// The store's logged operation vocabulary.
    type Mutation;

    /// Four-byte tag stamped into segment and checkpoint headers.
    const STORE_TAG: [u8; 4];

    /// An empty store (the state before LSN 0).
    fn fresh() -> Self;

    /// Encodes the complete physical state. Must be deterministic and
    /// exact: `decode_state(encode_state(s))` re-encodes to the same
    /// bytes, bit for bit.
    fn encode_state(&self, w: &mut ByteWriter);

    /// Decodes a state written by [`Durable::encode_state`]. Input is
    /// untrusted: errors, never panics, on malformed bytes.
    fn decode_state(r: &mut ByteReader<'_>) -> Result<Self>;

    /// Encodes one mutation as a WAL record.
    fn encode_mutation(m: &Self::Mutation, w: &mut ByteWriter);

    /// Decodes a WAL record. Input is untrusted.
    fn decode_mutation(r: &mut ByteReader<'_>) -> Result<Self::Mutation>;

    /// Applies one mutation. Must be deterministic — replaying the same
    /// mutations against the same state reproduces every allocated id
    /// and every bit of the result.
    fn apply(&mut self, m: &Self::Mutation) -> Result<()>;
}

fn encode_record<S: Durable>(m: &S::Mutation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    S::encode_mutation(m, &mut w);
    w.into_bytes()
}

fn decode_record<S: Durable>(record: &[u8]) -> Result<S::Mutation> {
    let mut r = ByteReader::new(record);
    let m = S::decode_mutation(&mut r)?;
    r.expect_exhausted()?;
    Ok(m)
}

/// Observes a [`DurableStore::open_observed`] recovery: first the
/// recovered base state, then every replayed WAL record in LSN order —
/// enough for a history layer to rebuild its commit timeline from the
/// log without a second read pass.
pub trait RecoveryObserver<S: Durable> {
    /// The recovered base: the checkpoint's history watermark (commit
    /// timestamp of the newest covered transaction; 0 when untracked or
    /// legacy) and the exact state encoding at that point — the
    /// fresh-state encoding when the directory had no checkpoint.
    fn base(&mut self, watermark: i64, state: &[u8]);

    /// One replayed WAL record above the checkpoint, with its commit
    /// timestamp (0 for legacy v1 frames).
    fn replay(&mut self, lsn: u64, ts: i64, m: &S::Mutation);
}

/// A [`Durable`] store wrapped with a write-ahead log and checkpoints.
///
/// A committed mutation survives any crash: [`DurableStore::commit`]
/// appends to the WAL and fsyncs before applying, and
/// [`DurableStore::open`] recovers the newest intact checkpoint plus
/// the intact WAL suffix, bit-identically.
///
/// ```
/// use hygraph_persist::{DurableStore, TsMutation};
/// use hygraph_ts::TsStore;
/// use hygraph_types::{SeriesId, Timestamp};
///
/// let dir = std::env::temp_dir().join(format!("hygraph-doc-{}", std::process::id()));
/// let sid = SeriesId::new(0);
/// {
///     let mut store: DurableStore<TsStore> = DurableStore::open(&dir)?;
///     store.commit(TsMutation::CreateSeries(sid))?;
///     store.commit(TsMutation::Insert(sid, Timestamp::from_millis(0), 1.5))?;
/// } // dropped without a clean shutdown — the commits are on disk
///
/// let store: DurableStore<TsStore> = DurableStore::open(&dir)?;
/// assert_eq!(store.get().value_at(sid, Timestamp::from_millis(0)), Some(1.5));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
pub struct DurableStore<S: Durable> {
    state: S,
    wal: Wal,
    checkpoint_lsn: u64,
    /// Whether an intact checkpoint at `checkpoint_lsn` exists on disk —
    /// false only while `open`/`create` bootstrap a fresh directory, so
    /// the initial checkpoint is never skipped as "already written".
    checkpoint_on_disk: bool,
    /// Records staged since the last checkpoint (drives auto-checkpoint).
    since_checkpoint: u64,
    /// Commit timestamp stamped onto subsequently staged WAL frames and
    /// persisted as the checkpoint watermark — the highest transaction
    /// time this store has seen (0 when the caller tracks none).
    commit_ts: i64,
}

impl<S: Durable> DurableStore<S> {
    /// Opens (or initialises) the store in `dir`, recovering committed
    /// state after a crash: newest intact checkpoint + intact WAL
    /// suffix, truncated at the first torn frame.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_impl(dir.into(), None)
    }

    /// [`DurableStore::open`], reporting the recovered base state and
    /// every replayed WAL record to `observer` (in LSN order, with
    /// commit timestamps) — the hook a history layer uses to seed its
    /// commit timeline from the log.
    pub fn open_observed(
        dir: impl Into<PathBuf>,
        observer: &mut dyn RecoveryObserver<S>,
    ) -> Result<Self> {
        Self::open_impl(dir.into(), Some(observer))
    }

    fn open_impl(dir: PathBuf, mut observer: Option<&mut dyn RecoveryObserver<S>>) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let segment_bytes = config::configured_segment_bytes();

        let (checkpoint_lsn, watermark, mut state) =
            match checkpoint::load_latest(&dir, S::STORE_TAG)? {
                Some((lsn, watermark, payload)) => {
                    if payload.starts_with(crate::sharded::SHARD_META_MAGIC) {
                        return Err(HyGraphError::shard_layout(format!(
                            "{} holds a hash-sharded log (per-shard WAL streams); \
                             open it with ShardedStore (HYGRAPH_SHARDS > 1), not the \
                             single-WAL DurableStore",
                            dir.display()
                        )));
                    }
                    let mut r = ByteReader::new(&payload);
                    let state = S::decode_state(&mut r)?;
                    r.expect_exhausted()?;
                    // anything newer than the checkpoint we just loaded
                    // failed to load — torn; clear the namespace
                    checkpoint::purge_newer_than(&dir, lsn)?;
                    (lsn, watermark, state)
                }
                None => (0, 0, S::fresh()),
            };

        if let Some(o) = observer.as_deref_mut() {
            let mut w = ByteWriter::new();
            state.encode_state(&mut w);
            o.base(watermark, &w.into_bytes());
        }
        let mut commit_ts = watermark;
        let wal = Wal::recover(
            &dir,
            S::STORE_TAG,
            segment_bytes,
            checkpoint_lsn,
            |lsn, ts, record| {
                let m = decode_record::<S>(record)?;
                state.apply(&m)?;
                commit_ts = commit_ts.max(ts);
                if let Some(o) = observer.as_deref_mut() {
                    o.replay(lsn, ts, &m);
                }
                Ok(())
            },
        )?;

        let checkpoint_on_disk = !checkpoint::list_checkpoints(&dir)?.is_empty();
        let mut store = Self {
            state,
            wal,
            checkpoint_lsn,
            checkpoint_on_disk,
            since_checkpoint: 0,
            commit_ts,
        };
        if !checkpoint_on_disk {
            // first open of a fresh directory: pin the empty state so
            // recovery always has a checkpoint to start from
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Opens the store under `$HYGRAPH_WAL_DIR/<sub>`.
    pub fn open_default(sub: &str) -> Result<Self> {
        let base = config::configured_wal_dir().ok_or_else(|| {
            HyGraphError::invalid("HYGRAPH_WAL_DIR is not set; use DurableStore::open(dir)")
        })?;
        Self::open(base.join(sub))
    }

    /// Creates a durable store in an *empty* `dir` from an existing
    /// in-memory state (the bulk-load-then-go-durable path): writes the
    /// initial checkpoint of `initial` at LSN 0.
    pub fn create(dir: impl Into<PathBuf>, initial: S) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if !checkpoint::list_checkpoints(&dir)?.is_empty()
            || !crate::wal::list_segments(&dir)?.is_empty()
        {
            return Err(HyGraphError::invalid(format!(
                "DurableStore::create: {} already holds a log",
                dir.display()
            )));
        }
        let wal = Wal::create(&dir, S::STORE_TAG, config::configured_segment_bytes())?;
        let mut store = Self {
            state: initial,
            wal,
            checkpoint_lsn: 0,
            checkpoint_on_disk: false,
            since_checkpoint: 0,
            commit_ts: 0,
        };
        store.checkpoint()?;
        Ok(store)
    }

    /// The wrapped state. All mutation goes through
    /// [`DurableStore::commit`] / [`DurableStore::stage`]; reads are
    /// direct.
    pub fn get(&self) -> &S {
        &self.state
    }

    /// Stages one mutation: WAL-append, then apply. Returns its LSN.
    /// Not durable until the next [`DurableStore::sync`]. A mutation
    /// the state rejects is retracted from the log and the error
    /// returned.
    pub fn stage(&mut self, m: S::Mutation) -> Result<u64> {
        let record = encode_record::<S>(&m);
        let mark = self.wal.mark();
        let lsn = self.wal.append(self.commit_ts, &record);
        match self.state.apply(&m) {
            Ok(()) => {
                self.since_checkpoint += 1;
                Ok(lsn)
            }
            Err(e) => {
                self.wal.rollback_to(mark);
                Err(e)
            }
        }
    }

    /// Commits one mutation: stage + fsync. On return it is durable.
    pub fn commit(&mut self, m: S::Mutation) -> Result<u64> {
        let lsn = self.stage(m)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Group commit: stages every mutation, then makes the whole batch
    /// durable with a single fsync. Returns the batch's LSN range. If a
    /// mutation is rejected the batch stops there — earlier mutations
    /// stay staged (and the sync of that prefix is still attempted) —
    /// and the rejection is returned with priority over a sync failure,
    /// so callers can tell a rejected mutation from an I/O error (a
    /// persistent I/O failure resurfaces on the next durability call).
    pub fn commit_batch(
        &mut self,
        mutations: impl IntoIterator<Item = S::Mutation>,
    ) -> Result<Range<u64>> {
        let start = self.wal.next_lsn();
        let mut staged = Ok(());
        for m in mutations {
            if let Err(e) = self.stage(m) {
                staged = Err(e);
                break;
            }
        }
        let end = self.wal.next_lsn();
        let synced = self.sync();
        staged.and(synced).map(|()| start..end)
    }

    /// Makes every staged mutation durable (one fsync for the batch),
    /// then checkpoints automatically if the configured interval
    /// (`HYGRAPH_CHECKPOINT_EVERY`) has elapsed.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()?;
        let every = config::configured_checkpoint_every();
        if every > 0 && self.since_checkpoint >= every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Snapshots the full state at the current LSN, then rotates the
    /// log and purges segments and checkpoints the snapshot supersedes.
    ///
    /// On a quiescent store (no mutations since the last checkpoint)
    /// this is a no-op: the checkpoint on disk already captures the
    /// exact state, and rewriting it would only put the sole intact
    /// snapshot back at risk for nothing.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.wal.sync()?;
        let lsn = self.wal.next_lsn();
        if self.checkpoint_on_disk && lsn == self.checkpoint_lsn {
            return Ok(());
        }
        let start = std::time::Instant::now();
        let bytes = self.state_bytes();
        checkpoint::write_checkpoint(self.wal.dir(), S::STORE_TAG, lsn, self.commit_ts, &bytes)?;
        // only after the snapshot is durable may its inputs be deleted
        checkpoint::purge_older(self.wal.dir(), lsn)?;
        self.wal.rotate();
        self.wal.purge_up_to(lsn)?;
        self.checkpoint_lsn = lsn;
        self.checkpoint_on_disk = true;
        self.since_checkpoint = 0;
        if let Some(m) = metrics::get() {
            m.persist.checkpoints.inc();
            m.persist.checkpoint_us.observe_duration(start.elapsed());
        }
        Ok(())
    }

    /// The exact state encoding — what a checkpoint at this instant
    /// would contain; recovery tests compare these bytes for
    /// bit-identity.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.state.encode_state(&mut w);
        w.into_bytes()
    }

    /// LSN the next mutation will receive.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Everything below this LSN is durable.
    pub fn durable_lsn(&self) -> u64 {
        self.wal.durable_lsn()
    }

    /// LSN of the newest durable checkpoint.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn
    }

    /// Sets the commit timestamp stamped onto subsequently staged WAL
    /// frames (and persisted as the next checkpoint's watermark). The
    /// caller allocates timestamps and keeps them monotonic; call this
    /// *before* staging the batch the timestamp belongs to.
    pub fn set_commit_ts(&mut self, ts: i64) {
        self.commit_ts = ts;
    }

    /// The highest transaction time this store has seen: the last
    /// [`DurableStore::set_commit_ts`] value, or on open the maximum of
    /// the checkpoint watermark and every replayed frame's timestamp.
    pub fn history_watermark(&self) -> i64 {
        self.commit_ts
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        self.wal.dir()
    }

    /// Flushes staged mutations and closes the store.
    pub fn close(mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Flushes staged mutations and dismantles the store, handing the
    /// in-memory state to the caller — the seam the sharded layout
    /// migration uses to lift a legacy single-WAL store into per-shard
    /// streams without a byte-level state copy.
    pub fn into_state(mut self) -> Result<S> {
        self.wal.sync()?;
        Ok(self.state)
    }
}

impl<S: Durable> std::fmt::Debug for DurableStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir())
            .field("next_lsn", &self.next_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .field("checkpoint_lsn", &self.checkpoint_lsn)
            .finish()
    }
}
