//! CRC-guarded WAL frame encoding.
//!
//! Every record in a segment is one frame:
//!
//! ```text
//! ┌───────────┬───────────┬──────────────────────────────┐
//! │ len  u32  │ crc  u32  │ payload (len bytes)          │
//! │ LE        │ LE        │   = LSN varint ++ record     │
//! └───────────┴───────────┴──────────────────────────────┘
//! ```
//!
//! `crc` is the CRC-32/ISO-HDLC checksum of the payload. A torn write
//! (crash mid-append) leaves either a short header, a short payload, or
//! a payload whose checksum disagrees — all three are detected by
//! [`read_frame`] and surface as [`FrameOutcome::Torn`], which the
//! recovery path treats as "the log ends here".

use hygraph_types::bytes::{crc32, ByteReader, ByteWriter};
use hygraph_types::{HyGraphError, Result};

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Hard cap on a single frame's payload — a corrupted length field must
/// not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// Appends one frame carrying `lsn` and `record` to `out`.
pub fn append_frame(out: &mut Vec<u8>, lsn: u64, record: &[u8]) {
    let mut payload = ByteWriter::with_capacity(10 + record.len());
    payload.u64(lsn);
    payload.raw(record);
    let payload = payload.into_bytes();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Writes one frame through an arbitrary [`std::io::Write`] sink —
/// exercised against [`crate::fault::FailingWriter`] to prove IO errors
/// propagate instead of corrupting silently.
pub fn write_frame<W: std::io::Write>(out: &mut W, lsn: u64, record: &[u8]) -> Result<()> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + 10 + record.len());
    append_frame(&mut buf, lsn, record);
    out.write_all(&buf)?;
    Ok(())
}

/// The result of attempting to read one frame at an offset.
#[derive(Debug)]
pub enum FrameOutcome<'a> {
    /// A valid frame: its LSN, the record bytes, and the offset just
    /// past the frame.
    Frame {
        /// Log sequence number carried by the frame.
        lsn: u64,
        /// The record payload (without the LSN prefix).
        record: &'a [u8],
        /// Byte offset of the next frame.
        next_offset: usize,
    },
    /// Clean end of segment: `offset == buf.len()`.
    End,
    /// A torn or corrupt frame starts at this offset; recovery truncates
    /// the segment here.
    Torn,
}

/// Reads the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameOutcome<'_> {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    let Some(header) = buf.get(offset..offset + FRAME_HEADER_BYTES) else {
        return FrameOutcome::Torn;
    };
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME_BYTES {
        return FrameOutcome::Torn;
    }
    let start = offset + FRAME_HEADER_BYTES;
    let Some(payload) = buf.get(start..start + len as usize) else {
        return FrameOutcome::Torn;
    };
    if crc32(payload) != crc {
        return FrameOutcome::Torn;
    }
    let mut r = ByteReader::new(payload);
    let Ok(lsn) = r.u64() else {
        return FrameOutcome::Torn;
    };
    let record = &payload[r.position()..];
    FrameOutcome::Frame {
        lsn,
        record,
        next_offset: start + len as usize,
    }
}

/// Decodes every valid frame of `buf`, returning `(frames, valid_len)`
/// where `valid_len` is the byte length of the intact prefix. Frames
/// after the first torn one are unreachable by construction — the log
/// is append-only, so nothing valid can follow a torn write.
pub fn scan_frames(buf: &[u8]) -> (Vec<(u64, &[u8])>, usize) {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        match read_frame(buf, offset) {
            FrameOutcome::Frame {
                lsn,
                record,
                next_offset,
            } => {
                frames.push((lsn, record));
                offset = next_offset;
            }
            FrameOutcome::End | FrameOutcome::Torn => return (frames, offset),
        }
    }
}

/// Checks that `frames` carry strictly sequential LSNs starting at
/// `expected` — a gap means a frame vanished, which recovery must treat
/// as corruption rather than silently skipping.
pub fn check_sequential(frames: &[(u64, &[u8])], mut expected: u64) -> Result<()> {
    for &(lsn, _) in frames {
        if lsn != expected {
            return Err(HyGraphError::corrupt(format!(
                "WAL gap: expected LSN {expected}, found {lsn}"
            )));
        }
        expected += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 7, b"alpha");
        append_frame(&mut buf, 8, b"");
        append_frame(&mut buf, 9, b"gamma-record");
        let (frames, valid) = scan_frames(&buf);
        assert_eq!(valid, buf.len());
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], (7, &b"alpha"[..]));
        assert_eq!(frames[1], (8, &b""[..]));
        assert_eq!(frames[2], (9, &b"gamma-record"[..]));
        check_sequential(&frames, 7).unwrap();
        assert!(check_sequential(&frames, 6).is_err());
    }

    #[test]
    fn truncation_at_every_byte_never_panics_and_keeps_prefix() {
        let mut buf = Vec::new();
        for lsn in 0..5u64 {
            append_frame(&mut buf, lsn, format!("record-{lsn}").as_bytes());
        }
        let (all, _) = scan_frames(&buf);
        assert_eq!(all.len(), 5);
        let frame_starts: Vec<usize> = {
            let mut starts = vec![0usize];
            let mut off = 0;
            while let FrameOutcome::Frame { next_offset, .. } = read_frame(&buf, off) {
                starts.push(next_offset);
                off = next_offset;
            }
            starts
        };
        for cut in 0..buf.len() {
            let (frames, valid) = scan_frames(&buf[..cut]);
            // the intact prefix is exactly the whole frames before `cut`
            let expect_full = frame_starts.iter().filter(|&&s| s > 0 && s <= cut).count();
            assert_eq!(frames.len(), expect_full, "cut at {cut}");
            assert!(valid <= cut);
        }
    }

    #[test]
    fn corrupt_byte_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 0, b"first");
        append_frame(&mut buf, 1, b"second");
        let full = scan_frames(&buf).0.len();
        assert_eq!(full, 2);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let (frames, _) = scan_frames(&bad);
            // flipping any byte may only shorten the valid prefix, never
            // yield a frame that was not written
            assert!(frames.len() <= 2);
            for (lsn, rec) in frames {
                let want: &[u8] = if lsn == 0 { b"first" } else { b"second" };
                // a surviving frame is bit-exact or not reported at all
                if rec != want {
                    panic!("byte {i}: frame {lsn} decoded to altered record");
                }
            }
        }
    }

    #[test]
    fn oversized_length_field_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 64]);
        assert!(matches!(read_frame(&buf, 0), FrameOutcome::Torn));
        // zero-length frames are also invalid
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&crc32(b"").to_le_bytes());
        assert!(matches!(read_frame(&buf, 0), FrameOutcome::Torn));
    }

    #[test]
    fn write_frame_propagates_io_errors() {
        let mut sink = crate::fault::FailingWriter::failing_after(4);
        let err = write_frame(&mut sink, 0, b"record").unwrap_err();
        assert!(matches!(err, HyGraphError::Io(_)));
        // nothing partial is observable as a valid frame
        let (frames, _) = scan_frames(sink.written());
        assert!(frames.is_empty());
    }
}
