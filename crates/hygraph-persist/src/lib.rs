//! # hygraph-persist — durable storage engine
//!
//! Write-ahead logging, binary checkpoints, and crash recovery for the
//! HyGraph stores. The engine wraps any [`Durable`] state — the
//! chunked time-series store, the paper's two storage architectures,
//! and the full hybrid model all implement it — behind a
//! [`DurableStore`] that enforces the WAL protocol:
//!
//! 1. every mutation is appended to the log before it is applied;
//! 2. a commit is one group-committed `write` + `fdatasync`;
//! 3. checkpoints snapshot the full state and let the log be purged;
//! 4. recovery loads the newest intact checkpoint and replays the
//!    intact WAL suffix, truncating at the first torn frame — the
//!    recovered state is bit-identical to the committed state.
//!
//! ```
//! use hygraph_persist::{DurableStore, TsMutation};
//! use hygraph_ts::TsStore;
//! use hygraph_types::{SeriesId, Timestamp};
//!
//! let dir = hygraph_persist::fault::scratch_dir("doc");
//! let sid = SeriesId::new(0);
//! {
//!     let mut store: DurableStore<TsStore> = DurableStore::open(&dir)?;
//!     store.commit(TsMutation::CreateSeries(sid))?;
//!     store.commit(TsMutation::Insert(sid, Timestamp::from_millis(0), 1.5))?;
//! } // "crash": the store is dropped without a clean close
//! let store: DurableStore<TsStore> = DurableStore::open(&dir)?;
//! assert_eq!(store.get().value_at(sid, Timestamp::from_millis(0)), Some(1.5));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), hygraph_types::HyGraphError>(())
//! ```
//!
//! Knobs (see [`config`]): `HYGRAPH_WAL_DIR`,
//! `HYGRAPH_WAL_SEGMENT_BYTES`, `HYGRAPH_CHECKPOINT_EVERY`, or
//! programmatically via [`PersistConfig`].

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod fault;
pub mod frame;
pub mod sharded;
pub mod stores;
pub mod wal;

pub use config::PersistConfig;
pub use durable::{Durable, DurableStore, RecoveryObserver};
pub use sharded::{ShardRouted, ShardedStore};
pub use stores::{HgMutation, StoreMutation, TsMutation};
