//! Binary full-state checkpoints.
//!
//! A checkpoint file `ckpt-<lsn>.ck` (16-hex-digit LSN) captures the
//! complete store state as of that LSN:
//!
//! ```text
//! ┌─────────┬───────┬──────────┬──────────┬─────────────────────┐
//! │ "HGCK2" │ tag 4 │ len u32  │ crc u32  │ payload (len bytes) │
//! └─────────┴───────┴──────────┴──────────┴─────────────────────┘
//! payload = history watermark i64 LE (8 bytes) ++ state
//! ```
//!
//! The watermark is the commit timestamp (epoch ms) of the newest
//! transaction the snapshot covers — 0 when the store tracks no
//! transaction time. Placing it inside the payload keeps it under the
//! existing CRC. Legacy `HGCK1` files (no watermark; payload = state)
//! still load, reporting watermark 0; new checkpoints are always v2.
//!
//! Checkpoints are staged to a `.tmp` sibling and renamed over the
//! final name only after `fsync`: an existing intact checkpoint is
//! never truncated, and a crash mid-write leaves at most a stray
//! `.tmp` (ignored on load, swept by [`purge_older`]). Should a file
//! under the final name still end up with a length or CRC that
//! disagrees with its header, [`load_latest`] skips it and falls back
//! to the previous checkpoint — a scenario the fault-injection tests
//! exercise explicitly. After a checkpoint is fully synced, WAL
//! segments below its LSN are purged; never before, so the fallback
//! always has the log it needs.

use hygraph_types::bytes::crc32;
use hygraph_types::{HyGraphError, Result};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 5] = b"HGCK2";
const CKPT_MAGIC_V1: &[u8; 5] = b"HGCK1";
const CKPT_HEADER_BYTES: usize = CKPT_MAGIC.len() + 4 + 4 + 4;
/// Bytes of the watermark prefix inside a v2 payload.
const WATERMARK_BYTES: usize = 8;

fn checkpoint_name(lsn: u64) -> String {
    format!("ckpt-{lsn:016x}.ck")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Lists `(LSN, path)` of every checkpoint file in `dir`, sorted by LSN.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Writes and fsyncs a checkpoint of `state` at `lsn`, stamped with the
/// history `watermark` (commit timestamp of the newest covered
/// transaction; 0 when untracked). Returns its path.
///
/// The bytes are staged to a `.tmp` sibling and renamed into place
/// only after `fsync`, so a checkpoint already under the final name is
/// never truncated: a crash at any point leaves either the old file or
/// the complete new one.
pub fn write_checkpoint(
    dir: &Path,
    tag: [u8; 4],
    lsn: u64,
    watermark: i64,
    state: &[u8],
) -> Result<PathBuf> {
    let payload_len = state.len().saturating_add(WATERMARK_BYTES);
    let len = u32::try_from(payload_len).map_err(|_| {
        // refuse before any file is touched: an oversized length field
        // would be silently wrapped, and the unreadable checkpoint would
        // then license purging the WAL needed to recover
        HyGraphError::invalid(format!(
            "checkpoint state is {} bytes, above the {}-byte u32 header limit",
            state.len(),
            u32::MAX,
        ))
    })?;
    let path = dir.join(checkpoint_name(lsn));
    let tmp = dir.join(format!("{}.tmp", checkpoint_name(lsn)));
    {
        let mut payload = Vec::with_capacity(payload_len);
        payload.extend_from_slice(&watermark.to_le_bytes());
        payload.extend_from_slice(state);
        let mut file = File::create(&tmp)?;
        file.write_all(CKPT_MAGIC)?;
        file.write_all(&tag)?;
        file.write_all(&len.to_le_bytes())?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(path)
}

/// Validates one checkpoint file: `Ok(Some((watermark, state)))` if
/// intact, `Ok(None)` if torn/corrupt, `Err` if it is a healthy
/// checkpoint of a *different* store (intact magic, foreign tag) —
/// skipping that one silently would make the caller re-initialise over
/// live data.
fn read_checkpoint(path: &Path, tag: [u8; 4]) -> Result<Option<(i64, Vec<u8>)>> {
    let Ok(bytes) = std::fs::read(path) else {
        return Ok(None);
    };
    if bytes.len() < CKPT_HEADER_BYTES {
        return Ok(None);
    }
    let v2 = &bytes[..CKPT_MAGIC.len()] == CKPT_MAGIC;
    let v1 = &bytes[..CKPT_MAGIC.len()] == CKPT_MAGIC_V1;
    if !v1 && !v2 {
        return Ok(None);
    }
    if bytes[CKPT_MAGIC.len()..CKPT_MAGIC.len() + 4] != tag {
        return Err(HyGraphError::corrupt(format!(
            "checkpoint {} belongs to store tag {:?}, expected {:?}",
            path.display(),
            String::from_utf8_lossy(&bytes[CKPT_MAGIC.len()..CKPT_MAGIC.len() + 4]),
            String::from_utf8_lossy(&tag),
        )));
    }
    let len = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes"));
    let Some(payload) = bytes.get(CKPT_HEADER_BYTES..CKPT_HEADER_BYTES.saturating_add(len)) else {
        return Ok(None);
    };
    if bytes.len() != CKPT_HEADER_BYTES + len || crc32(payload) != crc {
        return Ok(None);
    }
    if v2 {
        // v2 payload = watermark prefix ++ state; too short is torn
        let Some(prefix) = payload.get(..WATERMARK_BYTES) else {
            return Ok(None);
        };
        let watermark = i64::from_le_bytes(prefix.try_into().expect("8 bytes"));
        Ok(Some((watermark, payload[WATERMARK_BYTES..].to_vec())))
    } else {
        Ok(Some((0, payload.to_vec())))
    }
}

/// Loads the newest *intact* checkpoint: torn or corrupt files are
/// skipped, falling back to older ones. Returns
/// `(lsn, watermark, state)` — watermark 0 for legacy v1 files.
/// A checkpoint belonging to a different store is a hard error.
pub fn load_latest(dir: &Path, tag: [u8; 4]) -> Result<Option<(u64, i64, Vec<u8>)>> {
    let mut candidates = list_checkpoints(dir)?;
    while let Some((lsn, path)) = candidates.pop() {
        if let Some((watermark, state)) = read_checkpoint(&path, tag)? {
            return Ok(Some((lsn, watermark, state)));
        }
    }
    Ok(None)
}

/// Deletes every checkpoint older than `keep_lsn` (the newest intact
/// one stays by construction, since its LSN equals `keep_lsn`), plus
/// any stray `.tmp` a crashed [`write_checkpoint`] left behind.
pub fn purge_older(dir: &Path, keep_lsn: u64) -> Result<()> {
    for (lsn, path) in list_checkpoints(dir)? {
        if lsn < keep_lsn {
            std::fs::remove_file(path)?;
        }
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("ckpt-") && name.ends_with(".ck.tmp") {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Deletes checkpoint files *newer* than `latest_valid_lsn` — by
/// definition torn (recovery just established that none of them load),
/// and left in place they would shadow the LSN namespace of future
/// checkpoints.
pub fn purge_newer_than(dir: &Path, latest_valid_lsn: u64) -> Result<()> {
    for (lsn, path) in list_checkpoints(dir)? {
        if lsn > latest_valid_lsn {
            std::fs::remove_file(path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{flip_byte, scratch_dir, truncate_file};

    const TAG: [u8; 4] = *b"TEST";

    #[test]
    fn write_load_roundtrip_picks_newest() {
        let dir = scratch_dir("ckpt");
        write_checkpoint(&dir, TAG, 5, 100, b"old-state").unwrap();
        write_checkpoint(&dir, TAG, 12, 250, b"new-state").unwrap();
        let (lsn, watermark, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!(lsn, 12);
        assert_eq!(watermark, 250);
        assert_eq!(payload, b"new-state");
        purge_older(&dir, 12).unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous() {
        let dir = scratch_dir("ckpt-torn");
        write_checkpoint(&dir, TAG, 3, 7, b"good").unwrap();
        let newer = write_checkpoint(&dir, TAG, 9, 8, b"doomed-by-crash").unwrap();
        let len = std::fs::metadata(&newer).unwrap().len();
        truncate_file(&newer, len - 4).unwrap();
        let (lsn, watermark, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!((lsn, watermark, payload.as_slice()), (3, 7, &b"good"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_detected_at_every_byte() {
        let dir = scratch_dir("ckpt-flip");
        let path = write_checkpoint(&dir, TAG, 1, 42, b"payload-bytes").unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        for off in 0..len {
            flip_byte(&path, off).unwrap();
            // a flipped tag byte surfaces as a hard error, every other
            // flip as "no intact checkpoint" — never as a clean load
            assert!(
                !matches!(load_latest(&dir, TAG), Ok(Some(_))),
                "flip at {off} accepted"
            );
            flip_byte(&path, off).unwrap(); // restore
        }
        assert!(load_latest(&dir, TAG).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_tag_is_a_hard_error() {
        let dir = scratch_dir("ckpt-tag");
        write_checkpoint(&dir, TAG, 1, 0, b"x").unwrap();
        assert!(load_latest(&dir, *b"OTHR").is_err(), "foreign store opened");
        // the file survives for its rightful owner
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        assert!(load_latest(&dir, TAG).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_at_same_lsn_never_truncates_the_intact_file() {
        let dir = scratch_dir("ckpt-rewrite");
        write_checkpoint(&dir, TAG, 7, 1, b"first").unwrap();
        // a rewrite at the same LSN replaces the file atomically…
        write_checkpoint(&dir, TAG, 7, 2, b"second").unwrap();
        let (lsn, _, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!((lsn, payload.as_slice()), (7, &b"second"[..]));
        // …and a crash mid-rewrite leaves only a torn .tmp, which can
        // neither shadow the intact file nor survive the next purge
        let tmp = dir.join("ckpt-0000000000000007.ck.tmp");
        std::fs::write(&tmp, b"HGCK2ga").unwrap();
        let (lsn, _, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!((lsn, payload.as_slice()), (7, &b"second"[..]));
        purge_older(&dir, 7).unwrap();
        assert!(!tmp.exists(), "stray tmp swept by purge");
        assert!(load_latest(&dir, TAG).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_state_checkpoint_roundtrips() {
        let dir = scratch_dir("ckpt-empty");
        write_checkpoint(&dir, TAG, 0, 0, b"").unwrap();
        let (lsn, watermark, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!(lsn, 0);
        assert_eq!(watermark, 0);
        assert!(payload.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_checkpoint_loads_with_zero_watermark() {
        let dir = scratch_dir("ckpt-v1");
        std::fs::create_dir_all(&dir).unwrap();
        // hand-write a v1 file: old magic, payload = state (no prefix)
        let state = b"v1-state-bytes";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CKPT_MAGIC_V1);
        bytes.extend_from_slice(&TAG);
        bytes.extend_from_slice(&(state.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(state).to_le_bytes());
        bytes.extend_from_slice(state);
        std::fs::write(dir.join("ckpt-0000000000000004.ck"), &bytes).unwrap();

        let (lsn, watermark, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!((lsn, watermark, payload.as_slice()), (4, 0, &state[..]));

        // a newer v2 checkpoint wins over it as usual
        write_checkpoint(&dir, TAG, 9, 777, b"v2-state").unwrap();
        let (lsn, watermark, payload) = load_latest(&dir, TAG).unwrap().unwrap();
        assert_eq!(
            (lsn, watermark, payload.as_slice()),
            (9, 777, &b"v2-state"[..])
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
