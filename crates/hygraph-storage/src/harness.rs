//! Timing harness regenerating Table 1: per-query mean response time
//! (MRS) and coefficient of variation (CV) for a backend.

use crate::backend::{QueryId, StorageBackend};
use hygraph_datagen::bike::BikeDataset;
use hygraph_types::{Duration, Interval, VertexId};
use rayon::prelude::*;
use std::time::Instant;

/// Measured statistics of one query on one backend.
#[derive(Clone, Copy, Debug)]
pub struct QueryStats {
    /// Which query.
    pub query: QueryId,
    /// Mean response time in milliseconds.
    pub mrs_ms: f64,
    /// Coefficient of variation in percent (stddev / mean · 100).
    pub cv_pct: f64,
    /// Number of timed runs.
    pub runs: usize,
    /// A checksum of the result (guards against dead-code elimination
    /// and lets callers verify backends agree).
    pub checksum: f64,
}

/// The standard Table-1 query parameters derived from a dataset.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Station for the single-station queries.
    pub station: VertexId,
    /// Hub station for Q7.
    pub hub: VertexId,
    /// One-day window (Q1).
    pub day: Interval,
    /// Seven-day window (Q2, Q7).
    pub week: Interval,
    /// Thirty-day (or full, if shorter) window (Q3, Q5, Q6).
    pub month: Interval,
    /// Full range (Q4, Q8).
    pub full: Interval,
    /// Q2 value filter.
    pub min_value: f64,
    /// Q5 k.
    pub k: usize,
    /// Q8 threshold.
    pub threshold: f64,
    /// Q8 minimum run length.
    pub min_run: usize,
}

impl Workload {
    /// Builds the standard workload for a dataset.
    pub fn for_dataset(d: &BikeDataset) -> Workload {
        let clamp = |dur: Duration| {
            let end = d.start + dur;
            Interval::new(d.start, end.min(d.end))
        };
        let hub = d
            .stations
            .iter()
            .copied()
            .max_by_key(|&s| d.graph.out_degree(s))
            .expect("non-empty dataset");
        // thresholds tuned so Q2/Q8 return non-trivial, non-universal sets
        let mean_avail = hygraph_ts::ops::stats::mean(d.availability[0].values()).unwrap_or(0.0);
        Workload {
            station: d.stations[0],
            hub,
            day: clamp(Duration::from_days(1)),
            week: clamp(Duration::from_days(7)),
            month: clamp(Duration::from_days(30)),
            full: Interval::new(d.start, d.end),
            min_value: mean_avail,
            k: 10,
            threshold: mean_avail * 0.5,
            min_run: 6,
        }
    }
}

/// Runs one query against a backend, returning a checksum that forces
/// full evaluation.
pub fn run_query<B: StorageBackend>(backend: &B, w: &Workload, q: QueryId) -> f64 {
    match q {
        QueryId::Q1 => backend
            .q1_range(w.station, &w.day)
            .iter()
            .map(|(t, v)| t.millis() as f64 * 1e-9 + v)
            .sum(),
        QueryId::Q2 => backend
            .q2_filtered(w.station, &w.week, w.min_value)
            .iter()
            .map(|(_, v)| v)
            .sum(),
        QueryId::Q3 => backend.q3_mean(w.station, &w.month).unwrap_or(0.0),
        QueryId::Q4 => backend.q4_mean_all(&w.full).iter().map(|(_, m)| m).sum(),
        QueryId::Q5 => backend
            .q5_top_k(&w.month, w.k)
            .iter()
            .map(|(s, m)| s.raw() as f64 + m)
            .sum(),
        QueryId::Q6 => backend
            .q6_daily(&w.month)
            .iter()
            .flat_map(|(_, rows)| rows.iter().map(|r| r.min + r.max + r.mean))
            .sum(),
        QueryId::Q7 => backend
            .q7_neighbour_means(w.hub, &w.week)
            .iter()
            .map(|(s, m)| s.raw() as f64 + m)
            .sum(),
        QueryId::Q8 => backend
            .q8_sustained_below(&w.full, w.threshold, w.min_run)
            .iter()
            .map(|s| s.raw() as f64)
            .sum(),
    }
}

/// Times `runs` executions of query `q` (after `warmup` untimed runs).
pub fn measure<B: StorageBackend>(
    backend: &B,
    w: &Workload,
    q: QueryId,
    warmup: usize,
    runs: usize,
) -> QueryStats {
    let mut checksum = 0.0;
    for _ in 0..warmup {
        checksum = run_query(backend, w, q);
    }
    let mut samples_ms = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        checksum = run_query(backend, w, q);
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mean = hygraph_ts::ops::stats::mean(&samples_ms).unwrap_or(0.0);
    let sd = hygraph_ts::ops::stats::stddev(&samples_ms).unwrap_or(0.0);
    QueryStats {
        query: q,
        mrs_ms: mean,
        cv_pct: if mean > 0.0 { sd / mean * 100.0 } else { 0.0 },
        runs,
        checksum,
    }
}

/// Measures the full eight-query workload on a backend.
pub fn measure_all<B: StorageBackend>(
    backend: &B,
    w: &Workload,
    warmup: usize,
    runs: usize,
) -> Vec<QueryStats> {
    QueryId::ALL
        .iter()
        .map(|&q| measure(backend, w, q, warmup, runs))
        .collect()
}

/// [`measure_all`] with the eight query trials fanned out across the
/// configured thread pool, one trial per query.
///
/// Checksums and row order are identical to the sequential harness
/// (queries are read-only and results collect in `QueryId::ALL` order);
/// only the wall clock of the whole suite changes. Per-query MRS/CV can
/// be inflated by cache and memory-bandwidth contention between
/// concurrent trials, so prefer [`measure_all`] for publishable numbers
/// and this variant for fast CI smoke trials on multi-core boxes.
pub fn measure_all_parallel<B: StorageBackend + Sync>(
    backend: &B,
    w: &Workload,
    warmup: usize,
    runs: usize,
) -> Vec<QueryStats> {
    QueryId::ALL
        .par_iter()
        .map(|&q| measure(backend, w, q, warmup, runs))
        .collect()
}

/// Renders the two-backend comparison in the paper's Table-1 layout.
pub fn render_table(baseline: &[QueryStats], polyglot: &[QueryStats]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>14} {:>8} {:>14} {:>8} {:>10}  Description",
        "Query", "AIG MRS (ms)", "CV (%)", "Poly MRS (ms)", "CV (%)", "Speedup"
    );
    for (b, p) in baseline.iter().zip(polyglot) {
        debug_assert_eq!(b.query, p.query);
        let speedup = if p.mrs_ms > 0.0 {
            b.mrs_ms / p.mrs_ms
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "{:<6} {:>14.3} {:>8.2} {:>14.3} {:>8.2} {:>9.1}x  {}",
            b.query.name(),
            b.mrs_ms,
            b.cv_pct,
            p.mrs_ms,
            p.cv_pct,
            speedup,
            b.query.describe()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllInGraphStore, PolyglotStore};
    use hygraph_datagen::bike::{generate, BikeConfig};

    fn tiny() -> BikeDataset {
        generate(BikeConfig {
            stations: 4,
            days: 2,
            tick: Duration::from_hours(2),
            avg_degree: 2,
            seed: 5,
        })
    }

    #[test]
    fn checksums_agree_across_backends() {
        let d = tiny();
        let w = Workload::for_dataset(&d);
        let poly = PolyglotStore::load(&d);
        let aig = AllInGraphStore::load(&d);
        for q in QueryId::ALL {
            let a = run_query(&aig, &w, q);
            let b = run_query(&poly, &w, q);
            assert!(
                (a - b).abs() < 1e-6,
                "{} checksum mismatch: {a} vs {b}",
                q.name()
            );
        }
    }

    #[test]
    fn measure_produces_sane_stats() {
        let d = tiny();
        let w = Workload::for_dataset(&d);
        let poly = PolyglotStore::load(&d);
        let stats = measure(&poly, &w, QueryId::Q3, 1, 5);
        assert_eq!(stats.runs, 5);
        assert!(stats.mrs_ms >= 0.0);
        assert!(stats.cv_pct >= 0.0);
        assert!(stats.checksum.is_finite());
    }

    #[test]
    fn parallel_harness_matches_sequential_checksums() {
        let d = tiny();
        let w = Workload::for_dataset(&d);
        let poly = PolyglotStore::load(&d);
        let seq = measure_all(&poly, &w, 0, 2);
        let par = measure_all_parallel(&poly, &w, 0, 2);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.query, p.query, "row order is QueryId::ALL either way");
            assert_eq!(
                s.checksum.to_bits(),
                p.checksum.to_bits(),
                "{}: concurrent trials must not change answers",
                s.query.name()
            );
            assert_eq!(s.runs, p.runs);
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let d = tiny();
        let w = Workload::for_dataset(&d);
        let poly = PolyglotStore::load(&d);
        let aig = AllInGraphStore::load(&d);
        let sa = measure_all(&aig, &w, 0, 2);
        let sp = measure_all(&poly, &w, 0, 2);
        let table = render_table(&sa, &sp);
        for q in QueryId::ALL {
            assert!(table.contains(q.name()));
        }
        assert!(table.contains("Speedup"));
    }

    #[test]
    fn workload_windows_clamped() {
        let d = tiny(); // only 2 days
        let w = Workload::for_dataset(&d);
        assert_eq!(w.month.end, d.end, "30-day window clamps to dataset end");
        assert!(w.day.len() <= Duration::from_days(1));
    }
}
