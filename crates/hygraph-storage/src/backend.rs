//! The [`StorageBackend`] trait: the eight Table-1 queries.
//!
//! The paper describes the workload as "eight distinct queries …,
//! ranging from straightforward time-range queries to more complex
//! queries involving aggregations of time series values" over the
//! bike-sharing dataset. The concrete queries (the TTDB benchmark repo
//! is university-internal) are reconstructed to cover that spectrum:
//!
//! | id | query |
//! |----|-------|
//! | Q1 | raw time-range fetch of one station's availability (1 day) |
//! | Q2 | value-filtered range fetch, one station (7 days) |
//! | Q3 | mean availability over a range, one station (30 days) |
//! | Q4 | mean availability over the full range, **all** stations |
//! | Q5 | top-k stations by mean availability (30 days) |
//! | Q6 | per-station per-day min/max/mean (30 days) |
//! | Q7 | graph hop + aggregate: trip-neighbours of a station with their mean availability (7 days) |
//! | Q8 | sustained-shortage detection: stations below a threshold for ≥ `min_run` consecutive ticks |

use hygraph_ts::store::Summary;
use hygraph_types::{Interval, Timestamp, VertexId};

/// Identifier of a Table-1 query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Raw range fetch.
    Q1,
    /// Filtered range fetch.
    Q2,
    /// Single-station mean.
    Q3,
    /// All-stations mean.
    Q4,
    /// Top-k by mean.
    Q5,
    /// Per-day multi-aggregate.
    Q6,
    /// Neighbour means (hybrid).
    Q7,
    /// Sustained-threshold scan.
    Q8,
}

impl QueryId {
    /// All queries in order.
    pub const ALL: [QueryId; 8] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
    ];

    /// Display name ("Q1"…"Q8").
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q4 => "Q4",
            QueryId::Q5 => "Q5",
            QueryId::Q6 => "Q6",
            QueryId::Q7 => "Q7",
            QueryId::Q8 => "Q8",
        }
    }

    /// Short description for report output.
    pub fn describe(self) -> &'static str {
        match self {
            QueryId::Q1 => "time-range fetch, 1 station, 1 day",
            QueryId::Q2 => "filtered range fetch, 1 station, 7 days",
            QueryId::Q3 => "mean over 30 days, 1 station",
            QueryId::Q4 => "mean over full range, all stations",
            QueryId::Q5 => "top-10 stations by mean, 30 days",
            QueryId::Q6 => "per-day min/max/mean, all stations, 30 days",
            QueryId::Q7 => "trip-neighbour means, 7 days (hybrid)",
            QueryId::Q8 => "sustained shortage detection, all stations",
        }
    }
}

/// Per-day aggregate row of Q6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DayAgg {
    /// Day bucket start.
    pub day: Timestamp,
    /// Minimum availability in the day.
    pub min: f64,
    /// Maximum availability in the day.
    pub max: f64,
    /// Mean availability in the day.
    pub mean: f64,
}

/// A storage backend able to answer the Table-1 workload.
pub trait StorageBackend {
    /// Backend display name.
    fn name(&self) -> &'static str;

    /// Q1: the raw `(t, availability)` observations of `station` in `iv`.
    fn q1_range(&self, station: VertexId, iv: &Interval) -> Vec<(Timestamp, f64)>;

    /// Q2: observations of `station` in `iv` with `value >= min_value`.
    fn q2_filtered(
        &self,
        station: VertexId,
        iv: &Interval,
        min_value: f64,
    ) -> Vec<(Timestamp, f64)>;

    /// TS-range pushdown hook: a [`Summary`] (count/sum/min/max) of
    /// `station`'s availability over `iv`. This is the same kernel the
    /// HyQL planner pushes series aggregates through — backends that can
    /// answer it from precomputed per-chunk aggregates (the polyglot
    /// store) override it in O(chunks touched); the provided fallback
    /// folds the raw `q1_range` scan and is always correct, never faster.
    fn series_summary(&self, station: VertexId, iv: &Interval) -> Summary {
        let mut s = Summary::new();
        for (_, v) in self.q1_range(station, iv) {
            s.add(v);
        }
        s
    }

    /// Q3: mean availability of `station` over `iv`. Provided in terms of
    /// [`Self::series_summary`], so a backend with a fast summary path
    /// gets a fast Q3 for free.
    fn q3_mean(&self, station: VertexId, iv: &Interval) -> Option<f64> {
        self.series_summary(station, iv).mean()
    }

    /// Q4: mean availability of every station over `iv`, keyed by
    /// station vertex, in vertex order.
    fn q4_mean_all(&self, iv: &Interval) -> Vec<(VertexId, f64)>;

    /// Q5: the `k` stations with the highest mean availability over
    /// `iv`, best first (ties broken by vertex id).
    fn q5_top_k(&self, iv: &Interval, k: usize) -> Vec<(VertexId, f64)>;

    /// Q6: per-station, per-day min/max/mean over `iv`, in vertex order.
    fn q6_daily(&self, iv: &Interval) -> Vec<(VertexId, Vec<DayAgg>)>;

    /// Q7: the out-trip-neighbours of `station` with each neighbour's
    /// mean availability over `iv`, in vertex order (deduplicated).
    fn q7_neighbour_means(&self, station: VertexId, iv: &Interval) -> Vec<(VertexId, f64)>;

    /// Q8: stations whose availability stays `< threshold` for at least
    /// `min_run` consecutive observations inside `iv`, in vertex order.
    fn q8_sustained_below(&self, iv: &Interval, threshold: f64, min_run: usize) -> Vec<VertexId>;
}

/// Shared helper: detects a run of `min_run` consecutive values below
/// `threshold` in an ordered value stream.
pub fn has_sustained_run(
    values: impl Iterator<Item = f64>,
    threshold: f64,
    min_run: usize,
) -> bool {
    let mut run = 0usize;
    for v in values {
        if v < threshold {
            run += 1;
            if run >= min_run {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_run_detection() {
        let vals = [5.0, 1.0, 1.0, 1.0, 5.0];
        assert!(has_sustained_run(vals.iter().copied(), 2.0, 3));
        assert!(!has_sustained_run(vals.iter().copied(), 2.0, 4));
        // interrupted run resets
        let vals = [1.0, 1.0, 5.0, 1.0, 1.0];
        assert!(!has_sustained_run(vals.iter().copied(), 2.0, 3));
        assert!(has_sustained_run(vals.iter().copied(), 2.0, 2));
        assert!(!has_sustained_run(std::iter::empty(), 2.0, 1));
    }

    #[test]
    fn query_metadata() {
        assert_eq!(QueryId::ALL.len(), 8);
        assert_eq!(QueryId::Q4.name(), "Q4");
        assert!(QueryId::Q7.describe().contains("hybrid"));
    }

    /// A minimal backend that only knows how to produce raw ranges — it
    /// exercises the *provided* `series_summary`/`q3_mean` bodies that
    /// third-party backends inherit.
    struct RangeOnly(Vec<(Timestamp, f64)>);

    impl StorageBackend for RangeOnly {
        fn name(&self) -> &'static str {
            "range-only"
        }
        fn q1_range(&self, _station: VertexId, iv: &Interval) -> Vec<(Timestamp, f64)> {
            self.0
                .iter()
                .copied()
                .filter(|&(t, _)| iv.contains(t))
                .collect()
        }
        fn q2_filtered(&self, s: VertexId, iv: &Interval, min: f64) -> Vec<(Timestamp, f64)> {
            self.q1_range(s, iv)
                .into_iter()
                .filter(|&(_, v)| v >= min)
                .collect()
        }
        fn q4_mean_all(&self, _iv: &Interval) -> Vec<(VertexId, f64)> {
            Vec::new()
        }
        fn q5_top_k(&self, _iv: &Interval, _k: usize) -> Vec<(VertexId, f64)> {
            Vec::new()
        }
        fn q6_daily(&self, _iv: &Interval) -> Vec<(VertexId, Vec<DayAgg>)> {
            Vec::new()
        }
        fn q7_neighbour_means(&self, _s: VertexId, _iv: &Interval) -> Vec<(VertexId, f64)> {
            Vec::new()
        }
        fn q8_sustained_below(&self, _iv: &Interval, _t: f64, _r: usize) -> Vec<VertexId> {
            Vec::new()
        }
    }

    #[test]
    fn default_series_summary_folds_the_range_scan() {
        let obs: Vec<(Timestamp, f64)> = (0..10)
            .map(|i| (Timestamp::from_millis(i * 1000), i as f64))
            .collect();
        let b = RangeOnly(obs);
        let v = VertexId::new(0);
        let iv = Interval::new(Timestamp::from_millis(2000), Timestamp::from_millis(7000));
        let s = b.series_summary(v, &iv);
        assert_eq!(s.count, 5);
        assert!((s.sum - (2.0 + 3.0 + 4.0 + 5.0 + 6.0)).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((b.q3_mean(v, &iv).unwrap() - 4.0).abs() < 1e-9);
        // empty range → empty summary, NULL mean
        let empty = Interval::new(Timestamp::from_millis(0), Timestamp::from_millis(0));
        assert_eq!(b.series_summary(v, &empty).count, 0);
        assert!(b.q3_mean(v, &empty).is_none());
    }
}
