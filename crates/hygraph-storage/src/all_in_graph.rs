//! The all-in-graph baseline (the paper's Neo4j configuration).
//!
//! "Each timestamp and its corresponding value are stored as separate
//! properties": observation `(t, v)` of a station becomes the property
//! entry `ts:availability:<t> → v` on the station vertex. Property maps
//! in a graph store are opaque key→value containers — they are not
//! time-indexed — so *every* temporal query must enumerate the vertex's
//! full property map, string-parse each key to recover the timestamp,
//! filter, and sort. That per-observation key-parsing scan is precisely
//! the architectural bottleneck Table 1 exposes; the paper additionally
//! notes the "high write overhead" of creating millions of properties,
//! which [`AllInGraphStore::load`] reproduces.

use crate::backend::{has_sustained_run, DayAgg, StorageBackend};
use hygraph_datagen::bike::BikeDataset;
use hygraph_graph::TemporalGraph;
use hygraph_ts::store::Summary;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::{
    Duration, EdgeId, HyGraphError, Interval, Label, PropertyMap, Result, Timestamp, Value,
    VertexId,
};

const PREFIX: &str = "ts:availability:";

/// Graph store with per-timestamp observation properties.
#[derive(Default)]
pub struct AllInGraphStore {
    graph: TemporalGraph,
    stations: Vec<VertexId>,
}

impl AllInGraphStore {
    /// An empty store, ready for incremental [`Self::add_station`] /
    /// [`Self::observe`] ingest (the durable-storage write path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the bike dataset, materialising every observation as a
    /// discrete vertex property (the paper's high-write-overhead path).
    pub fn load(dataset: &BikeDataset) -> Self {
        let mut graph = dataset.graph.clone();
        for (i, &station) in dataset.stations.iter().enumerate() {
            let vertex = graph.vertex_mut(station).expect("station exists");
            for (t, v) in dataset.availability[i].iter() {
                // zero-padded so keys are unambiguous; parsing cost is
                // paid on every read either way
                vertex
                    .props
                    .set(format!("{PREFIX}{:020}", t.millis()), Value::Float(v));
            }
        }
        Self {
            graph,
            stations: dataset.stations.clone(),
        }
    }

    /// Adds a station vertex. Ids are allocated densely and
    /// deterministically, so replaying the same mutation sequence yields
    /// the same ids — the property WAL recovery depends on.
    pub fn add_station(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> VertexId {
        let v = self.graph.add_vertex_valid(labels, props, Interval::ALL);
        self.stations.push(v);
        v
    }

    /// Adds a trip edge between two stations.
    pub fn add_trip(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.graph
            .add_edge_valid(src, dst, labels, props, Interval::ALL)
    }

    /// Records one availability observation as a discrete vertex
    /// property — the write path whose overhead Table 1 measures.
    pub fn observe(&mut self, station: VertexId, t: Timestamp, value: f64) -> Result<()> {
        let vertex = self.graph.vertex_mut(station)?;
        vertex
            .props
            .set(format!("{PREFIX}{:020}", t.millis()), Value::Float(value));
        Ok(())
    }

    /// Station vertices in insertion order.
    pub fn stations(&self) -> &[VertexId] {
        &self.stations
    }

    /// The underlying graph (inspection/tests).
    pub fn graph(&self) -> &TemporalGraph {
        &self.graph
    }

    /// Encodes the full physical state (checkpoint payload).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        hygraph_graph::codec::encode_graph(&self.graph, w);
        w.len_of(self.stations.len());
        for &s in &self.stations {
            w.u64(s.raw());
        }
    }

    /// Decodes a state previously written by [`Self::encode_state`].
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self> {
        let graph = hygraph_graph::codec::decode_graph(r)?;
        let n = r.len_of()?;
        let mut stations = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let v = VertexId::new(r.u64()?);
            graph
                .vertex(v)
                .map_err(|_| HyGraphError::corrupt("station vertex missing from graph"))?;
            stations.push(v);
        }
        Ok(Self { graph, stations })
    }

    /// Total number of observation properties materialised.
    pub fn observation_property_count(&self) -> usize {
        self.stations
            .iter()
            .map(|&s| {
                self.graph
                    .vertex(s)
                    .expect("station exists")
                    .props
                    .keys()
                    .filter(|k| k.as_str().starts_with(PREFIX))
                    .count()
            })
            .sum()
    }

    /// The faithful access path: enumerate ALL properties of the vertex,
    /// parse keys, filter by interval. Output is time-ordered (keys are
    /// zero-padded, and the property map iterates in key order — which
    /// is the *best case* for this design; real property chains are
    /// unordered).
    fn scan_observations(
        &self,
        station: VertexId,
        iv: &Interval,
        mut f: impl FnMut(Timestamp, f64),
    ) {
        let Ok(vertex) = self.graph.vertex(station) else {
            return;
        };
        for (key, value) in vertex.props.iter() {
            let Some(ts_str) = key.as_str().strip_prefix(PREFIX) else {
                continue;
            };
            let Ok(ms) = ts_str.parse::<i64>() else {
                continue;
            };
            let t = Timestamp::from_millis(ms);
            if !iv.contains(t) {
                continue;
            }
            let Some(v) = value.as_static().and_then(Value::as_f64) else {
                continue;
            };
            f(t, v);
        }
    }
}

impl StorageBackend for AllInGraphStore {
    fn name(&self) -> &'static str {
        "all-in-graph"
    }

    fn q1_range(&self, station: VertexId, iv: &Interval) -> Vec<(Timestamp, f64)> {
        let mut out = Vec::new();
        self.scan_observations(station, iv, |t, v| out.push((t, v)));
        out
    }

    fn q2_filtered(
        &self,
        station: VertexId,
        iv: &Interval,
        min_value: f64,
    ) -> Vec<(Timestamp, f64)> {
        let mut out = Vec::new();
        self.scan_observations(station, iv, |t, v| {
            if v >= min_value {
                out.push((t, v));
            }
        });
        out
    }

    fn series_summary(&self, station: VertexId, iv: &Interval) -> Summary {
        // still a full property-map scan — this backend has no
        // precomputed aggregates to push into, only the Vec allocation
        // of the default fallback is avoided
        let mut s = Summary::new();
        self.scan_observations(station, iv, |_, v| s.add(v));
        s
    }

    fn q4_mean_all(&self, iv: &Interval) -> Vec<(VertexId, f64)> {
        self.stations
            .iter()
            .filter_map(|&s| self.q3_mean(s, iv).map(|m| (s, m)))
            .collect()
    }

    fn q5_top_k(&self, iv: &Interval, k: usize) -> Vec<(VertexId, f64)> {
        let mut means = self.q4_mean_all(iv);
        means.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        means.truncate(k);
        means
    }

    fn q6_daily(&self, iv: &Interval) -> Vec<(VertexId, Vec<DayAgg>)> {
        let day = Duration::from_days(1);
        self.stations
            .iter()
            .map(|&s| {
                // observations arrive in time order (zero-padded keys)
                let mut rows: Vec<DayAgg> = Vec::new();
                let mut counts: Vec<usize> = Vec::new();
                self.scan_observations(s, iv, |t, v| {
                    let bucket = t.truncate(day);
                    match rows.last_mut() {
                        Some(r) if r.day == bucket => {
                            r.min = r.min.min(v);
                            r.max = r.max.max(v);
                            r.mean += v; // running sum; divided below
                            *counts.last_mut().expect("parallel to rows") += 1;
                        }
                        _ => {
                            rows.push(DayAgg {
                                day: bucket,
                                min: v,
                                max: v,
                                mean: v,
                            });
                            counts.push(1);
                        }
                    }
                });
                for (r, c) in rows.iter_mut().zip(counts) {
                    r.mean /= c as f64;
                }
                (s, rows)
            })
            .collect()
    }

    fn q7_neighbour_means(&self, station: VertexId, iv: &Interval) -> Vec<(VertexId, f64)> {
        let mut nbrs: Vec<VertexId> = self.graph.neighbors_out(station).map(|(_, n)| n).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs.into_iter()
            .filter_map(|n| self.q3_mean(n, iv).map(|m| (n, m)))
            .collect()
    }

    fn q8_sustained_below(&self, iv: &Interval, threshold: f64, min_run: usize) -> Vec<VertexId> {
        self.stations
            .iter()
            .filter(|&&s| {
                let mut vals = Vec::new();
                self.scan_observations(s, iv, |_, v| vals.push(v));
                has_sustained_run(vals.into_iter(), threshold, min_run)
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_datagen::bike::{generate, BikeConfig};

    fn tiny() -> BikeDataset {
        generate(BikeConfig {
            stations: 5,
            days: 2,
            tick: Duration::from_hours(1),
            avg_degree: 2,
            seed: 3,
        })
    }

    #[test]
    fn load_materialises_properties() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        assert_eq!(store.observation_property_count(), 5 * 48);
    }

    #[test]
    fn q1_matches_source_series() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.start + Duration::from_days(1));
        let got = store.q1_range(d.stations[0], &iv);
        let want: Vec<(Timestamp, f64)> = d.availability[0].range(&iv).iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn q3_mean_agrees_with_naive() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        let m = store.q3_mean(d.stations[1], &iv).unwrap();
        let want = hygraph_ts::ops::stats::mean(d.availability[1].values()).unwrap();
        assert!((m - want).abs() < 1e-9);
        // empty interval
        assert!(store
            .q3_mean(d.stations[1], &Interval::new(d.end, d.end))
            .is_none());
    }

    #[test]
    fn q6_daily_rows() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        let daily = store.q6_daily(&iv);
        assert_eq!(daily.len(), 5);
        for (_, rows) in &daily {
            assert_eq!(rows.len(), 2, "two days of data");
            for r in rows {
                assert!(r.min <= r.mean && r.mean <= r.max);
            }
        }
    }

    #[test]
    fn incremental_ingest_matches_bulk_load() {
        let d = tiny();
        let bulk = AllInGraphStore::load(&d);
        // rebuild through the mutation API: same stations, same
        // observations, same dense id allocation
        let mut inc = AllInGraphStore::new();
        for &station in &d.stations {
            let data = d.graph.vertex(station).unwrap();
            let v = inc.add_station(data.labels.clone(), data.props.clone());
            assert_eq!(v, station, "dense deterministic ids");
        }
        for (i, &station) in d.stations.iter().enumerate() {
            for (t, v) in d.availability[i].iter() {
                inc.observe(station, t, v).unwrap();
            }
        }
        let iv = Interval::new(d.start, d.end);
        assert_eq!(
            inc.q1_range(d.stations[0], &iv),
            bulk.q1_range(d.stations[0], &iv)
        );
        assert_eq!(
            inc.observation_property_count(),
            bulk.observation_property_count()
        );
        // observe on a missing vertex errors
        assert!(inc
            .observe(VertexId::new(999), Timestamp::from_millis(0), 1.0)
            .is_err());
    }

    #[test]
    fn state_codec_roundtrip_is_bit_exact() {
        let d = tiny();
        let mut store = AllInGraphStore::load(&d);
        store
            .add_trip(d.stations[0], d.stations[1], ["TRIP"], Default::default())
            .unwrap();
        let mut w = hygraph_types::bytes::ByteWriter::new();
        store.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = hygraph_types::bytes::ByteReader::new(&bytes);
        let back = AllInGraphStore::decode_state(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        let mut w2 = hygraph_types::bytes::ByteWriter::new();
        back.encode_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "canonical re-encode");
        assert_eq!(back.stations(), store.stations());
        // truncated input errors cleanly
        let mut r = hygraph_types::bytes::ByteReader::new(&bytes[..bytes.len() / 2]);
        assert!(AllInGraphStore::decode_state(&mut r).is_err());
    }

    #[test]
    fn q8_threshold_extremes() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        assert_eq!(
            store.q8_sustained_below(&iv, f64::MAX, 1).len(),
            5,
            "every station is always below +inf"
        );
        assert!(store.q8_sustained_below(&iv, -1.0, 1).is_empty());
    }
}
