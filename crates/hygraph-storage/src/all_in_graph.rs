//! The all-in-graph baseline (the paper's Neo4j configuration).
//!
//! "Each timestamp and its corresponding value are stored as separate
//! properties": observation `(t, v)` of a station becomes the property
//! entry `ts:availability:<t> → v` on the station vertex. Property maps
//! in a graph store are opaque key→value containers — they are not
//! time-indexed — so *every* temporal query must enumerate the vertex's
//! full property map, string-parse each key to recover the timestamp,
//! filter, and sort. That per-observation key-parsing scan is precisely
//! the architectural bottleneck Table 1 exposes; the paper additionally
//! notes the "high write overhead" of creating millions of properties,
//! which [`AllInGraphStore::load`] reproduces.

use crate::backend::{has_sustained_run, DayAgg, StorageBackend};
use hygraph_datagen::bike::BikeDataset;
use hygraph_graph::TemporalGraph;
use hygraph_types::{Duration, Interval, Timestamp, Value, VertexId};

const PREFIX: &str = "ts:availability:";

/// Graph store with per-timestamp observation properties.
pub struct AllInGraphStore {
    graph: TemporalGraph,
    stations: Vec<VertexId>,
}

impl AllInGraphStore {
    /// Loads the bike dataset, materialising every observation as a
    /// discrete vertex property (the paper's high-write-overhead path).
    pub fn load(dataset: &BikeDataset) -> Self {
        let mut graph = dataset.graph.clone();
        for (i, &station) in dataset.stations.iter().enumerate() {
            let vertex = graph.vertex_mut(station).expect("station exists");
            for (t, v) in dataset.availability[i].iter() {
                // zero-padded so keys are unambiguous; parsing cost is
                // paid on every read either way
                vertex
                    .props
                    .set(format!("{PREFIX}{:020}", t.millis()), Value::Float(v));
            }
        }
        Self {
            graph,
            stations: dataset.stations.clone(),
        }
    }

    /// The underlying graph (inspection/tests).
    pub fn graph(&self) -> &TemporalGraph {
        &self.graph
    }

    /// Total number of observation properties materialised.
    pub fn observation_property_count(&self) -> usize {
        self.stations
            .iter()
            .map(|&s| {
                self.graph
                    .vertex(s)
                    .expect("station exists")
                    .props
                    .keys()
                    .filter(|k| k.as_str().starts_with(PREFIX))
                    .count()
            })
            .sum()
    }

    /// The faithful access path: enumerate ALL properties of the vertex,
    /// parse keys, filter by interval. Output is time-ordered (keys are
    /// zero-padded, and the property map iterates in key order — which
    /// is the *best case* for this design; real property chains are
    /// unordered).
    fn scan_observations(
        &self,
        station: VertexId,
        iv: &Interval,
        mut f: impl FnMut(Timestamp, f64),
    ) {
        let Ok(vertex) = self.graph.vertex(station) else {
            return;
        };
        for (key, value) in vertex.props.iter() {
            let Some(ts_str) = key.as_str().strip_prefix(PREFIX) else {
                continue;
            };
            let Ok(ms) = ts_str.parse::<i64>() else {
                continue;
            };
            let t = Timestamp::from_millis(ms);
            if !iv.contains(t) {
                continue;
            }
            let Some(v) = value.as_static().and_then(Value::as_f64) else {
                continue;
            };
            f(t, v);
        }
    }
}

impl StorageBackend for AllInGraphStore {
    fn name(&self) -> &'static str {
        "all-in-graph"
    }

    fn q1_range(&self, station: VertexId, iv: &Interval) -> Vec<(Timestamp, f64)> {
        let mut out = Vec::new();
        self.scan_observations(station, iv, |t, v| out.push((t, v)));
        out
    }

    fn q2_filtered(
        &self,
        station: VertexId,
        iv: &Interval,
        min_value: f64,
    ) -> Vec<(Timestamp, f64)> {
        let mut out = Vec::new();
        self.scan_observations(station, iv, |t, v| {
            if v >= min_value {
                out.push((t, v));
            }
        });
        out
    }

    fn q3_mean(&self, station: VertexId, iv: &Interval) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        self.scan_observations(station, iv, |_, v| {
            sum += v;
            n += 1;
        });
        (n > 0).then(|| sum / n as f64)
    }

    fn q4_mean_all(&self, iv: &Interval) -> Vec<(VertexId, f64)> {
        self.stations
            .iter()
            .filter_map(|&s| self.q3_mean(s, iv).map(|m| (s, m)))
            .collect()
    }

    fn q5_top_k(&self, iv: &Interval, k: usize) -> Vec<(VertexId, f64)> {
        let mut means = self.q4_mean_all(iv);
        means.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        means.truncate(k);
        means
    }

    fn q6_daily(&self, iv: &Interval) -> Vec<(VertexId, Vec<DayAgg>)> {
        let day = Duration::from_days(1);
        self.stations
            .iter()
            .map(|&s| {
                // observations arrive in time order (zero-padded keys)
                let mut rows: Vec<DayAgg> = Vec::new();
                let mut counts: Vec<usize> = Vec::new();
                self.scan_observations(s, iv, |t, v| {
                    let bucket = t.truncate(day);
                    match rows.last_mut() {
                        Some(r) if r.day == bucket => {
                            r.min = r.min.min(v);
                            r.max = r.max.max(v);
                            r.mean += v; // running sum; divided below
                            *counts.last_mut().expect("parallel to rows") += 1;
                        }
                        _ => {
                            rows.push(DayAgg {
                                day: bucket,
                                min: v,
                                max: v,
                                mean: v,
                            });
                            counts.push(1);
                        }
                    }
                });
                for (r, c) in rows.iter_mut().zip(counts) {
                    r.mean /= c as f64;
                }
                (s, rows)
            })
            .collect()
    }

    fn q7_neighbour_means(&self, station: VertexId, iv: &Interval) -> Vec<(VertexId, f64)> {
        let mut nbrs: Vec<VertexId> = self
            .graph
            .neighbors_out(station)
            .map(|(_, n)| n)
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs.into_iter()
            .filter_map(|n| self.q3_mean(n, iv).map(|m| (n, m)))
            .collect()
    }

    fn q8_sustained_below(&self, iv: &Interval, threshold: f64, min_run: usize) -> Vec<VertexId> {
        self.stations
            .iter()
            .filter(|&&s| {
                let mut vals = Vec::new();
                self.scan_observations(s, iv, |_, v| vals.push(v));
                has_sustained_run(vals.into_iter(), threshold, min_run)
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_datagen::bike::{generate, BikeConfig};

    fn tiny() -> BikeDataset {
        generate(BikeConfig {
            stations: 5,
            days: 2,
            tick: Duration::from_hours(1),
            avg_degree: 2,
            seed: 3,
        })
    }

    #[test]
    fn load_materialises_properties() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        assert_eq!(store.observation_property_count(), 5 * 48);
    }

    #[test]
    fn q1_matches_source_series() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.start + Duration::from_days(1));
        let got = store.q1_range(d.stations[0], &iv);
        let want: Vec<(Timestamp, f64)> = d.availability[0].range(&iv).iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn q3_mean_agrees_with_naive() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        let m = store.q3_mean(d.stations[1], &iv).unwrap();
        let want = hygraph_ts::ops::stats::mean(d.availability[1].values()).unwrap();
        assert!((m - want).abs() < 1e-9);
        // empty interval
        assert!(store
            .q3_mean(d.stations[1], &Interval::new(d.end, d.end))
            .is_none());
    }

    #[test]
    fn q6_daily_rows() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        let daily = store.q6_daily(&iv);
        assert_eq!(daily.len(), 5);
        for (_, rows) in &daily {
            assert_eq!(rows.len(), 2, "two days of data");
            for r in rows {
                assert!(r.min <= r.mean && r.mean <= r.max);
            }
        }
    }

    #[test]
    fn q8_threshold_extremes() {
        let d = tiny();
        let store = AllInGraphStore::load(&d);
        let iv = Interval::new(d.start, d.end);
        assert_eq!(
            store.q8_sustained_below(&iv, f64::MAX, 1).len(),
            5,
            "every station is always below +inf"
        );
        assert!(store.q8_sustained_below(&iv, -1.0, 1).is_empty());
    }
}
