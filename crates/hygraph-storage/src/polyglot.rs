//! The polyglot-persistence backend (the paper's TimeTravelDB role).
//!
//! Topology stays in the graph store; every station's availability
//! series lives in a [`TsStore`] — chunked by day, with an ordered chunk
//! index and per-chunk sparse aggregates. Range queries prune to the
//! touched chunks; aggregate queries read whole covered chunks in O(1).

use crate::backend::{DayAgg, StorageBackend};
use hygraph_datagen::bike::BikeDataset;
use hygraph_graph::TemporalGraph;
use hygraph_ts::store::{AggKind, Summary};
use hygraph_ts::TsStore;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::parallel::auto_parallel;
use hygraph_types::{
    Duration, EdgeId, HyGraphError, Interval, Label, PropertyMap, Result, SeriesId, Timestamp,
    VertexId,
};
use rayon::prelude::*;
use std::collections::HashMap;

/// Graph store + dedicated chunked time-series store.
pub struct PolyglotStore {
    graph: TemporalGraph,
    ts: TsStore,
    stations: Vec<VertexId>,
    series_of: HashMap<VertexId, SeriesId>,
}

impl Default for PolyglotStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PolyglotStore {
    /// An empty store, ready for incremental [`Self::add_station`] /
    /// [`Self::observe`] ingest (the durable-storage write path).
    pub fn new() -> Self {
        Self {
            graph: TemporalGraph::new(),
            ts: TsStore::with_chunk_width(Duration::from_days(1)),
            stations: Vec::new(),
            series_of: HashMap::new(),
        }
    }

    /// Loads the bike dataset: topology cloned, series bulk-inserted into
    /// the chunk store.
    pub fn load(dataset: &BikeDataset) -> Self {
        let mut ts = TsStore::with_chunk_width(Duration::from_days(1));
        let mut series_of = HashMap::with_capacity(dataset.stations.len());
        for (i, &station) in dataset.stations.iter().enumerate() {
            let sid = SeriesId::new(i as u64);
            ts.insert_series(sid, &dataset.availability[i]);
            series_of.insert(station, sid);
        }
        // bulk-load epilogue: the corpus is historical, so compress it
        // all now instead of leaving each head chunk plain (no-op when
        // HYGRAPH_TS_COMPRESS is off)
        ts.seal_all();
        Self {
            graph: dataset.graph.clone(),
            ts,
            stations: dataset.stations.clone(),
            series_of,
        }
    }

    /// Adds a station vertex and its dedicated (initially empty) series.
    /// Vertex ids and series ids are allocated densely and
    /// deterministically, so replaying the same mutation sequence yields
    /// the same ids — the property WAL recovery depends on.
    pub fn add_station(
        &mut self,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> VertexId {
        let v = self.graph.add_vertex_valid(labels, props, Interval::ALL);
        let sid = SeriesId::new(self.stations.len() as u64);
        self.ts.create_series(sid);
        self.stations.push(v);
        self.series_of.insert(v, sid);
        v
    }

    /// Adds a trip edge between two stations.
    pub fn add_trip(
        &mut self,
        src: VertexId,
        dst: VertexId,
        labels: impl IntoIterator<Item = impl Into<Label>>,
        props: PropertyMap,
    ) -> Result<EdgeId> {
        self.graph
            .add_edge_valid(src, dst, labels, props, Interval::ALL)
    }

    /// Records one availability observation into the chunked series
    /// store — the fast polyglot write path.
    pub fn observe(&mut self, station: VertexId, t: Timestamp, value: f64) -> Result<()> {
        let sid = self
            .sid(station)
            .ok_or(HyGraphError::VertexNotFound(station))?;
        self.ts.insert(sid, t, value);
        Ok(())
    }

    /// Station vertices in insertion order.
    pub fn stations(&self) -> &[VertexId] {
        &self.stations
    }

    /// The underlying series store (inspection/tests).
    pub fn ts_store(&self) -> &TsStore {
        &self.ts
    }

    fn sid(&self, station: VertexId) -> Option<SeriesId> {
        self.series_of.get(&station).copied()
    }

    /// Encodes the full physical state (checkpoint payload).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        hygraph_graph::codec::encode_graph(&self.graph, w);
        hygraph_ts::persist::encode_store(&self.ts, w);
        w.len_of(self.stations.len());
        for &s in &self.stations {
            w.u64(s.raw());
            w.u64(self.series_of[&s].raw());
        }
    }

    /// Decodes a state previously written by [`Self::encode_state`].
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self> {
        let graph = hygraph_graph::codec::decode_graph(r)?;
        let ts = hygraph_ts::persist::decode_store(r)?;
        let known: std::collections::HashSet<SeriesId> = ts.series_ids().collect();
        let n = r.len_of()?;
        let mut stations = Vec::with_capacity(n.min(1 << 20));
        let mut series_of = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let v = VertexId::new(r.u64()?);
            let sid = SeriesId::new(r.u64()?);
            graph
                .vertex(v)
                .map_err(|_| HyGraphError::corrupt("station vertex missing from graph"))?;
            if !known.contains(&sid) {
                return Err(HyGraphError::corrupt("station series missing from store"));
            }
            stations.push(v);
            series_of.insert(v, sid);
        }
        Ok(Self {
            graph,
            ts,
            stations,
            series_of,
        })
    }
}

impl StorageBackend for PolyglotStore {
    fn name(&self) -> &'static str {
        "polyglot"
    }

    fn q1_range(&self, station: VertexId, iv: &Interval) -> Vec<(Timestamp, f64)> {
        let Some(sid) = self.sid(station) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.ts.scan(sid, iv, |t, v| out.push((t, v)));
        out
    }

    fn q2_filtered(
        &self,
        station: VertexId,
        iv: &Interval,
        min_value: f64,
    ) -> Vec<(Timestamp, f64)> {
        let Some(sid) = self.sid(station) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.ts.scan(sid, iv, |t, v| {
            if v >= min_value {
                out.push((t, v));
            }
        });
        out
    }

    fn series_summary(&self, station: VertexId, iv: &Interval) -> Summary {
        // chunk-pruned: fully-covered chunks contribute their precomputed
        // summaries, only boundary chunks are scanned
        match self.sid(station) {
            Some(sid) => self.ts.summarize(sid, iv),
            None => Summary::new(),
        }
    }

    fn q4_mean_all(&self, iv: &Interval) -> Vec<(VertexId, f64)> {
        // one batched store call: per-series aggregates are independent,
        // so the store may fan them out across threads (results are in
        // input order either way)
        let pairs: Vec<(VertexId, SeriesId)> = self
            .stations
            .iter()
            .filter_map(|&s| self.sid(s).map(|sid| (s, sid)))
            .collect();
        let sids: Vec<SeriesId> = pairs.iter().map(|&(_, sid)| sid).collect();
        let means = self.ts.aggregate_batch(&sids, iv, AggKind::Mean);
        pairs
            .iter()
            .zip(means)
            .filter_map(|(&(s, _), m)| m.map(|m| (s, m)))
            .collect()
    }

    fn q5_top_k(&self, iv: &Interval, k: usize) -> Vec<(VertexId, f64)> {
        let mut means = self.q4_mean_all(iv);
        means.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        means.truncate(k);
        means
    }

    fn q6_daily(&self, iv: &Interval) -> Vec<(VertexId, Vec<DayAgg>)> {
        let day = Duration::from_days(1);
        self.stations
            .iter()
            .filter_map(|&s| {
                let sid = self.sid(s)?;
                let rows = self
                    .ts
                    .aggregate_buckets(sid, iv, day)
                    .into_iter()
                    .map(|(bucket, summary)| DayAgg {
                        day: bucket,
                        min: summary.min,
                        max: summary.max,
                        mean: summary.mean().expect("non-empty bucket"),
                    })
                    .collect();
                Some((s, rows))
            })
            .collect()
    }

    fn q7_neighbour_means(&self, station: VertexId, iv: &Interval) -> Vec<(VertexId, f64)> {
        let mut nbrs: Vec<VertexId> = self.graph.neighbors_out(station).map(|(_, n)| n).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs.into_iter()
            .filter_map(|n| self.q3_mean(n, iv).map(|m| (n, m)))
            .collect()
    }

    fn q8_sustained_below(&self, iv: &Interval, threshold: f64, min_run: usize) -> Vec<VertexId> {
        // chunk-pruned ordered scan with early exit via run check; the
        // per-station predicate is independent, so large station sets
        // fan out — matches flags are zipped back in station order
        let has_run = |&s: &VertexId| {
            let Some(sid) = self.sid(s) else { return false };
            let mut run = 0usize;
            let mut found = false;
            self.ts.scan(sid, iv, |_, v| {
                if found {
                    return;
                }
                if v < threshold {
                    run += 1;
                    if run >= min_run {
                        found = true;
                    }
                } else {
                    run = 0;
                }
            });
            found
        };
        let flags: Vec<bool> = if auto_parallel(self.stations.len()) {
            self.stations.par_iter().map(has_run).collect()
        } else {
            self.stations.iter().map(has_run).collect()
        };
        self.stations
            .iter()
            .zip(flags)
            .filter_map(|(&s, keep)| keep.then_some(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_in_graph::AllInGraphStore;
    use hygraph_datagen::bike::{generate, BikeConfig};

    fn tiny() -> BikeDataset {
        generate(BikeConfig {
            stations: 6,
            days: 3,
            tick: Duration::from_mins(30),
            avg_degree: 3,
            seed: 11,
        })
    }

    #[test]
    fn chunking_happens() {
        let d = tiny();
        let store = PolyglotStore::load(&d);
        assert_eq!(
            store.ts_store().chunk_count(SeriesId::new(0)),
            3,
            "one chunk per day"
        );
        // bulk load ends with seal_all: every chunk is compressed
        // (unless the knob turned compression off for this process)
        let stats = store.ts_store().compression_stats();
        if store.ts_store().options().compress {
            assert_eq!(stats.sealed_chunks, 6 * 3, "all chunks sealed");
            assert!(stats.compressed_bytes < stats.raw_bytes);
        } else {
            assert_eq!(stats.sealed_chunks, 0);
        }
    }

    /// The load-bearing equivalence: both backends answer every query
    /// identically on the same dataset — they differ only in access path.
    #[test]
    fn backends_agree_on_all_queries() {
        let d = tiny();
        let poly = PolyglotStore::load(&d);
        let aig = AllInGraphStore::load(&d);
        let s0 = d.stations[0];
        let day1 = Interval::new(d.start, d.start + Duration::from_days(1));
        let week = Interval::new(d.start, d.end);

        assert_eq!(poly.q1_range(s0, &day1), aig.q1_range(s0, &day1));
        assert_eq!(
            poly.q2_filtered(s0, &week, 20.0),
            aig.q2_filtered(s0, &week, 20.0)
        );
        let (pm, am) = (
            poly.q3_mean(s0, &week).unwrap(),
            aig.q3_mean(s0, &week).unwrap(),
        );
        assert!((pm - am).abs() < 1e-9);
        let (p4, a4) = (poly.q4_mean_all(&week), aig.q4_mean_all(&week));
        assert_eq!(p4.len(), a4.len());
        for ((pv, pmean), (av, amean)) in p4.iter().zip(&a4) {
            assert_eq!(pv, av);
            assert!((pmean - amean).abs() < 1e-9);
        }
        let (p5, a5) = (poly.q5_top_k(&week, 3), aig.q5_top_k(&week, 3));
        assert_eq!(
            p5.iter().map(|x| x.0).collect::<Vec<_>>(),
            a5.iter().map(|x| x.0).collect::<Vec<_>>()
        );
        let (p6, a6) = (poly.q6_daily(&week), aig.q6_daily(&week));
        assert_eq!(p6.len(), a6.len());
        for ((pv, prow), (av, arow)) in p6.iter().zip(&a6) {
            assert_eq!(pv, av);
            assert_eq!(prow.len(), arow.len());
            for (p, a) in prow.iter().zip(arow) {
                assert_eq!(p.day, a.day);
                assert_eq!(p.min, a.min);
                assert_eq!(p.max, a.max);
                assert!((p.mean - a.mean).abs() < 1e-9);
            }
        }
        // q7 on a station with neighbours
        let hub = d
            .stations
            .iter()
            .copied()
            .max_by_key(|&s| d.graph.out_degree(s))
            .unwrap();
        let (p7, a7) = (
            poly.q7_neighbour_means(hub, &week),
            aig.q7_neighbour_means(hub, &week),
        );
        assert_eq!(p7.len(), a7.len());
        for ((pv, pm), (av, am)) in p7.iter().zip(&a7) {
            assert_eq!(pv, av);
            assert!((pm - am).abs() < 1e-9);
        }
        assert_eq!(
            poly.q8_sustained_below(&week, 18.0, 4),
            aig.q8_sustained_below(&week, 18.0, 4)
        );
    }

    /// The pushdown hook agrees across the chunk-summary fast path
    /// (polyglot), the property-scan override (all-in-graph), and an
    /// explicit fold over the raw range — on both chunk-aligned and
    /// boundary-straddling intervals.
    #[test]
    fn series_summary_agrees_across_backends() {
        let d = tiny();
        let poly = PolyglotStore::load(&d);
        let aig = AllInGraphStore::load(&d);
        let intervals = [
            // aligned: whole chunks, exercises the precomputed-summary path
            Interval::new(d.start, d.start + Duration::from_days(1)),
            // straddles chunk boundaries on both sides
            Interval::new(
                d.start + Duration::from_hours(5),
                d.start + Duration::from_hours(40),
            ),
            Interval::new(d.start, d.end),
            // empty
            Interval::new(d.start, d.start),
        ];
        for &s in &d.stations {
            for iv in &intervals {
                let p = poly.series_summary(s, iv);
                let a = aig.series_summary(s, iv);
                let folded = {
                    let mut acc = hygraph_ts::store::Summary::new();
                    for (_, v) in poly.q1_range(s, iv) {
                        acc.add(v);
                    }
                    acc
                };
                for (got, name) in [(p, "polyglot"), (a, "all-in-graph")] {
                    assert_eq!(got.count, folded.count, "{name} count over {iv:?}");
                    assert!(
                        (got.sum - folded.sum).abs() < 1e-6,
                        "{name} sum over {iv:?}"
                    );
                    if folded.count > 0 {
                        assert_eq!(got.min, folded.min, "{name} min over {iv:?}");
                        assert_eq!(got.max, folded.max, "{name} max over {iv:?}");
                    }
                }
            }
        }
        // missing station → empty summary on both
        let ghost = VertexId::new(999);
        assert_eq!(poly.series_summary(ghost, &Interval::ALL).count, 0);
        assert_eq!(aig.series_summary(ghost, &Interval::ALL).count, 0);
    }

    #[test]
    fn incremental_ingest_matches_bulk_load() {
        let d = tiny();
        let bulk = PolyglotStore::load(&d);
        let mut inc = PolyglotStore::new();
        for &station in &d.stations {
            let data = d.graph.vertex(station).unwrap();
            let v = inc.add_station(data.labels.clone(), data.props.clone());
            assert_eq!(v, station, "dense deterministic ids");
        }
        for (i, &station) in d.stations.iter().enumerate() {
            for (t, v) in d.availability[i].iter() {
                inc.observe(station, t, v).unwrap();
            }
        }
        let iv = Interval::new(d.start, d.end);
        assert_eq!(
            inc.q1_range(d.stations[0], &iv),
            bulk.q1_range(d.stations[0], &iv)
        );
        assert_eq!(inc.q4_mean_all(&iv).len(), bulk.q4_mean_all(&iv).len());
        assert!(inc
            .observe(VertexId::new(999), Timestamp::from_millis(0), 1.0)
            .is_err());
    }

    #[test]
    fn state_codec_roundtrip_is_bit_exact() {
        let d = tiny();
        let mut store = PolyglotStore::load(&d);
        store
            .add_trip(d.stations[0], d.stations[1], ["TRIP"], Default::default())
            .unwrap();
        let mut w = hygraph_types::bytes::ByteWriter::new();
        store.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = hygraph_types::bytes::ByteReader::new(&bytes);
        let back = PolyglotStore::decode_state(&mut r).unwrap();
        r.expect_exhausted().unwrap();
        let mut w2 = hygraph_types::bytes::ByteWriter::new();
        back.encode_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "canonical re-encode");
        assert_eq!(back.stations(), store.stations());
        let iv = Interval::new(d.start, d.end);
        assert_eq!(
            back.q1_range(d.stations[2], &iv),
            store.q1_range(d.stations[2], &iv)
        );
        let mut r = hygraph_types::bytes::ByteReader::new(&bytes[..bytes.len() / 2]);
        assert!(PolyglotStore::decode_state(&mut r).is_err());
    }

    #[test]
    fn missing_station_is_empty() {
        let d = tiny();
        let poly = PolyglotStore::load(&d);
        let ghost = VertexId::new(999);
        assert!(poly.q1_range(ghost, &Interval::ALL).is_empty());
        assert!(poly.q3_mean(ghost, &Interval::ALL).is_none());
    }
}
