//! Storage backends for the paper's Table-1 experiment.
//!
//! The paper benchmarks two ways of persisting a hybrid graph +
//! time-series workload:
//!
//! * **All-in-graph** (Neo4j in the paper): "we store the time series in
//!   Neo4j as properties of nodes and edges, where each timestamp and its
//!   corresponding value are stored as separate properties." Every query
//!   that touches a time range must enumerate a vertex's whole property
//!   map and parse timestamps out of property *keys*. Implemented by
//!   [`AllInGraphStore`].
//! * **Polyglot persistence** (TimeTravelDB = Neo4j + TimescaleDB in the
//!   paper): topology in a graph store, series in a dedicated
//!   chunk-partitioned store with ordered chunk indexes and per-chunk
//!   sparse aggregates. Implemented by [`PolyglotStore`] on top of
//!   [`hygraph_ts::TsStore`].
//!
//! Both implement [`StorageBackend`] — the eight benchmark queries Q1–Q8
//! (simple time-range fetch up to hybrid graph+series aggregation) — and
//! must return **identical answers**; only their access paths (and hence
//! latencies) differ. [`harness`] measures mean response time and
//! coefficient of variation per query, regenerating Table 1.

pub mod all_in_graph;
pub mod backend;
pub mod harness;
pub mod polyglot;

pub use all_in_graph::AllInGraphStore;
pub use backend::{QueryId, StorageBackend};
pub use polyglot::PolyglotStore;
