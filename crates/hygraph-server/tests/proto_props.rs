//! Property tests for the wire layer: frames round-trip for arbitrary
//! payloads; corrupt bytes are detected without losing stream
//! alignment; truncation is always a loud, fatal error — never a panic
//! and never a silently wrong frame.

use hygraph_server::{Request, Response};
use hygraph_types::net::{self, Frame, FrameRead, DEFAULT_MAX_FRAME_BYTES};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #[test]
    fn frames_roundtrip_for_arbitrary_payloads(
        request_id in 0u64..=u64::MAX,
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame::new(request_id, kind, payload);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        match net::read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(back)) => prop_assert_eq!(back, frame),
            other => return Err(TestCaseError::fail(format!("expected frame, got {other:?}"))),
        }
    }

    /// Flipping any single bit of the body is caught by the CRC, and the
    /// stream stays aligned: the *next* frame still decodes intact.
    #[test]
    fn corrupt_body_bytes_are_detected_and_recoverable(
        payload in prop::collection::vec(0u8..=255, 0..128),
        flip_byte in 0usize..137, // 9 body-overhead bytes + max payload
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::new(42, 7, payload);
        let body_len = frame.wire_len() - 12; // minus magic+len+crc
        prop_assume!(flip_byte < body_len);
        let mut bytes = frame.encode();
        bytes[8 + flip_byte] ^= 1 << flip_bit; // inside the CRC-covered body
        let follower = Frame::new(43, 1, b"next".to_vec());
        bytes.extend_from_slice(&follower.encode());
        let mut r = Cursor::new(bytes);
        match net::read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Corrupt(_)) => {}
            other => return Err(TestCaseError::fail(format!("expected Corrupt, got {other:?}"))),
        }
        match net::read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(back)) => prop_assert_eq!(back, follower),
            other => return Err(TestCaseError::fail(format!("lost alignment: {other:?}"))),
        }
    }

    /// Cutting a frame anywhere is a fatal error — the reader can never
    /// mistake a truncated stream for a clean close mid-frame.
    #[test]
    fn truncated_frames_are_fatal_never_silent(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame::new(7, 3, payload);
        let bytes = frame.encode();
        let cut = 1 + (cut_fraction * (bytes.len() - 1) as f64) as usize;
        prop_assume!(cut < bytes.len());
        let out = net::read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME_BYTES);
        prop_assert!(out.is_err(), "cut at {} of {} must be fatal, got {:?}", cut, bytes.len(), out);
    }

    /// Query requests round-trip through the full frame + payload codec
    /// for arbitrary printable query text (the codec does not interpret
    /// the text — parsing happens server-side).
    #[test]
    fn query_requests_roundtrip(text in "\\PC{0,80}", request_id in 0u64..=u64::MAX) {
        let req = Request::Query(text);
        let frame = req.to_frame(request_id);
        let bytes = frame.encode();
        let back = match net::read_frame(&mut Cursor::new(bytes), DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Frame(f)) => f,
            other => return Err(TestCaseError::fail(format!("expected frame, got {other:?}"))),
        };
        prop_assert_eq!(back.request_id, request_id);
        let decoded = Request::from_frame(&back)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(decoded, req);
    }

    /// Arbitrary bytes thrown at the request decoder error out cleanly —
    /// no panic, no partial state.
    #[test]
    fn request_decoder_survives_garbage(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..96),
    ) {
        let frame = Frame::new(1, kind, payload);
        let _ = Request::from_frame(&frame); // Ok or Err, never a panic
        let _ = Response::from_frame(&frame);
    }
}
