//! Observability integration: the `Stats` wire request against a live
//! server, and the drain-drop accounting in [`ShutdownReport`].
//!
//! The metrics registry is process-global, so every test here funnels
//! through one static mutex and asserts on *deltas* between two
//! snapshots rather than absolute counts — absolute values depend on
//! which test ran first.

use hygraph_core::HyGraph;
use hygraph_metrics::Snapshot;
use hygraph_persist::HgMutation;
use hygraph_server::{Backend, Client, Engine, Request, Server};
use hygraph_types::net::ServerConfig;
use hygraph_types::{Label, PropertyMap};
use std::sync::Mutex;
use std::time::Duration;

/// Serialises the tests in this binary: they all observe the one
/// process-global registry.
static REGISTRY_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn config(workers: usize, queue: usize, timeout_ms: u64) -> ServerConfig {
    ServerConfig::new()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(queue)
        .req_timeout_ms(timeout_ms)
}

/// Two `Stats` calls bracket a known request mix; the admitted and
/// completed deltas must account for every request exactly. Each
/// bracketing `Stats` call counts its own admission before it snapshots
/// and its own completion after, so over a serial connection the delta
/// is exactly `K + 1` for `K` bracketed requests.
#[test]
fn stats_over_wire_count_requests_exactly() {
    let _g = guard();
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(2, 16, 5_000)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let before = c.stats().expect("stats before");
    assert!(
        hygraph_metrics::enabled(),
        "tier-1 runs with the default config: metrics on"
    );

    const PINGS: u64 = 5;
    const QUERIES: u64 = 3;
    for _ in 0..PINGS {
        c.ping().expect("ping");
    }
    c.mutate(HgMutation::AddPgVertex {
        labels: vec![Label::new("User")],
        props: PropertyMap::new(),
        validity: hygraph_types::Interval::ALL,
    })
    .expect("mutate");
    for _ in 0..QUERIES {
        c.query("MATCH (u:User) RETURN COUNT(u) AS n")
            .expect("query");
    }
    let after = c.stats().expect("stats after");

    let k = PINGS + 1 + QUERIES;
    assert_eq!(
        after.server.admitted - before.server.admitted,
        k + 1,
        "every request admitted exactly once (plus the closing Stats)"
    );
    assert_eq!(
        after.server.completed - before.server.completed,
        k + 1,
        "every request completed exactly once (plus the opening Stats)"
    );
    assert_eq!(
        after.server.rejected_overload,
        before.server.rejected_overload
    );
    assert_eq!(after.server.bad_frames, before.server.bad_frames);
    // the query timings flowed into the per-class taxonomy: COUNT(..)
    // makes these Q2 (aggregation) under the Table 2 classifier
    let q2 = hygraph_metrics::OpClass::Q2Aggregate as usize;
    assert!(
        after.query.classes[q2].count - before.query.classes[q2].count >= QUERIES,
        "Q2 counter must cover the {QUERIES} aggregating queries"
    );

    server.shutdown().expect("shutdown");
}

/// The snapshot that crossed the wire re-encodes to the exact bytes it
/// decodes from — the canonical-codec guarantee, exercised end to end
/// over TCP rather than in-process.
#[test]
fn wire_snapshot_reencodes_byte_identically() {
    let _g = guard();
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(2, 16, 5_000)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    // put real mass in the histograms and the slow log first
    for _ in 0..4 {
        c.query("MATCH (n) RETURN COUNT(n) AS n").expect("query");
    }
    let snap = c.stats().expect("stats");
    assert!(snap.server.admitted > 0, "live counters crossed the wire");

    let bytes = snap.to_bytes();
    let decoded = Snapshot::from_bytes(&bytes).expect("decode");
    assert_eq!(decoded, snap, "decode must reproduce the snapshot");
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "re-encode must be byte-identical"
    );
    server.shutdown().expect("shutdown");
}

/// The TS compression gauges and rollup counters cross the wire: two
/// `Stats` calls bracket a known chunk-store workload (the server
/// shares this process's registry), and the deltas must match the
/// store's own ground-truth [`compression_stats`] exactly.
#[test]
fn ts_compression_metrics_cross_the_wire() {
    let _g = guard();
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(2, 16, 5_000)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let before = c.stats().expect("stats before");

    // a compressing chunk store: 12 chunks → 11 sealed behind the head,
    // then summarize wide intervals to drive the rollup path
    use hygraph_ts::{TsOptions, TsStore};
    use hygraph_types::{Interval, SeriesId, Timestamp};
    let mut st = TsStore::with_options(
        hygraph_types::Duration::from_millis(100),
        TsOptions::default().compress(true).rollup_fanout(4),
    );
    let id = SeriesId::new(1);
    for i in 0..120 {
        st.insert(id, Timestamp::from_millis(i * 10), (i % 7) as f64);
    }
    let wide = Interval::new(Timestamp::from_millis(5), Timestamp::from_millis(1_195));
    let s = st.summarize(id, &wide);
    assert!(s.count > 0);

    let after = c.stats().expect("stats after");
    let ground_truth = st.compression_stats();
    assert_eq!(
        after.ts.sealed_chunks - before.ts.sealed_chunks,
        ground_truth.sealed_chunks as i64,
        "sealed-chunk gauge delta matches the store"
    );
    assert_eq!(
        after.ts.raw_bytes - before.ts.raw_bytes,
        ground_truth.raw_bytes as i64,
        "raw-bytes gauge delta matches the store"
    );
    assert_eq!(
        after.ts.compressed_bytes - before.ts.compressed_bytes,
        ground_truth.compressed_bytes as i64,
        "compressed-bytes gauge delta matches the store"
    );
    assert!(
        after.ts.rollup_hits > before.ts.rollup_hits,
        "the wide summarize merged precomputed pyramid nodes"
    );
    assert!(
        after.ts.rollup_boundary_decodes > before.ts.rollup_boundary_decodes,
        "both interval boundaries cut through sealed chunks"
    );
    // and the extended snapshot still round-trips its codec
    let bytes = after.to_bytes();
    let decoded = Snapshot::from_bytes(&bytes).expect("decode");
    assert_eq!(decoded.ts.sealed_chunks, after.ts.sealed_chunks);
    assert_eq!(decoded.ts.rollup_hits, after.ts.rollup_hits);

    // undo this test's gauge contributions so other bracketing tests in
    // this binary keep seeing clean deltas
    let _ = st.drop_series(id);
    server.shutdown().expect("shutdown");
}

/// Snapshot-publication instruments (v7) cross the wire: on a
/// multi-shard engine, two `Stats` calls bracket `K` committed batches
/// and the `hygraph_commit_publish_us` histogram gains exactly `K`
/// observations — one per publication. The `hygraph_snapshot_pinned`
/// gauge reads 1 with no readers (only the slot's current epoch is
/// alive), rises to 2 while a held pin keeps a retired epoch live
/// across a commit, and falls back to 1 once the pin drops.
#[test]
fn snapshot_publication_metrics_cross_the_wire() {
    let _g = guard();
    let engine = Engine::with_plan_cache(Backend::memory(HyGraph::new()), 8).with_shards(4);
    let server = Server::serve_engine(engine, &config(2, 16, 5_000)).expect("serve");
    let engine = server.engine();
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let mutation = || HgMutation::AddPgVertex {
        labels: vec![Label::new("User")],
        props: PropertyMap::new(),
        validity: hygraph_types::Interval::ALL,
    };
    let before = c.stats().expect("stats before");
    const COMMITS: u64 = 6;
    for _ in 0..COMMITS {
        c.mutate(mutation()).expect("mutate");
    }
    let after = c.stats().expect("stats after");
    assert_eq!(
        after.shard.commit_publish_us.count - before.shard.commit_publish_us.count,
        COMMITS,
        "every committed batch published exactly one snapshot"
    );
    assert_eq!(
        after.shard.snapshot_pinned, 1,
        "with no readers only the current epoch is alive"
    );

    // pin the current epoch, then retire it with another commit: both
    // the pinned epoch and the new current one are alive
    let pin = engine.pin_snapshot().expect("multi-shard engines pin");
    c.mutate(mutation()).expect("mutate past the pin");
    let held = c.stats().expect("stats with held pin");
    assert_eq!(
        held.shard.snapshot_pinned, 2,
        "a held pin keeps its retired epoch alive"
    );
    assert!(
        held.render_text().contains("hygraph_snapshot_pinned 2"),
        "the gauge reaches the text exposition"
    );
    drop(pin);
    let released = c.stats().expect("stats after release");
    assert_eq!(
        released.shard.snapshot_pinned, 1,
        "dropping the pin releases the retired epoch"
    );

    // the extended (v7) snapshot still round-trips its codec exactly
    let bytes = released.to_bytes();
    let decoded = Snapshot::from_bytes(&bytes).expect("decode");
    assert_eq!(decoded, released);
    assert_eq!(decoded.to_bytes(), bytes);
    server.shutdown().expect("shutdown");
}

/// Requests that sit out their deadline while the server drains are
/// answered-but-not-executed; the shutdown report tallies them.
#[test]
fn shutdown_report_tallies_drain_deadline_drops() {
    let _g = guard();
    // one worker, tight deadline: everything queued behind the parked
    // worker goes stale before the drain reaches it
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(1, 16, 100)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    c.send(&Request::Sleep(500)).expect("park the worker");
    const STALE: u64 = 3;
    for _ in 0..STALE {
        c.send(&Request::Sleep(10)).expect("queue a doomed sleep");
    }
    // all four admitted; the three queued ones out-wait their 100 ms
    // deadline while the worker sleeps
    std::thread::sleep(Duration::from_millis(200));

    let report = server.shutdown().expect("shutdown");
    assert_eq!(
        report.dropped_at_deadline, STALE,
        "exactly the queued requests were dropped at deadline: {report:?}"
    );
    assert_eq!(
        report.drained,
        STALE + 1,
        "the parked sleep plus the drops were all answered: {report:?}"
    );
    assert_eq!(
        report.stats.drain_deadline_drops, report.dropped_at_deadline,
        "the drain-drop counter is the report's tally"
    );
    assert!(
        report.stats.rejected_deadline >= report.stats.drain_deadline_drops,
        "drain drops are a subset of deadline rejections"
    );
}
