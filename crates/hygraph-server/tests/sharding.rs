//! Sharded-engine snapshot isolation: readers pinning epoch snapshots
//! while a writer commits batches must never observe a torn batch —
//! every count they see is a whole number of committed batches, and
//! what a single reader sees only moves forward.

use hygraph_persist::fault::scratch_dir;
use hygraph_persist::HgMutation;
use hygraph_server::{Backend, Engine};
use hygraph_temporal::HistoryConfig;
use hygraph_types::{Interval, Label, PropertyMap, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BATCH: usize = 7; // vertices per committed batch
const BATCHES: usize = 40;

fn station_batch() -> Vec<HgMutation> {
    (0..BATCH)
        .map(|_| HgMutation::AddPgVertex {
            labels: vec![Label::new("Station")],
            props: PropertyMap::new(),
            validity: Interval::ALL,
        })
        .collect()
}

/// The observed station count, which the engine must serve from a
/// consistent snapshot: a torn batch would surface as a non-multiple
/// of `BATCH`.
fn observed_count(engine: &Engine) -> i64 {
    let res = engine
        .query("MATCH (s:Station) RETURN COUNT(s) AS n")
        .expect("count query");
    match res.rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("count must be an int, got {v:?}"),
    }
}

/// Drives `engine` with one writer committing whole batches while
/// reader threads hammer snapshot queries; every observation is
/// checked for batch-atomicity and per-reader monotonicity.
fn readers_never_observe_torn_batches(engine: Arc<Engine>) {
    assert_eq!(engine.shards(), 4, "the test must run the sharded path");
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut observations = 0usize;
                let mut last = 0i64;
                while !done.load(Ordering::Acquire) {
                    let n = observed_count(&engine);
                    assert_eq!(
                        n % BATCH as i64,
                        0,
                        "torn batch: {n} stations is not a whole number of {BATCH}-vertex batches"
                    );
                    assert!(n >= last, "snapshot went backwards: {n} after {last}");
                    last = n;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for _ in 0..BATCHES {
        engine.mutate_batch(station_batch()).expect("commit");
    }
    done.store(true, Ordering::Release);
    let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers must have observed at least once");

    assert_eq!(observed_count(&engine), (BATCH * BATCHES) as i64);
    assert_eq!(
        engine.snapshot_epoch(),
        BATCHES as u64,
        "one snapshot published per committed batch"
    );
}

#[test]
fn memory_sharded_snapshots_are_batch_atomic() {
    let engine = Engine::new(Backend::memory(hygraph_core::HyGraph::new())).with_shards(4);
    readers_never_observe_torn_batches(Arc::new(engine));
}

#[test]
fn durable_sharded_snapshots_are_batch_atomic() {
    let dir = scratch_dir("sharded-snapshot-reads");
    let engine = Engine::open_durable_sharded(&dir, 0, HistoryConfig::disabled(), 4)
        .expect("open sharded store");
    readers_never_observe_torn_batches(Arc::new(engine));
}
