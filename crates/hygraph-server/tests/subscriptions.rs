//! Standing queries over real TCP: subscriptions registered with
//! `SUBSCRIBE`, incremental deltas pushed as unsolicited tagged frames,
//! and the client-side [`Subscription`] replaying them into a local
//! result that must stay **byte-identical** to re-running the query
//! server-side after every commit.
//!
//! The metrics registry is process-global, so (as in `stats_wire.rs`)
//! every test funnels through one static mutex and metric assertions
//! work on deltas between snapshots.

use hygraph_core::{ElementRef, HyGraph, HyGraphBuilder};
use hygraph_persist::HgMutation;
use hygraph_server::{
    Backend, Client, Engine, ErrorCode, Push, Request, Response, Server, SubConfig, Subscription,
};
use hygraph_ts::TimeSeries;
use hygraph_types::bytes::ByteWriter;
use hygraph_types::net::ServerConfig;
use hygraph_types::{
    props, Duration as HgDuration, Interval, Label, PropertyValue, SeriesId, Timestamp, Value,
    VertexId,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serialises the tests in this binary: they all observe the one
/// process-global metrics registry.
static REGISTRY_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn config(workers: usize, queue_depth: usize, timeout_ms: u64) -> ServerConfig {
    ServerConfig::new()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(queue_depth)
        .req_timeout_ms(timeout_ms)
}

fn encoded(result: &hygraph_query::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    result.encode(&mut w);
    w.into_bytes()
}

/// The fixture: one card whose spend series sums to 190 over
/// `[0, 1000)` ms, its user, a merchant, and an unrelated station.
/// Vertex ids are allocated in insertion order: u1=0, c1=1, m1=2, s1=3.
fn instance() -> HyGraph {
    let spend = TimeSeries::generate(Timestamp::ZERO, HgDuration::from_millis(10), 20, |i| {
        i as f64
    });
    HyGraphBuilder::new()
        .univariate("spend", &spend)
        .pg_vertex("u1", ["User"], props! {"name" => "ada", "age" => 34i64})
        .ts_vertex("c1", ["Card"], "spend")
        .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
        .pg_vertex("s1", ["Station"], props! {"name" => "dock-1"})
        .pg_edge(None, "u1", "c1", ["USES"], props! {})
        .pg_edge(None, "c1", "m1", ["TX"], props! {"amount" => 120.0})
        .build()
        .unwrap()
        .hygraph
}

fn add_user(name: &str, age: i64) -> HgMutation {
    HgMutation::AddPgVertex {
        labels: vec![Label::new("User")],
        props: props! {"name" => name, "age" => age},
        validity: Interval::ALL,
    }
}

const Q_USERS: &str = "MATCH (u:User) WHERE u.age > 30 RETURN u.name AS name";
const Q_STATIONS: &str = "MATCH (s:Station) RETURN s.name AS name";
const Q_COUNT: &str = "MATCH (u:User) RETURN COUNT(u) AS n";
const Q_SPENDERS: &str = "MATCH (u:User)-[:USES]->(c:Card) \
     WHERE SUM(DELTA(c) IN [0, 1000)) > 10 RETURN u.name AS who";

/// Drives `subscriber` until every subscription's locally maintained
/// result is byte-identical to re-running its query via `oracle`, then
/// asserts the wire has gone silent (no spurious frames for this
/// commit). Records every sub id that pushed into `seen`.
fn settle(
    subscriber: &mut Client,
    oracle: &mut Client,
    subs: &mut [(Subscription, &str)],
    seen: &mut Vec<u64>,
) {
    let expected: Vec<Vec<u8>> = subs
        .iter()
        .map(|(_, q)| encoded(&oracle.query(*q).expect("oracle query")))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let converged = subs
            .iter()
            .zip(&expected)
            .all(|((s, _), e)| encoded(s.rows()) == *e);
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "subscriptions failed to converge on the oracle's result"
        );
        if let Some((sub_id, push)) = subscriber
            .recv_push_timeout(Duration::from_millis(200))
            .expect("recv_push")
        {
            seen.push(sub_id);
            let (sub, _) = subs
                .iter_mut()
                .find(|(s, _)| s.id() == sub_id)
                .expect("push for an unknown subscription id");
            sub.apply(&push).expect("apply push");
        }
    }
    // converged means every non-empty delta for this commit has been
    // applied and empty ones were never sent — any further frame now
    // would be spurious
    assert!(
        subscriber
            .recv_push_timeout(Duration::from_millis(60))
            .expect("drain")
            .is_none(),
        "no frames may follow convergence"
    );
}

/// The end-to-end gate: four standing queries (incremental, rerun-mode,
/// series-routed, and one nothing touches) tracked across six commit
/// batches covering vertex adds, edge adds, series appends, property
/// rewrites, and a mixed batch. After every commit each subscription
/// must equal a fresh execution byte-for-byte, and the untouched
/// Station query must never receive a single frame.
#[test]
fn standing_queries_track_commits_byte_identically() {
    let _g = guard();
    let server = Server::serve(Backend::memory(instance()), &config(2, 32, 5_000)).expect("serve");
    let mut subscriber = Client::connect(server.local_addr()).expect("connect subscriber");
    let mut oracle = Client::connect(server.local_addr()).expect("connect oracle");

    let queries = [Q_USERS, Q_STATIONS, Q_COUNT, Q_SPENDERS];
    let mut subs: Vec<(Subscription, &str)> = queries
        .iter()
        .map(|q| (subscriber.subscribe(*q).expect("subscribe"), *q))
        .collect();
    // the initial snapshot is a fresh execution
    for (sub, q) in &subs {
        assert_eq!(
            encoded(sub.rows()),
            encoded(&oracle.query(*q).expect("query")),
            "initial snapshot must match a fresh run of {q:?}"
        );
    }
    let station_id = subs[1].0.id();
    let users_id = subs[0].0.id();
    let spenders_id = subs[3].0.id();

    // teen is the sixth vertex the engine allocates (fixture holds
    // 0..=3, grace takes 4), so the age rewrite below targets vertex 5
    let commits: Vec<Vec<HgMutation>> = vec![
        // routes to Users (passes the filter), Count, Spenders
        vec![add_user("grace", 50)],
        // routes to Users but is filtered out → empty delta, no frame
        vec![add_user("teen", 12)],
        // a USES edge: only the path-shaped Spenders query follows
        // edges, and grace's spend now clears the SUM bound
        vec![HgMutation::AddPgEdge {
            src: VertexId::from(4usize),
            dst: VertexId::from(1usize),
            labels: vec![Label::new("USES")],
            props: props! {},
            validity: Interval::ALL,
        }],
        // a series append routes through the TS index to Spenders
        vec![HgMutation::Append {
            series: SeriesId::new(0),
            t: Timestamp::from_millis(300),
            row: vec![100.0],
        }],
        // a property rewrite flips teen past the WHERE bound — the
        // conservative rebuild path
        vec![HgMutation::SetProperty {
            el: ElementRef::Vertex(VertexId::from(5usize)),
            key: "age".to_owned(),
            value: PropertyValue::Static(Value::Int(41)),
        }],
        // a mixed group-commit batch
        vec![
            add_user("bob", 44),
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(310),
                row: vec![1.0],
            },
        ],
    ];
    let mut seen = Vec::new();
    for batch in commits {
        oracle.mutate_batch(batch).expect("commit");
        settle(&mut subscriber, &mut oracle, &mut subs, &mut seen);
    }

    assert!(
        !seen.contains(&station_id),
        "the untouched Station subscription received a frame: {seen:?}"
    );
    assert!(
        seen.contains(&users_id) && seen.contains(&spenders_id),
        "the affected subscriptions pushed deltas: {seen:?}"
    );
    for (sub, q) in &subs {
        assert!(sub.closed().is_none(), "{q:?} was dropped unexpectedly");
    }
    server.shutdown().expect("shutdown");
}

/// A push frame sitting in the socket buffer ahead of pipelined replies
/// must not break correlation: replies are matched by id (here
/// deliberately collected out of order) and the delta is routed to the
/// push queue, not misread as someone's response.
#[test]
fn pushes_interleave_with_pipelined_replies() {
    let _g = guard();
    let server = Server::serve(Backend::memory(instance()), &config(2, 32, 5_000)).expect("serve");
    let mut a = Client::connect(server.local_addr()).expect("connect a");
    let mut m = Client::connect(server.local_addr()).expect("connect m");

    let mut sub = a.subscribe(Q_USERS).expect("subscribe");
    m.mutate(add_user("grace", 50)).expect("commit");
    // let the delta land in a's socket buffer before a sends anything
    std::thread::sleep(Duration::from_millis(150));

    let i1 = a.send(&Request::Ping).expect("send 1");
    let i2 = a.send(&Request::Query(Q_STATIONS.into())).expect("send 2");
    let i3 = a.send(&Request::Ping).expect("send 3");
    assert!(matches!(a.recv_for(i3).expect("recv 3"), Response::Pong));
    match a.recv_for(i2).expect("recv 2") {
        Response::Rows(rows) => assert_eq!(rows.rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
    assert!(matches!(a.recv_for(i1).expect("recv 1"), Response::Pong));

    // the delta read past during correlation is still there, in order
    let (sub_id, push) = a
        .recv_push_timeout(Duration::from_secs(5))
        .expect("recv_push")
        .expect("the delta frame was queued, not lost");
    assert_eq!(sub_id, sub.id());
    sub.apply(&push).expect("apply");
    assert_eq!(
        encoded(sub.rows()),
        encoded(&m.query(Q_USERS).expect("oracle")),
        "after the interleaved traffic the subscription still converges"
    );
    server.shutdown().expect("shutdown");
}

/// An idle subscription connection issues keepalive pings
/// (`HYGRAPH_CLIENT_PING_MS` / [`Client::ping_every_ms`]); the pongs
/// are swallowed so later request/response correlation stays intact.
#[test]
fn idle_subscription_connection_stays_live_via_keepalives() {
    let _g = guard();
    let server = Server::serve(Backend::memory(instance()), &config(2, 32, 5_000)).expect("serve");
    let mut a = Client::connect(server.local_addr())
        .expect("connect a")
        .ping_every_ms(40);
    let mut observer = Client::connect(server.local_addr()).expect("connect observer");

    let _sub = a.subscribe(Q_USERS).expect("subscribe");
    let before = observer.stats().expect("stats before");
    assert!(
        a.recv_push_timeout(Duration::from_millis(400))
            .expect("idle wait")
            .is_none(),
        "nothing was committed, so nothing may arrive"
    );
    let after = observer.stats().expect("stats after");
    // the 400 ms wait at a 40 ms interval produced a stream of admitted
    // pings (the +1 is the closing Stats itself)
    assert!(
        after.server.admitted - before.server.admitted > 4,
        "keepalives kept the connection talking: {} admitted",
        after.server.admitted - before.server.admitted
    );
    // the swallowed pongs left correlation intact
    a.ping().expect("explicit ping still works");
    let rows = a.query(Q_COUNT).expect("query still works");
    assert_eq!(rows.rows, vec![vec![Value::Int(1)]]);

    // the env knob wires the same interval at connect time
    std::env::set_var("HYGRAPH_CLIENT_PING_MS", "25");
    let mut b = Client::connect(server.local_addr()).expect("connect b");
    std::env::remove_var("HYGRAPH_CLIENT_PING_MS");
    let _sub_b = b.subscribe(Q_STATIONS).expect("subscribe b");
    assert!(b
        .recv_push_timeout(Duration::from_millis(120))
        .expect("idle wait b")
        .is_none());
    b.ping()
        .expect("env-configured keepalive client stays correlated");

    server.shutdown().expect("shutdown");
}

/// A subscriber whose push buffer is full is disconnected with a typed
/// [`Push::Closed`] instead of stalling the commit path. `push_buffer(0)`
/// makes the very first delta overflow deterministically.
#[test]
fn slow_consumer_is_dropped_with_a_typed_close() {
    let _g = guard();
    let engine = Engine::new(Backend::memory(instance()))
        .with_sub_config(SubConfig::default().push_buffer(0));
    let server = Server::serve_engine(engine, &config(2, 32, 5_000)).expect("serve");
    let mut a = Client::connect(server.local_addr()).expect("connect a");
    let mut m = Client::connect(server.local_addr()).expect("connect m");

    let mut sub = a.subscribe(Q_USERS).expect("subscribe");
    m.mutate(add_user("grace", 50)).expect("commit");

    let (sub_id, push) = a
        .recv_push_timeout(Duration::from_secs(5))
        .expect("recv_push")
        .expect("the close frame arrives even though the buffer is full");
    assert_eq!(sub_id, sub.id());
    match &push {
        Push::Closed { reason } => {
            assert!(reason.contains("slow consumer"), "reason: {reason}")
        }
        other => panic!("expected a typed close, got {other:?}"),
    }
    sub.apply(&push).expect("apply");
    assert!(sub.closed().expect("closed").contains("slow consumer"));

    // the registry dropped the subscription: later commits are silent
    m.mutate(add_user("alan", 50)).expect("commit 2");
    assert!(a
        .recv_push_timeout(Duration::from_millis(100))
        .expect("drain")
        .is_none());
    // the connection itself survives for request/response traffic
    a.ping().expect("connection still serves requests");
    server.shutdown().expect("shutdown");
}

/// The subscription instruments cross the wire: the `active` gauge
/// tracks the registry, `deltas_pushed` counts non-empty frames,
/// `fallback_reruns` counts rerun-mode commits, and the text rendering
/// names them all.
#[test]
fn subscription_metrics_bracket_the_lifecycle() {
    let _g = guard();
    let server = Server::serve(Backend::memory(instance()), &config(2, 32, 5_000)).expect("serve");
    let mut a = Client::connect(server.local_addr()).expect("connect a");
    let mut m = Client::connect(server.local_addr()).expect("connect m");
    assert!(
        hygraph_metrics::enabled(),
        "tier-1 runs with the default config: metrics on"
    );

    let before = m.stats().expect("stats before");
    let mut inc = a.subscribe(Q_USERS).expect("subscribe incremental");
    let mut cnt = a.subscribe(Q_COUNT).expect("subscribe rerun-mode");
    let mid = m.stats().expect("stats mid");
    assert_eq!(
        mid.sub.active - before.sub.active,
        2,
        "two standing queries registered"
    );

    m.mutate(add_user("grace", 50)).expect("commit");
    for _ in 0..2 {
        let (sub_id, push) = a
            .recv_push_timeout(Duration::from_secs(5))
            .expect("recv_push")
            .expect("both subscriptions push for this commit");
        let sub = if sub_id == inc.id() {
            &mut inc
        } else {
            &mut cnt
        };
        sub.apply(&push).expect("apply");
    }
    let after = m.stats().expect("stats after");
    assert!(
        after.sub.deltas_pushed - before.sub.deltas_pushed >= 2,
        "both deltas were counted"
    );
    assert!(
        after.sub.fallback_reruns - before.sub.fallback_reruns >= 1,
        "the COUNT subscription re-executes instead of maintaining"
    );
    assert_eq!(
        after.sub.slow_consumer_drops,
        before.sub.slow_consumer_drops
    );

    assert!(a.unsubscribe(inc.id()).expect("unsubscribe inc"));
    assert!(a.unsubscribe(cnt.id()).expect("unsubscribe cnt"));
    let end = m.stats().expect("stats end");
    assert_eq!(
        end.sub.active, before.sub.active,
        "the gauge returns to its baseline"
    );
    for name in [
        "hygraph_sub_active",
        "hygraph_sub_deltas_pushed_total",
        "hygraph_sub_fallback_reruns_total",
        "hygraph_sub_slow_consumer_drops_total",
    ] {
        assert!(
            end.render_text().contains(name),
            "render_text must name {name}"
        );
    }
    server.shutdown().expect("shutdown");
}

/// Unsubscribe semantics: `existed` is true exactly once, a removed
/// subscription pushes nothing, and the in-process [`LocalClient`] is
/// refused — subscriptions are connection-bound.
#[test]
fn unsubscribe_is_idempotent_and_local_clients_are_refused() {
    let _g = guard();
    let server = Server::serve(Backend::memory(instance()), &config(2, 16, 5_000)).expect("serve");
    let mut a = Client::connect(server.local_addr()).expect("connect a");
    let mut m = Client::connect(server.local_addr()).expect("connect m");

    let sub = a.subscribe(Q_USERS).expect("subscribe");
    assert!(a.unsubscribe(sub.id()).expect("first unsubscribe"));
    assert!(!a.unsubscribe(sub.id()).expect("second unsubscribe"));

    m.mutate(add_user("grace", 50)).expect("commit");
    assert!(a
        .recv_push_timeout(Duration::from_millis(100))
        .expect("drain")
        .is_none());

    match server
        .local_client()
        .handle(&Request::Subscribe(Q_USERS.into()))
    {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Exec);
            assert!(message.contains("connection"), "message: {message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    server.shutdown().expect("shutdown");
}
