//! End-to-end serving suite over real TCP sockets: concurrent mixed
//! workloads, overload rejection, deadline drops, mid-request
//! disconnects, frame corruption on a live connection, and graceful
//! shutdown with the WAL intact across a restart.

use hygraph_core::HyGraph;
use hygraph_persist::fault::scratch_dir;
use hygraph_persist::{Durable, DurableStore, HgMutation};
use hygraph_server::{Backend, Client, ErrorCode, Request, Response, Server};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::net::{self, FrameRead, ServerConfig, DEFAULT_MAX_FRAME_BYTES};
use hygraph_types::{HyGraphError, Interval, Label, PropertyMap, SeriesId, Timestamp, Value};
use std::net::TcpStream;
use std::time::Duration;

fn config(workers: usize, queue_depth: usize, timeout_ms: u64) -> ServerConfig {
    ServerConfig::new()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(queue_depth)
        .req_timeout_ms(timeout_ms)
}

fn pg_vertex(label: &str) -> HgMutation {
    HgMutation::AddPgVertex {
        labels: vec![Label::new(label)],
        props: PropertyMap::new(),
        validity: Interval::ALL,
    }
}

/// One station per writer: a series plus the ts-vertex whose identity
/// it is.
fn seed_mutations(writers: usize) -> Vec<HgMutation> {
    let mut ms = Vec::new();
    for w in 0..writers {
        ms.push(HgMutation::AddSeries {
            names: vec![format!("avail-{w}")],
            rows: vec![],
        });
        ms.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Station")],
            series: SeriesId::new(w as u64),
        });
    }
    ms.push(pg_vertex("User"));
    ms
}

/// The appends writer `w` performs, in order. Distinct writers touch
/// distinct series, so the final state is independent of how the
/// server interleaves them.
fn writer_appends(w: usize, n: usize) -> Vec<HgMutation> {
    (0..n)
        .map(|i| HgMutation::Append {
            series: SeriesId::new(w as u64),
            t: Timestamp::from_millis((i as i64) * 60_000),
            row: vec![(w * 1000 + i) as f64],
        })
        .collect()
}

const FINAL_QUERIES: &[&str] = &[
    "MATCH (s:Station) RETURN COUNT(s) AS n",
    "MATCH (u:User) RETURN COUNT(u) AS n",
];

fn encoded(result: &hygraph_query::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    result.encode(&mut w);
    w.into_bytes()
}

/// ≥ 8 concurrent clients (4 writers + 4 readers) over real sockets;
/// the served end state and query results are byte-identical to the
/// same workload executed as direct library calls.
#[test]
fn concurrent_mixed_workload_matches_direct_library_calls() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const APPENDS: usize = 40;

    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(4, 64, 10_000)).expect("serve");
    let addr = server.local_addr();

    let mut seeder = Client::connect(addr).expect("connect seeder");
    seeder
        .mutate_batch(seed_mutations(WRITERS))
        .expect("seed batch");

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect writer");
                for m in writer_appends(w, APPENDS) {
                    c.mutate(m).expect("append");
                }
            });
        }
        for _ in 0..READERS {
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect reader");
                for _ in 0..20 {
                    let rows = c
                        .query("MATCH (s:Station) RETURN COUNT(s) AS n")
                        .expect("query under write load");
                    assert_eq!(rows.rows[0][0], Value::Int(WRITERS as i64));
                }
            });
        }
    });

    // the reference: the identical workload as direct library calls
    let mut reference = HyGraph::new();
    for m in seed_mutations(WRITERS) {
        reference.apply(&m).expect("reference seed");
    }
    for w in 0..WRITERS {
        for m in writer_appends(w, APPENDS) {
            reference.apply(&m).expect("reference append");
        }
    }

    for q in FINAL_QUERIES {
        let served = seeder.query(*q).expect("served final query");
        let direct = hygraph_query::query(&reference, q).expect("direct final query");
        assert_eq!(
            encoded(&served),
            encoded(&direct),
            "served and direct results must be byte-identical for {q}"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.rejected_overload, 0, "workload fits the queue");
    assert!(stats.admitted >= (WRITERS * APPENDS + READERS * 20 + 1) as u64);

    let backend = server
        .shutdown()
        .expect("shutdown")
        .backend
        .expect("backend");
    let mut w = ByteWriter::new();
    reference.encode_state(&mut w);
    assert_eq!(
        backend.state_bytes(),
        w.into_bytes(),
        "served end state must be byte-identical to the direct one"
    );
}

/// A saturated worker pool + full admission queue yields an explicit,
/// typed overload rejection — and the work already admitted still
/// completes.
#[test]
fn saturated_queue_rejects_with_overload() {
    // one worker, one queue slot, no deadline
    let server = Server::serve(Backend::memory(HyGraph::new()), &config(1, 1, 0)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let s1 = c.send(&Request::Sleep(600)).expect("send sleep 1");
    // let the worker pick s1 up so the queue slot is truly free
    std::thread::sleep(Duration::from_millis(150));
    let s2 = c.send(&Request::Sleep(10)).expect("send sleep 2"); // fills the slot
    let p = c.send(&Request::Ping).expect("send ping"); // overflows

    let rejected = c.recv_for(p).expect("recv ping reply");
    match rejected {
        Response::Error {
            code: ErrorCode::Overloaded,
            ..
        } => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // admitted work still completes
    assert_eq!(c.recv_for(s1).expect("sleep 1 reply"), Response::Pong);
    assert_eq!(c.recv_for(s2).expect("sleep 2 reply"), Response::Pong);

    // the typed client surfaces the rejection as a retryable error
    let err = c.sleep(0).err();
    assert!(err.is_none(), "server must serve again after the burst");
    let stats = server.stats();
    assert!(stats.rejected_overload >= 1, "stats: {stats:?}");
    server.shutdown().expect("shutdown");
}

/// A request that out-waits its deadline in the queue is dropped
/// unexecuted with a typed error.
#[test]
fn queued_requests_past_their_deadline_are_dropped() {
    let server = Server::serve(Backend::memory(HyGraph::new()), &config(1, 8, 100)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let s = c.send(&Request::Sleep(400)).expect("send sleep");
    let m = c
        .send(&Request::Mutate(pg_vertex("User")))
        .expect("send mutate");

    match c.recv_for(m).expect("mutate reply") {
        Response::Error {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(c.recv_for(s).expect("sleep reply"), Response::Pong);
    // dropped means dropped: the mutation never executed
    let rows = c
        .query("MATCH (u:User) RETURN COUNT(u) AS n")
        .expect("query");
    assert_eq!(rows.rows[0][0], Value::Int(0));
    assert!(server.stats().rejected_deadline >= 1);
    server.shutdown().expect("shutdown");
}

/// A client that disconnects with requests in flight neither crashes
/// the server nor loses the admitted work.
#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(1, 8, 5_000)).expect("serve");
    let addr = server.local_addr();

    let mut doomed = Client::connect(addr).expect("connect doomed");
    doomed.send(&Request::Sleep(200)).expect("send sleep");
    doomed
        .send(&Request::Mutate(pg_vertex("Ghost")))
        .expect("send mutate");
    doomed.close(); // gone before any reply

    // the admitted mutation still executes; the server keeps serving
    let mut c = Client::connect(addr).expect("connect fresh");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let rows = c
            .query("MATCH (g:Ghost) RETURN COUNT(g) AS n")
            .expect("query");
        if rows.rows[0][0] == Value::Int(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "mutation from the disconnected client never applied"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    c.ping().expect("server healthy");
    server.shutdown().expect("shutdown");
}

/// A corrupt frame on a live connection draws a typed `BadFrame` reply
/// and the connection keeps working — only unframeable garbage kills it.
#[test]
fn corrupt_frame_is_rejected_without_killing_the_connection() {
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(2, 8, 5_000)).expect("serve");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");

    // a valid query frame with one payload byte flipped after encoding
    let mut bytes = Request::Query("MATCH (n) RETURN COUNT(n) AS n".into())
        .to_frame(7)
        .encode();
    let last = bytes.len() - 5; // inside the payload, before the CRC
    bytes[last] ^= 0x20;
    use std::io::Write;
    stream.write_all(&bytes).expect("write corrupt frame");

    match net::read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("read reply") {
        FrameRead::Frame(f) => {
            assert_eq!(f.request_id, 0, "CRC failures are connection-level");
            match Response::from_frame(&f).expect("decode reply") {
                Response::Error {
                    code: ErrorCode::BadFrame,
                    ..
                } => {}
                other => panic!("expected BadFrame, got {other:?}"),
            }
        }
        other => panic!("expected a reply frame, got {other:?}"),
    }

    // the same connection still serves intact frames
    net::write_frame(
        &mut stream,
        &Request::Ping.to_frame(8),
        DEFAULT_MAX_FRAME_BYTES,
    )
    .expect("write ping");
    match net::read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("read pong") {
        FrameRead::Frame(f) => {
            assert_eq!(f.request_id, 8);
            assert_eq!(Response::from_frame(&f).expect("decode"), Response::Pong);
        }
        other => panic!("expected pong frame, got {other:?}"),
    }
    assert!(server.stats().bad_frames >= 1);
    server.shutdown().expect("shutdown");
}

/// Graceful shutdown drains admitted requests (a mutation queued behind
/// a sleeping worker still commits), syncs the WAL, and a reopened
/// store recovers the exact pre-shutdown state, bit for bit.
#[test]
fn graceful_shutdown_drains_and_recovers_bit_identical() {
    let dir = scratch_dir("server_shutdown");
    let store = DurableStore::<HyGraph>::open(&dir).expect("open store");
    let server = Server::serve(Backend::durable(store), &config(1, 16, 5_000)).expect("serve");
    let mut c = Client::connect(server.local_addr()).expect("connect");

    c.mutate_batch(seed_mutations(2)).expect("seed");
    // park the only worker, then queue a mutation behind it
    c.send(&Request::Sleep(300)).expect("send sleep");
    c.send(&Request::Mutate(pg_vertex("LastWrite")))
        .expect("send mutate");
    std::thread::sleep(Duration::from_millis(100)); // both admitted

    let report = server.shutdown().expect("shutdown");
    assert!(
        report.drained >= 1,
        "the queued sleep/mutation were answered during the drain: {report:?}"
    );
    let backend = report.backend.expect("backend returned");
    // the drain executed the queued mutation before the WAL sync
    assert_eq!(
        backend.graph().vertex_count(),
        2 + 1 + 1,
        "stations + user + the drained LastWrite vertex"
    );
    let pre_shutdown = backend.state_bytes();
    drop(backend);

    let reopened = DurableStore::<HyGraph>::open(&dir).expect("reopen");
    assert_eq!(
        reopened.state_bytes(),
        pre_shutdown,
        "recovery must be bit-identical to the pre-shutdown state"
    );

    // and the recovered store serves again
    let server =
        Server::serve(Backend::durable(reopened), &config(2, 16, 5_000)).expect("serve again");
    let mut c = Client::connect(server.local_addr()).expect("reconnect");
    let rows = c
        .query("MATCH (v:LastWrite) RETURN COUNT(v) AS n")
        .expect("query recovered state");
    assert_eq!(rows.rows[0][0], Value::Int(1));
    server.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// `EXPLAIN` returns the optimized plan rendering — not rows — through
/// both client paths: the in-process [`hygraph_server::LocalClient`]
/// and a real TCP [`Client`]. The rendering is the stable plan text
/// (fingerprint header, rules line, operator pipeline) and the two
/// paths agree byte for byte.
#[test]
fn explain_works_over_the_wire() {
    let server =
        Server::serve(Backend::memory(HyGraph::new()), &config(2, 8, 5_000)).expect("serve");
    let local = server.local_client();
    local.mutate_batch(seed_mutations(2)).expect("seed");

    let text = "EXPLAIN MATCH (s:Station) WHERE s.kind = 'dock' \
                RETURN s AS station ORDER BY station LIMIT 5";
    let via_local = local.query(text).expect("local EXPLAIN");
    assert_eq!(via_local.columns, vec!["plan"]);
    let lines: Vec<String> = via_local.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(
        lines[0].starts_with("Plan fingerprint=0x"),
        "header: {lines:?}"
    );
    assert!(lines[1].starts_with("rules: "), "rules line: {lines:?}");
    assert_eq!(lines[2], "Limit 5");
    assert_eq!(lines[3], "  Sort station ASC");
    assert_eq!(lines[4], "    Project station := s");
    assert!(
        lines[5].contains("Match (s:Station)") && lines[5].contains("pushed=[s.kind = 'dock']"),
        "pushdown visible in plan: {lines:?}"
    );

    let mut c = Client::connect(server.local_addr()).expect("connect");
    let via_tcp = c.query(text).expect("TCP EXPLAIN");
    assert_eq!(
        encoded(&via_tcp),
        encoded(&via_local),
        "wire and local EXPLAIN renderings must be byte-identical"
    );
    // the un-prefixed query still returns data rows
    let rows = c
        .query("MATCH (s:Station) RETURN s AS station ORDER BY station LIMIT 5")
        .expect("plain query");
    assert_eq!(rows.columns, vec!["station"]);
    assert_eq!(rows.rows.len(), 2);
    server.shutdown().expect("shutdown");
}

/// Requests arriving after shutdown begins get a typed retryable
/// rejection, not a hang or a silent drop.
#[test]
fn requests_after_drain_starts_are_rejected_as_shutting_down() {
    let server = Server::serve(Backend::memory(HyGraph::new()), &config(1, 4, 0)).expect("serve");
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    // park the worker so shutdown has something to drain
    c.send(&Request::Sleep(400)).expect("send sleep");
    std::thread::sleep(Duration::from_millis(100));

    let shutdown = std::thread::spawn(move || server.shutdown().expect("shutdown"));
    std::thread::sleep(Duration::from_millis(100)); // queue now closed
                                                    // the reader answers ShuttingDown (or the connection is already
                                                    // gone, which the client reports as unavailable)
    let err = c.ping().expect_err("ping during drain must fail");
    assert!(
        matches!(
            err,
            // ShuttingDown reply, connection already closed, or the
            // socket torn down mid-read — all are clean failures
            HyGraphError::Unavailable(_) | HyGraphError::Io(_) | HyGraphError::Corrupt { .. }
        ),
        "got {err:?}"
    );
    shutdown.join().expect("shutdown thread");
}
