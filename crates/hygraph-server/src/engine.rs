//! The session-shared execution engine: one HyGraph instance — plain or
//! durable — behind a readers/writer lock.
//!
//! Queries take the read lock and run concurrently; mutations take the
//! write lock and go through the durable store's group-commit path when
//! persistence is on. The engine is the single place that maps
//! [`Request`]s to [`Response`]s, so the TCP server, the in-process
//! [`crate::LocalClient`], and the load generator all execute requests
//! identically.

use crate::proto::{ErrorCode, Request, Response};
use hygraph_core::HyGraph;
use hygraph_persist::{Durable, DurableStore, HgMutation};
use hygraph_query::{PlanCacheHook, PlannedQuery, QueryResult};
use hygraph_sub::{DeltaSink, SubConfig, SubscriptionRegistry};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::Result;
use std::sync::{Arc, Mutex, RwLock};

/// Default plan-cache capacity when `HYGRAPH_PLAN_CACHE` is unset.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// A bounded move-to-front LRU of compiled plans, keyed by the query's
/// canonical fingerprint. Plans are data-independent (pattern
/// compilation never looks at the instance), so entries stay valid
/// across mutations and a cached plan re-executes against whatever
/// state the read lock currently exposes.
struct PlanCache {
    entries: Mutex<Vec<(u64, Arc<PlannedQuery>)>>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }
}

impl PlanCacheHook for PlanCache {
    fn get(&self, fingerprint: u64) -> Option<Arc<PlannedQuery>> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let pos = entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let hit = entries.remove(pos);
        let plan = Arc::clone(&hit.1);
        entries.insert(0, hit); // move to front
        Some(plan)
    }

    fn put(&self, fingerprint: u64, plan: Arc<PlannedQuery>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|(fp, _)| *fp == fingerprint) {
            entries.remove(pos);
        }
        entries.insert(0, (fingerprint, plan));
        entries.truncate(self.capacity);
    }
}

/// Plan-cache capacity from `HYGRAPH_PLAN_CACHE` (`0` disables the
/// cache; unset/unparsable falls back to the default of
/// [`DEFAULT_PLAN_CACHE_CAPACITY`]).
fn plan_cache_capacity_from_env() -> usize {
    std::env::var("HYGRAPH_PLAN_CACHE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY)
}

/// The state a server serves: the full hybrid model, either purely in
/// memory or wrapped in the WAL/checkpoint engine.
pub enum Backend {
    /// In-memory only — mutations die with the process. `applied`
    /// counts mutations so replies carry monotone pseudo-LSNs.
    Memory {
        /// The instance.
        hg: Box<HyGraph>,
        /// Mutations applied so far (the pseudo-LSN counter).
        applied: u64,
    },
    /// Durable: every committed mutation is WAL-logged and survives a
    /// crash (see `hygraph-persist`).
    Durable(Box<DurableStore<HyGraph>>),
}

impl Backend {
    /// An in-memory backend over `hg`.
    pub fn memory(hg: HyGraph) -> Self {
        Backend::Memory {
            hg: Box::new(hg),
            applied: 0,
        }
    }

    /// A durable backend over an opened store.
    pub fn durable(store: DurableStore<HyGraph>) -> Self {
        Backend::Durable(Box::new(store))
    }

    /// The wrapped instance, whichever backend holds it.
    pub fn graph(&self) -> &HyGraph {
        match self {
            Backend::Memory { hg, .. } => hg,
            Backend::Durable(store) => store.get(),
        }
    }

    /// The exact binary state encoding (recovery tests compare these
    /// bytes for bit-identity across a shutdown/reopen cycle).
    pub fn state_bytes(&self) -> Vec<u8> {
        match self {
            Backend::Memory { hg, .. } => {
                let mut w = ByteWriter::new();
                hg.encode_state(&mut w);
                w.into_bytes()
            }
            Backend::Durable(store) => store.state_bytes(),
        }
    }
}

/// Thread-safe request executor over a [`Backend`] (see module docs).
pub struct Engine {
    inner: RwLock<Backend>,
    /// Shared compiled-plan LRU; `None` when `HYGRAPH_PLAN_CACHE=0`.
    plan_cache: Option<PlanCache>,
    /// Standing queries. Registration runs under the read lock (a
    /// snapshot and its registration are atomic w.r.t. writers);
    /// [`Engine::mutate_batch`] notifies it under the write lock, so
    /// every subscriber observes each committed batch exactly once, in
    /// commit order.
    subs: SubscriptionRegistry,
}

impl Engine {
    /// An engine serving `backend`, with the plan-cache capacity taken
    /// from `HYGRAPH_PLAN_CACHE` (default 64 entries, `0` disables).
    pub fn new(backend: Backend) -> Self {
        Self::with_plan_cache(backend, plan_cache_capacity_from_env())
    }

    /// An engine with an explicit plan-cache capacity (`0` disables) —
    /// lets tests pin the behaviour regardless of the environment.
    pub fn with_plan_cache(backend: Backend, capacity: usize) -> Self {
        Self {
            inner: RwLock::new(backend),
            plan_cache: (capacity > 0).then(|| PlanCache::new(capacity)),
            subs: SubscriptionRegistry::from_env(),
        }
    }

    /// Replaces the subscription-layer settings (cap, push-buffer
    /// depth) — lets tests pin them regardless of the environment.
    pub fn with_sub_config(mut self, cfg: SubConfig) -> Self {
        self.subs = SubscriptionRegistry::new(cfg);
        self
    }

    /// The standing-query registry this engine notifies on commit.
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    /// Registers a standing query for connection `conn` under the read
    /// lock: the returned snapshot and the registration are atomic with
    /// respect to mutation batches.
    pub fn subscribe(
        &self,
        text: &str,
        conn: u64,
        sink: Arc<dyn DeltaSink>,
    ) -> Result<(u64, QueryResult)> {
        let guard = self.read();
        self.subs.subscribe(guard.graph(), text, conn, sink)
    }

    /// Removes standing query `sub_id` if it belongs to `conn`.
    pub fn unsubscribe(&self, conn: u64, sub_id: u64) -> bool {
        self.subs.unsubscribe(conn, sub_id)
    }

    /// Drops every standing query of a disconnected client.
    pub fn drop_conn(&self, conn: u64) {
        self.subs.drop_conn(conn);
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Backend> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Backend> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes a HyQL query under the read lock (concurrent with other
    /// queries), consulting the engine's plan cache: repeated query
    /// shapes skip parsing's downstream cost — lowering, optimization,
    /// and pattern compilation — and go straight to execution.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        let guard = self.read();
        hygraph_query::run_instrumented(
            guard.graph(),
            text,
            self.plan_cache.as_ref().map(|c| c as &dyn PlanCacheHook),
        )
    }

    /// Runs `f` against the instance under the read lock — how tests
    /// compare served results against direct library calls.
    pub fn with_graph<R>(&self, f: impl FnOnce(&HyGraph) -> R) -> R {
        f(self.read().graph())
    }

    /// Applies a batch of mutations under the write lock. Durable
    /// backends group-commit (WAL append + one fsync); on reply the
    /// batch is on disk. Returns `(first_lsn, count)`.
    pub fn mutate_batch(&self, mutations: Vec<HgMutation>) -> Result<(u64, u64)> {
        let count = mutations.len() as u64;
        let mut guard = self.write();
        if self.subs.is_empty() {
            // no standing queries: the original zero-overhead path (the
            // write lock excludes concurrent subscribes, so the check
            // cannot race a registration)
            return match &mut *guard {
                Backend::Memory { hg, applied } => {
                    let first = *applied;
                    for m in &mutations {
                        hg.apply(m)?;
                        *applied += 1;
                    }
                    Ok((first, count))
                }
                Backend::Durable(store) => {
                    let range = store.commit_batch(mutations)?;
                    Ok((range.start, range.end - range.start))
                }
            };
        }
        let pre_v = guard.graph().topology().vertex_capacity();
        let pre_e = guard.graph().topology().edge_capacity();
        let outcome = match &mut *guard {
            Backend::Memory { hg, applied } => {
                let mut res = Ok((*applied, count));
                for m in &mutations {
                    if let Err(e) = hg.apply(m) {
                        res = Err(e);
                        break;
                    }
                    *applied += 1;
                }
                res
            }
            Backend::Durable(store) => store
                .commit_batch(mutations.clone())
                .map(|range| (range.start, range.end - range.start)),
        };
        // both backends keep the valid prefix of a failed batch, so
        // subscribers must still observe it (failed => rebuild path)
        self.subs
            .on_commit(guard.graph(), &mutations, pre_v, pre_e, outcome.is_err());
        outcome
    }

    /// Forces a checkpoint on a durable backend; a no-op pseudo-LSN
    /// report on a memory backend.
    pub fn checkpoint(&self) -> Result<u64> {
        let mut guard = self.write();
        match &mut *guard {
            Backend::Memory { applied, .. } => Ok(*applied),
            Backend::Durable(store) => {
                store.checkpoint()?;
                Ok(store.checkpoint_lsn())
            }
        }
    }

    /// Makes every staged mutation durable — the shutdown path's final
    /// WAL sync. A no-op for memory backends.
    pub fn sync(&self) -> Result<()> {
        match &mut *self.write() {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => store.sync(),
        }
    }

    /// Executes one request, mapping every failure to a typed error
    /// response — the engine never panics on client input and never
    /// loses an error. [`Request::Sleep`] is *not* handled here (it
    /// would hold no lock but would still occupy this call); the worker
    /// pool services it before consulting the engine.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match request {
            Request::Ping | Request::Sleep(_) => return Response::Pong,
            // lock-free: the registry is all atomics, and a disabled
            // registry answers with an all-zero snapshot so the wire
            // request never errors
            Request::Stats => {
                return Response::Stats(Box::new(hygraph_metrics::snapshot().unwrap_or_default()))
            }
            Request::Query(text) => self.query(text).map(Response::Rows),
            Request::Mutate(m) => self
                .mutate_batch(vec![m.clone()])
                .map(|(first_lsn, count)| Response::Committed { first_lsn, count }),
            Request::MutateBatch(ms) => self
                .mutate_batch(ms.clone())
                .map(|(first_lsn, count)| Response::Committed { first_lsn, count }),
            Request::Checkpoint => self
                .checkpoint()
                .map(|lsn| Response::CheckpointDone { lsn }),
            // subscriptions are connection-scoped: the serving layer
            // intercepts these before the engine (it owns the sink); a
            // connectionless caller (LocalClient) has nowhere to push
            Request::Subscribe(_) | Request::Unsubscribe { .. } => {
                return Response::Error {
                    code: ErrorCode::Exec,
                    message: "subscriptions require a connection; use Client::subscribe \
                              over TCP"
                        .to_string(),
                }
            }
        };
        result.unwrap_or_else(|e| Response::Error {
            code: ErrorCode::Exec,
            message: e.to_string(),
        })
    }

    /// The exact binary state encoding at this instant.
    pub fn state_bytes(&self) -> Vec<u8> {
        self.read().state_bytes()
    }

    /// Consumes the engine, returning the backend (the shutdown path
    /// hands it back for inspection or reuse).
    pub fn into_backend(self) -> Backend {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.read();
        let kind = match &*guard {
            Backend::Memory { .. } => "memory",
            Backend::Durable(_) => "durable",
        };
        f.debug_struct("Engine")
            .field("backend", &kind)
            .field("vertices", &guard.graph().vertex_count())
            .finish()
    }
}

// `HyGraphError` values crossing the engine are plain data; the lock
// poisoning strategy above (into_inner) means a panicking writer cannot
// wedge the server — but engine code paths return errors instead of
// panicking in the first place.
fn _engine_is_send_sync(e: Engine) -> impl Send + Sync {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Interval, Label, PropertyMap, SeriesId, Timestamp};

    fn seed_mutations() -> Vec<HgMutation> {
        vec![
            HgMutation::AddSeries {
                names: vec!["avail".into()],
                rows: vec![],
            },
            HgMutation::AddTsVertex {
                labels: vec![Label::new("Station")],
                series: SeriesId::new(0),
            },
            HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            },
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(5),
                row: vec![3.5],
            },
        ]
    }

    #[test]
    fn memory_engine_serves_queries_and_mutations() {
        let engine = Engine::new(Backend::memory(HyGraph::new()));
        let (first, count) = engine.mutate_batch(seed_mutations()).unwrap();
        assert_eq!((first, count), (0, 4));
        let r = engine
            .query("MATCH (s:Station) RETURN COUNT(s) AS n")
            .unwrap();
        assert_eq!(r.rows[0][0], hygraph_types::Value::Int(1));
        // pseudo-LSNs advance monotonically
        let (first, _) = engine
            .mutate_batch(vec![HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            }])
            .unwrap();
        assert_eq!(first, 4);
    }

    #[test]
    fn handle_maps_failures_to_error_responses() {
        let engine = Engine::new(Backend::memory(HyGraph::new()));
        // bad query text
        let resp = engine.handle(&Request::Query("MTCH oops".into()));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Exec,
                ..
            }
        ));
        // mutation referencing a missing series
        let resp = engine.handle(&Request::Mutate(HgMutation::Append {
            series: SeriesId::new(99),
            t: Timestamp::from_millis(0),
            row: vec![1.0],
        }));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Exec,
                ..
            }
        ));
        assert_eq!(engine.handle(&Request::Ping), Response::Pong);
    }

    #[test]
    fn plan_cache_reuses_and_evicts() {
        let cache = PlanCache::new(2);
        let plan = |text: &str| {
            let q = hygraph_query::parser::parse(text).unwrap();
            (
                hygraph_query::plan::fingerprint(&q),
                Arc::new(hygraph_query::plan_query(&q).unwrap()),
            )
        };
        let (fp_a, a) = plan("MATCH (u:User) RETURN u");
        let (fp_b, b) = plan("MATCH (m:Merchant) RETURN m");
        let (fp_c, c) = plan("MATCH (c:Card) RETURN c");
        assert!(cache.get(fp_a).is_none());
        cache.put(fp_a, a);
        cache.put(fp_b, b);
        assert!(cache.get(fp_a).is_some(), "hit moves a to front");
        cache.put(fp_c, c); // evicts b (least recently used)
        assert!(cache.get(fp_a).is_some());
        assert!(cache.get(fp_c).is_some());
        assert!(cache.get(fp_b).is_none(), "b evicted at capacity 2");
    }

    #[test]
    fn cached_plans_serve_repeated_and_explain_queries() {
        let engine = Engine::with_plan_cache(Backend::memory(HyGraph::new()), 8);
        engine.mutate_batch(seed_mutations()).unwrap();
        let text = "MATCH (s:Station) RETURN COUNT(s) AS n";
        let cold = engine.query(text).unwrap();
        let warm = engine.query(text).unwrap();
        assert_eq!(cold, warm, "cache hit returns identical rows");
        // cached plans survive mutations: plans are data-independent
        engine
            .mutate_batch(vec![HgMutation::AddTsVertex {
                labels: vec![Label::new("Station")],
                series: SeriesId::new(0),
            }])
            .unwrap();
        let after = engine.query(text).unwrap();
        assert_eq!(after.rows[0][0], hygraph_types::Value::Int(2));
        // EXPLAIN shares the executable plan's cache entry and renders
        // the plan instead of rows
        let plan = engine.query(&format!("EXPLAIN {text}")).unwrap();
        assert_eq!(plan.columns, vec!["plan"]);
        assert!(plan.rows[0][0]
            .to_string()
            .starts_with("Plan fingerprint=0x"));
        // a disabled cache still answers correctly
        let engine_off = Engine::with_plan_cache(Backend::memory(HyGraph::new()), 0);
        engine_off.mutate_batch(seed_mutations()).unwrap();
        assert_eq!(engine_off.query(text).unwrap().rows, cold.rows);
    }

    #[test]
    fn partial_batch_failure_keeps_earlier_mutations() {
        let engine = Engine::new(Backend::memory(HyGraph::new()));
        let mut ms = seed_mutations();
        ms.push(HgMutation::Append {
            series: SeriesId::new(42), // rejected: no such series
            t: Timestamp::from_millis(9),
            row: vec![1.0],
        });
        assert!(engine.mutate_batch(ms).is_err());
        // the valid prefix applied (matches DurableStore::commit_batch)
        engine.with_graph(|hg| assert_eq!(hg.vertex_count(), 2));
    }
}
