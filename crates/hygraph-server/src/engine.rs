//! The session-shared execution engine: one HyGraph instance — plain,
//! durable, or shard-partitioned — behind the lock discipline the
//! shard count selects.
//!
//! With one shard (`HYGRAPH_SHARDS=1`) the engine is exactly the
//! pre-sharding design: queries take the read lock of a
//! readers/writer lock and run concurrently; mutations take the write
//! lock and go through the durable store's group-commit path when
//! persistence is on.
//!
//! With more than one shard the engine switches to **epoch-based
//! snapshot reads**: the backend lock becomes a pure commit lock
//! (writers serialise on it; readers never touch it), and after every
//! committed batch the writer publishes a new immutable
//! [`Arc<HyGraph>`] snapshot into a dedicated slot. Queries pin the
//! current snapshot (one `Arc` clone — the interior is copy-on-write,
//! so publication is O(changed structure), not O(data)) and execute
//! against it without blocking behind writers, through the
//! scatter-gather physical path partitioned by the same
//! [`ShardRouter`] that places WAL frames. A snapshot is published
//! only after the whole batch applied (and, for durable backends,
//! after every involved shard's WAL synced), so a reader can never
//! observe a torn batch. The engine is the single place that maps
//! [`Request`]s to [`Response`]s, so the TCP server, the in-process
//! [`crate::LocalClient`], and the load generator all execute requests
//! identically.

use crate::proto::{ErrorCode, Request, Response};
use hygraph_core::HyGraph;
use hygraph_persist::{Durable, DurableStore, HgMutation, ShardedStore};
use hygraph_query::{PlanCacheHook, PlannedQuery, QueryResult, TemporalBound};
use hygraph_sub::{DeltaSink, SubConfig, SubscriptionRegistry};
use hygraph_temporal::{now_ms, HistoryConfig, HistorySeed, HistoryStore, ShardWatermark};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::shard::{ShardConfig, ShardRouter};
use hygraph_types::{Result, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::time::Instant;

/// Default plan-cache capacity when `HYGRAPH_PLAN_CACHE` is unset.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// A bounded move-to-front LRU of compiled plans, keyed by the query's
/// canonical fingerprint. Plans are data-independent (pattern
/// compilation never looks at the instance), so entries stay valid
/// across mutations and a cached plan re-executes against whatever
/// state the read lock currently exposes.
struct PlanCache {
    entries: Mutex<Vec<(u64, Arc<PlannedQuery>)>>,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
        }
    }
}

impl PlanCacheHook for PlanCache {
    fn get(&self, fingerprint: u64) -> Option<Arc<PlannedQuery>> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let pos = entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let hit = entries.remove(pos);
        let plan = Arc::clone(&hit.1);
        entries.insert(0, hit); // move to front
        Some(plan)
    }

    fn put(&self, fingerprint: u64, plan: Arc<PlannedQuery>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|(fp, _)| *fp == fingerprint) {
            entries.remove(pos);
        }
        entries.insert(0, (fingerprint, plan));
        entries.truncate(self.capacity);
    }
}

/// Plan-cache capacity from `HYGRAPH_PLAN_CACHE` (`0` disables the
/// cache; unset/unparsable falls back to the default of
/// [`DEFAULT_PLAN_CACHE_CAPACITY`]).
fn plan_cache_capacity_from_env() -> usize {
    std::env::var("HYGRAPH_PLAN_CACHE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_PLAN_CACHE_CAPACITY)
}

/// The state a server serves: the full hybrid model, either purely in
/// memory or wrapped in the WAL/checkpoint engine.
pub enum Backend {
    /// In-memory only — mutations die with the process. `applied`
    /// counts mutations so replies carry monotone pseudo-LSNs.
    Memory {
        /// The instance.
        hg: Box<HyGraph>,
        /// Mutations applied so far (the pseudo-LSN counter).
        applied: u64,
    },
    /// Durable: every committed mutation is WAL-logged and survives a
    /// crash (see `hygraph-persist`).
    Durable(Box<DurableStore<HyGraph>>),
    /// Durable and shard-partitioned: one WAL stream per shard, frames
    /// placed by [`ShardRouter`], recovery re-merged by global commit
    /// sequence number (see [`ShardedStore`]).
    Sharded(Box<ShardedStore<HyGraph>>),
}

impl Backend {
    /// An in-memory backend over `hg`.
    pub fn memory(hg: HyGraph) -> Self {
        Backend::Memory {
            hg: Box::new(hg),
            applied: 0,
        }
    }

    /// A durable backend over an opened store.
    pub fn durable(store: DurableStore<HyGraph>) -> Self {
        Backend::Durable(Box::new(store))
    }

    /// A durable backend over an opened shard-partitioned store.
    pub fn sharded(store: ShardedStore<HyGraph>) -> Self {
        Backend::Sharded(Box::new(store))
    }

    /// The wrapped instance, whichever backend holds it.
    pub fn graph(&self) -> &HyGraph {
        match self {
            Backend::Memory { hg, .. } => hg,
            Backend::Durable(store) => store.get(),
            Backend::Sharded(store) => store.get(),
        }
    }

    /// The exact binary state encoding (recovery tests compare these
    /// bytes for bit-identity across a shutdown/reopen cycle).
    pub fn state_bytes(&self) -> Vec<u8> {
        match self {
            Backend::Memory { hg, .. } => {
                let mut w = ByteWriter::new();
                hg.encode_state(&mut w);
                w.into_bytes()
            }
            Backend::Durable(store) => store.state_bytes(),
            Backend::Sharded(store) => store.state_bytes(),
        }
    }
}

/// Both per-shard position feeds of a sharded backend, captured under
/// one lock acquisition so the two views are mutually consistent.
struct ShardPositions {
    /// Per-stream `(next_lsn, durable_lsn)` WAL-depth lanes (frames
    /// numbered independently from 0 per shard).
    lanes: Vec<(u64, u64)>,
    /// Per-shard durable **CSN** frontiers — the watermark feed.
    frontiers: Vec<u64>,
}

/// Thread-safe request executor over a [`Backend`] (see module docs).
pub struct Engine {
    inner: RwLock<Backend>,
    /// Shared compiled-plan LRU; `None` when `HYGRAPH_PLAN_CACHE=0`.
    plan_cache: Option<PlanCache>,
    /// Standing queries. Registration runs under the read lock (a
    /// snapshot and its registration are atomic w.r.t. writers);
    /// [`Engine::mutate_batch`] notifies it under the write lock, so
    /// every subscriber observes each committed batch exactly once, in
    /// commit order.
    subs: SubscriptionRegistry,
    /// Transaction-time history (`None` when `HYGRAPH_HISTORY=0`): the
    /// commit timeline behind `AS OF` / `BETWEEN`. Lock order is always
    /// backend lock first, then this mutex — queries resolve under the
    /// read lock, commits record under the write lock.
    history: Option<Mutex<HistoryStore>>,
    /// The element → shard partitioning every layer of this engine
    /// agrees on. Single-shard routers select the legacy lock paths.
    router: ShardRouter,
    /// Multi-shard only: the published read snapshot. Writers replace
    /// the `Arc` under the backend write lock after each committed
    /// batch; readers clone it (pinning that epoch) and never take the
    /// backend lock at all. `None` exactly when `router.is_single()`.
    snapshot: Option<RwLock<Arc<HyGraph>>>,
    /// Monotone snapshot-publication counter (the read epoch). Starts
    /// at 0 for the initial state; each published batch bumps it.
    epoch: AtomicU64,
    /// Weak handles to every published snapshot version, pruned as
    /// readers release their pins — the feed for the
    /// `hygraph_snapshot_pinned` gauge. Structural sharing keeps a
    /// retired epoch's marginal footprint at the structure that changed
    /// since, but a reader pinning one for a long scan still holds that
    /// delta live; this gauge is how operators see it.
    pinned: Mutex<Vec<Weak<HyGraph>>>,
    /// Cross-shard durable watermark tracker, fed from the sharded
    /// store's per-shard durable CSN frontiers whenever stats are
    /// reported.
    watermark: Mutex<ShardWatermark>,
}

impl Engine {
    /// An engine serving `backend`, with the plan-cache capacity taken
    /// from `HYGRAPH_PLAN_CACHE` (default 64 entries, `0` disables) and
    /// history from `HYGRAPH_HISTORY` / `HYGRAPH_HISTORY_RETAIN_SECS`.
    pub fn new(backend: Backend) -> Self {
        Self::with_plan_cache(backend, plan_cache_capacity_from_env())
    }

    /// An engine with an explicit plan-cache capacity (`0` disables) —
    /// lets tests pin the behaviour regardless of the environment.
    /// History still comes from the environment.
    pub fn with_plan_cache(backend: Backend, capacity: usize) -> Self {
        Self::with_history_config(backend, capacity, HistoryConfig::from_env())
    }

    /// An engine with both the plan cache and the history config pinned
    /// explicitly. History is seeded from the backend's *current* state
    /// — its horizon is now (memory) or the recovered watermark
    /// (durable). To keep pre-restart commits individually
    /// time-addressable, open with [`Engine::open_durable`] instead.
    pub fn with_history_config(backend: Backend, capacity: usize, cfg: HistoryConfig) -> Self {
        let history = cfg.enabled.then(|| match &backend {
            Backend::Memory { hg, .. } => HistoryStore::new(cfg.clone(), hg, 0),
            Backend::Durable(store) => HistoryStore::from_parts(
                cfg.clone(),
                store.state_bytes(),
                store.history_watermark(),
                Vec::new(),
            ),
            Backend::Sharded(store) => HistoryStore::from_parts(
                cfg.clone(),
                store.state_bytes(),
                store.history_watermark(),
                Vec::new(),
            ),
        });
        Self::with_seeded_history(backend, capacity, history)
    }

    /// An engine over a pre-seeded history (or none) — the assembly
    /// point the other constructors and [`Engine::open_durable`] share.
    /// The shard count comes from the workspace config
    /// ([`hygraph_types::shard::configured_shards`]): explicit install,
    /// else `HYGRAPH_SHARDS`, else one per core — except that a backend
    /// already opened as [`Backend::Sharded`] pins the engine to that
    /// store's recorded shard count (routing must match frame
    /// placement), and a [`Backend::Durable`] pins it to one.
    pub fn with_seeded_history(
        backend: Backend,
        capacity: usize,
        history: Option<HistoryStore>,
    ) -> Self {
        let router = match &backend {
            // durable layouts fix the shard count on disk
            Backend::Sharded(store) => store.router(),
            Backend::Durable(_) => ShardRouter::new(1),
            Backend::Memory { .. } => ShardConfig::new().router(),
        };
        let initial = (!router.is_single()).then(|| Arc::new(backend.graph().clone()));
        let pinned = Mutex::new(initial.iter().map(Arc::downgrade).collect());
        Self {
            inner: RwLock::new(backend),
            plan_cache: (capacity > 0).then(|| PlanCache::new(capacity)),
            subs: SubscriptionRegistry::from_env(),
            history: history.map(Mutex::new),
            watermark: Mutex::new(ShardWatermark::new(router.shards())),
            router,
            snapshot: initial.map(RwLock::new),
            epoch: AtomicU64::new(0),
            pinned,
        }
    }

    /// Re-partitions a (memory-backed) engine to exactly `shards`
    /// shards, regardless of the environment — how tests and the bench
    /// harness pin the lock discipline. `1` restores the legacy
    /// readers/writer-lock engine; `> 1` enables snapshot reads and
    /// scatter-gather execution. Durable backends ignore this (their
    /// shard count is recorded on disk); re-shard those by reopening
    /// the directory via [`Engine::open_durable`] under a different
    /// `HYGRAPH_SHARDS`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        let (router, initial) = {
            let guard = self.read();
            let router = match &*guard {
                Backend::Sharded(store) => store.router(),
                Backend::Durable(_) => ShardRouter::new(1),
                Backend::Memory { .. } => ShardRouter::new(shards),
            };
            let initial = (!router.is_single()).then(|| Arc::new(guard.graph().clone()));
            (router, initial)
        };
        self.router = router;
        self.pinned = Mutex::new(initial.iter().map(Arc::downgrade).collect());
        self.snapshot = initial.map(RwLock::new);
        self.watermark = Mutex::new(ShardWatermark::new(self.router.shards()));
        self
    }

    /// Opens (or initialises) a durable backend at `dir`, seeding
    /// history from the recovery stream itself: the checkpoint becomes
    /// the history base at its watermark and every replayed WAL frame
    /// above it re-enters the commit timeline with its original
    /// transaction timestamp — `AS OF` keeps answering across restarts
    /// for everything the log still covers.
    ///
    /// The configured shard count
    /// ([`hygraph_types::shard::configured_shards`]) picks the store:
    /// one shard opens the classic single-WAL [`DurableStore`]; more
    /// open (or migrate to, or re-shard) a per-shard-WAL
    /// [`ShardedStore`] — see [`Engine::open_durable_sharded`].
    pub fn open_durable(
        dir: impl Into<std::path::PathBuf>,
        capacity: usize,
        cfg: HistoryConfig,
    ) -> Result<Self> {
        Self::open_durable_sharded(
            dir,
            capacity,
            cfg,
            hygraph_types::shard::configured_shards(),
        )
    }

    /// [`Engine::open_durable`] with the shard count pinned explicitly.
    /// `1` opens the classic single-WAL store (and refuses a directory
    /// already laid out per shard, with a typed error); `> 1` opens the
    /// sharded store, transparently migrating a legacy single-WAL
    /// directory or re-sharding one recorded at a different count.
    pub fn open_durable_sharded(
        dir: impl Into<std::path::PathBuf>,
        capacity: usize,
        cfg: HistoryConfig,
        shards: usize,
    ) -> Result<Self> {
        if shards <= 1 {
            if !cfg.enabled {
                let store = DurableStore::open(dir)?;
                return Ok(Self::with_seeded_history(
                    Backend::durable(store),
                    capacity,
                    None,
                ));
            }
            let mut seed = HistorySeed::new(cfg);
            let store = DurableStore::open_observed(dir, &mut seed)?;
            return Ok(Self::with_seeded_history(
                Backend::durable(store),
                capacity,
                Some(seed.finish()?),
            ));
        }
        if !cfg.enabled {
            let store = ShardedStore::open(dir, shards)?;
            return Ok(Self::with_seeded_history(
                Backend::sharded(store),
                capacity,
                None,
            ));
        }
        let mut seed = HistorySeed::new(cfg);
        let store = ShardedStore::open_observed(dir, shards, &mut seed)?;
        Ok(Self::with_seeded_history(
            Backend::sharded(store),
            capacity,
            Some(seed.finish()?),
        ))
    }

    /// Replaces the subscription-layer settings (cap, push-buffer
    /// depth) — lets tests pin them regardless of the environment.
    pub fn with_sub_config(mut self, cfg: SubConfig) -> Self {
        self.subs = SubscriptionRegistry::new(cfg);
        self
    }

    /// The standing-query registry this engine notifies on commit.
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    /// Registers a standing query for connection `conn` under the read
    /// lock: the returned snapshot and the registration are atomic with
    /// respect to mutation batches.
    pub fn subscribe(
        &self,
        text: &str,
        conn: u64,
        sink: Arc<dyn DeltaSink>,
    ) -> Result<(u64, QueryResult)> {
        let guard = self.read();
        self.subs.subscribe(guard.graph(), text, conn, sink)
    }

    /// Removes standing query `sub_id` if it belongs to `conn`.
    pub fn unsubscribe(&self, conn: u64, sub_id: u64) -> bool {
        self.subs.unsubscribe(conn, sub_id)
    }

    /// Drops every standing query of a disconnected client.
    pub fn drop_conn(&self, conn: u64) {
        self.subs.drop_conn(conn);
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Backend> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Backend> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes a HyQL query under the read lock (concurrent with other
    /// queries), consulting the engine's plan cache: repeated query
    /// shapes skip parsing's downstream cost — lowering, optimization,
    /// and pattern compilation — and go straight to execution. Queries
    /// carrying `AS OF` / `BETWEEN` resolve against the engine's
    /// history; with history disabled they fail with a typed error
    /// (`AS OF NOW()` still degrades gracefully to the live state).
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.run_query(text, None)
    }

    /// [`Engine::query`] pinned to the state as of `as_of_ms` (epoch
    /// milliseconds of transaction time) — the structured-request form
    /// of suffixing the text's MATCH with `AS OF <t>`. Rejects text
    /// that already carries its own temporal bound.
    pub fn query_as_of(&self, text: &str, as_of_ms: i64) -> Result<QueryResult> {
        self.run_query(
            text,
            Some(TemporalBound::AsOf(Timestamp::from_millis(as_of_ms))),
        )
    }

    fn run_query(&self, text: &str, bound: Option<TemporalBound>) -> Result<QueryResult> {
        let cache = self.plan_cache.as_ref().map(|c| c as &dyn PlanCacheHook);
        match &self.snapshot {
            // Multi-shard: pin the published epoch (one Arc clone, the
            // slot lock held only for that clone) and execute against
            // the immutable snapshot — never blocking behind a writer
            // mid-commit — through the scatter-gather path.
            Some(slot) => {
                let snap = Arc::clone(&slot.read().unwrap_or_else(|e| e.into_inner()));
                self.run_pinned(&snap, text, cache, bound, Some(self.router))
            }
            // Single shard: the exact legacy path — queries share the
            // backend read lock with each other and exclude writers.
            None => {
                let guard = self.read();
                self.run_pinned(guard.graph(), text, cache, bound, None)
            }
        }
    }

    fn run_pinned(
        &self,
        hg: &HyGraph,
        text: &str,
        cache: Option<&dyn PlanCacheHook>,
        bound: Option<TemporalBound>,
        router: Option<ShardRouter>,
    ) -> Result<QueryResult> {
        match &self.history {
            Some(h) => {
                let mut h = h.lock().unwrap_or_else(|e| e.into_inner());
                hygraph_query::run_instrumented_sharded(
                    hg,
                    text,
                    cache,
                    Some(&mut *h),
                    bound,
                    router,
                )
            }
            None => hygraph_query::run_instrumented_sharded(hg, text, cache, None, bound, router),
        }
    }

    /// Publishes the current backend state as the new read snapshot
    /// (multi-shard engines only; a no-op at one shard). Callers hold
    /// the backend write lock, so publications happen in commit order.
    /// The whole step — clone (structural sharing makes it O(structure
    /// changed by the batch)), slot swap, and the drop of the previous
    /// epoch's last unpinned reference — lands in the
    /// `hygraph_commit_publish_us` histogram: it is the per-commit cost
    /// snapshot publication adds to the write path.
    fn publish(&self, hg: &HyGraph) {
        if let Some(slot) = &self.snapshot {
            let start = Instant::now();
            let next = Arc::new(hg.clone());
            let retired = std::mem::replace(
                &mut *slot.write().unwrap_or_else(|e| e.into_inner()),
                Arc::clone(&next),
            );
            self.epoch.fetch_add(1, Ordering::Release);
            drop(retired);
            if let Some(m) = hygraph_metrics::get() {
                m.shard.commit_publish_us.observe_duration(start.elapsed());
            }
            let mut pinned = self.pinned.lock().unwrap_or_else(|e| e.into_inner());
            pinned.retain(|w| w.strong_count() > 0);
            pinned.push(Arc::downgrade(&next));
        }
    }

    /// Pins the currently published snapshot — the handle a long-running
    /// reader (an export, an analytics scan, the bench harness) holds to
    /// keep one epoch stable across many queries. `None` on single-shard
    /// engines, which have no snapshot plane. While the returned `Arc`
    /// lives, that epoch counts into the `hygraph_snapshot_pinned`
    /// gauge.
    pub fn pin_snapshot(&self) -> Option<Arc<HyGraph>> {
        self.snapshot
            .as_ref()
            .map(|slot| Arc::clone(&slot.read().unwrap_or_else(|e| e.into_inner())))
    }

    /// How many published snapshot versions are currently alive: the
    /// slot's own epoch plus every retired epoch a reader still pins.
    /// `0` on single-shard engines. Prunes released epochs as a side
    /// effect.
    pub fn pinned_snapshots(&self) -> usize {
        let mut pinned = self.pinned.lock().unwrap_or_else(|e| e.into_inner());
        pinned.retain(|w| w.strong_count() > 0);
        pinned.len()
    }

    /// How many shards this engine partitions its commit/storage plane
    /// into (`1` = the legacy single-store engine).
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The engine's element → shard router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The read epoch: how many snapshots have been published. `0`
    /// until the first committed batch; single-shard engines never
    /// publish and stay at `0`.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Per-shard `(next_lsn, durable_lsn)` pairs of a sharded backend,
    /// `None` otherwise — the feed for the per-shard WAL-depth gauges.
    /// These are per-stream frame counters (each shard's WAL numbers
    /// frames independently from 0), **not** global commit sequence
    /// numbers; the cross-shard watermark is derived from the store's
    /// CSN frontiers instead.
    pub fn shard_lsns(&self) -> Option<Vec<(u64, u64)>> {
        self.shard_positions().map(|p| p.lanes)
    }

    /// Both per-shard position feeds of a sharded backend, read under
    /// one lock acquisition: the WAL-stream `(next_lsn, durable_lsn)`
    /// lanes and the durable CSN frontiers.
    fn shard_positions(&self) -> Option<ShardPositions> {
        match &*self.read() {
            Backend::Sharded(store) => Some(ShardPositions {
                lanes: store.shard_lsns(),
                frontiers: store.shard_csn_frontiers(),
            }),
            Backend::Memory { .. } | Backend::Durable(_) => None,
        }
    }

    /// The cross-shard durable watermark: the commit sequence number
    /// strictly below which every shard's WAL is durable (see
    /// [`ShardWatermark`]), fed from the sharded store's per-shard
    /// durable **CSN** frontiers — a shard that happens to receive
    /// little traffic does not pin the watermark, because a fully
    /// synced shard's frontier is the store-wide next CSN. For
    /// non-sharded backends this is simply the last frontier observed
    /// (0 for memory engines). The tracker is fed on every stats report
    /// and on demand here, so the returned value is current as of this
    /// call.
    pub fn shard_watermark(&self) -> u64 {
        let frontiers = self.shard_positions().map(|p| p.frontiers);
        let mut wm = self.watermark.lock().unwrap_or_else(|e| e.into_inner());
        match frontiers {
            Some(frontiers) => wm.observe_frontiers(&frontiers),
            None => wm.watermark(),
        }
    }

    /// Folds the sharded backend's per-shard WAL positions and CSN
    /// watermark into the global metrics registry's shard gauges
    /// (no-op for non-sharded backends or when metrics are disabled).
    /// Called on every [`Request::Stats`]; the periodic metrics logger
    /// reaches it the same way.
    fn report_shard_metrics(&self) {
        let Some(m) = hygraph_metrics::get() else {
            return;
        };
        // the pinned-snapshot gauge covers every multi-shard engine,
        // memory-backed included — it reads the snapshot plane, not the
        // store
        m.shard.snapshot_pinned.set(self.pinned_snapshots() as i64);
        let Some(ShardPositions { lanes, frontiers }) = self.shard_positions() else {
            return;
        };
        let watermark = {
            let mut wm = self.watermark.lock().unwrap_or_else(|e| e.into_inner());
            wm.observe_frontiers(&frontiers)
        };
        m.shard.set_lanes(&lanes, watermark);
    }

    /// Runs `f` against the instance under the read lock — how tests
    /// compare served results against direct library calls.
    pub fn with_graph<R>(&self, f: impl FnOnce(&HyGraph) -> R) -> R {
        f(self.read().graph())
    }

    /// Applies a batch of mutations under the write lock. Durable
    /// backends group-commit (WAL append + one fsync); on reply the
    /// batch is on disk. Returns `(first_lsn, count)`.
    pub fn mutate_batch(&self, mutations: Vec<HgMutation>) -> Result<(u64, u64)> {
        let count = mutations.len() as u64;
        let mut guard = self.write();
        let notify = !self.subs.is_empty();
        if self.history.is_none() && !notify {
            // no history, no standing queries: the original
            // zero-overhead path (the write lock excludes concurrent
            // subscribes, so the check cannot race a registration)
            let outcome = match &mut *guard {
                Backend::Memory { hg, applied } => {
                    let first = *applied;
                    let mut res = Ok((first, count));
                    for m in &mutations {
                        if let Err(e) = hg.apply(m) {
                            res = Err(e);
                            break;
                        }
                        *applied += 1;
                    }
                    res
                }
                Backend::Durable(store) => store
                    .commit_batch(mutations)
                    .map(|range| (range.start, range.end - range.start)),
                Backend::Sharded(store) => store
                    .commit_batch(mutations)
                    .map(|range| (range.start, range.end - range.start)),
            };
            // a failed batch keeps its applied prefix, so readers must
            // still advance to it — publish on both outcomes
            self.publish(guard.graph());
            return outcome;
        }
        // allocate the batch's transaction timestamp before staging so
        // WAL frames carry the same stamp the history records
        let ts = self.history.as_ref().map(|h| {
            let ts = h
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .allocate_ts(now_ms());
            match &mut *guard {
                Backend::Durable(store) => store.set_commit_ts(ts),
                // one cross-shard commit timestamp per batch: every
                // involved shard's frames carry the same stamp, so an
                // `AS OF` bound cuts all shards at the same point
                Backend::Sharded(store) => store.set_commit_ts(ts),
                Backend::Memory { .. } => {}
            }
            ts
        });
        let pre_v = guard.graph().topology().vertex_capacity();
        let pre_e = guard.graph().topology().edge_capacity();
        let (outcome, applied_n) = match &mut *guard {
            Backend::Memory { hg, applied } => {
                let mut res = Ok((*applied, count));
                let mut n = 0usize;
                for m in &mutations {
                    if let Err(e) = hg.apply(m) {
                        res = Err(e);
                        break;
                    }
                    *applied += 1;
                    n += 1;
                }
                (res, n)
            }
            Backend::Durable(store) => {
                let before = store.next_lsn();
                let res = store
                    .commit_batch(mutations.iter().cloned())
                    .map(|range| (range.start, range.end - range.start));
                // a failed batch keeps its staged prefix; the LSN delta
                // is exactly how many mutations applied
                ((res), (store.next_lsn() - before) as usize)
            }
            Backend::Sharded(store) => {
                let before = store.next_csn();
                let res = store
                    .commit_batch(mutations.iter().cloned())
                    .map(|range| (range.start, range.end - range.start));
                ((res), (store.next_csn() - before) as usize)
            }
        };
        // readers advance to the batch (or its kept prefix) only now —
        // a pinned snapshot can never show a torn batch
        self.publish(guard.graph());
        if let (Some(ts), Some(h)) = (ts, &self.history) {
            // record the applied prefix — history replays must
            // reproduce exactly what the store kept
            h.lock()
                .unwrap_or_else(|e| e.into_inner())
                .record_commit(ts, mutations[..applied_n].to_vec());
        }
        if notify {
            // both backends keep the valid prefix of a failed batch, so
            // subscribers must still observe it (failed => rebuild path)
            self.subs
                .on_commit(guard.graph(), &mutations, pre_v, pre_e, outcome.is_err());
        }
        outcome
    }

    /// The timestamps of every commit the history currently retains
    /// (oldest first), or `None` with history disabled — how tests and
    /// the bench harness pick `AS OF` targets.
    pub fn history_commit_timestamps(&self) -> Option<Vec<i64>> {
        self.history.as_ref().map(|h| {
            h.lock()
                .unwrap_or_else(|e| e.into_inner())
                .commit_timestamps()
        })
    }

    /// The history horizon (`base_ts`), or `None` with history off.
    pub fn history_horizon(&self) -> Option<i64> {
        self.history
            .as_ref()
            .map(|h| h.lock().unwrap_or_else(|e| e.into_inner()).base_ts())
    }

    /// Forces a checkpoint on a durable backend; a no-op pseudo-LSN
    /// report on a memory backend.
    pub fn checkpoint(&self) -> Result<u64> {
        let mut guard = self.write();
        match &mut *guard {
            Backend::Memory { applied, .. } => Ok(*applied),
            Backend::Durable(store) => {
                store.checkpoint()?;
                Ok(store.checkpoint_lsn())
            }
            Backend::Sharded(store) => {
                store.checkpoint()?;
                Ok(store.checkpoint_csn())
            }
        }
    }

    /// Makes every staged mutation durable — the shutdown path's final
    /// WAL sync. A no-op for memory backends.
    pub fn sync(&self) -> Result<()> {
        match &mut *self.write() {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => store.sync(),
            Backend::Sharded(store) => store.sync(),
        }
    }

    /// Executes one request, mapping every failure to a typed error
    /// response — the engine never panics on client input and never
    /// loses an error. [`Request::Sleep`] is *not* handled here (it
    /// would hold no lock but would still occupy this call); the worker
    /// pool services it before consulting the engine.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match request {
            Request::Ping | Request::Sleep(_) => return Response::Pong,
            // near lock-free: the registry is all atomics (a disabled
            // registry answers with an all-zero snapshot so the wire
            // request never errors); a sharded backend first folds its
            // WAL lane positions into the per-shard gauges
            Request::Stats => {
                self.report_shard_metrics();
                return Response::Stats(Box::new(hygraph_metrics::snapshot().unwrap_or_default()));
            }
            Request::Query(text) => self.query(text).map(Response::Rows),
            Request::QueryAsOf { text, as_of_ms } => {
                self.query_as_of(text, *as_of_ms).map(Response::Rows)
            }
            Request::Mutate(m) => self
                .mutate_batch(vec![m.clone()])
                .map(|(first_lsn, count)| Response::Committed { first_lsn, count }),
            Request::MutateBatch(ms) => self
                .mutate_batch(ms.clone())
                .map(|(first_lsn, count)| Response::Committed { first_lsn, count }),
            Request::Checkpoint => self
                .checkpoint()
                .map(|lsn| Response::CheckpointDone { lsn }),
            // subscriptions are connection-scoped: the serving layer
            // intercepts these before the engine (it owns the sink); a
            // connectionless caller (LocalClient) has nowhere to push
            Request::Subscribe(_) | Request::Unsubscribe { .. } => {
                return Response::Error {
                    code: ErrorCode::Exec,
                    message: "subscriptions require a connection; use Client::subscribe \
                              over TCP"
                        .to_string(),
                }
            }
        };
        result.unwrap_or_else(|e| Response::Error {
            code: ErrorCode::Exec,
            message: e.to_string(),
        })
    }

    /// The exact binary state encoding at this instant.
    pub fn state_bytes(&self) -> Vec<u8> {
        self.read().state_bytes()
    }

    /// Consumes the engine, returning the backend (the shutdown path
    /// hands it back for inspection or reuse).
    pub fn into_backend(self) -> Backend {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.read();
        let kind = match &*guard {
            Backend::Memory { .. } => "memory",
            Backend::Durable(_) => "durable",
            Backend::Sharded(_) => "sharded",
        };
        f.debug_struct("Engine")
            .field("backend", &kind)
            .field("shards", &self.router.shards())
            .field("vertices", &guard.graph().vertex_count())
            .finish()
    }
}

// `HyGraphError` values crossing the engine are plain data; the lock
// poisoning strategy above (into_inner) means a panicking writer cannot
// wedge the server — but engine code paths return errors instead of
// panicking in the first place.
fn _engine_is_send_sync(e: Engine) -> impl Send + Sync {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_types::{Interval, Label, PropertyMap, SeriesId, Timestamp};

    fn seed_mutations() -> Vec<HgMutation> {
        vec![
            HgMutation::AddSeries {
                names: vec!["avail".into()],
                rows: vec![],
            },
            HgMutation::AddTsVertex {
                labels: vec![Label::new("Station")],
                series: SeriesId::new(0),
            },
            HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            },
            HgMutation::Append {
                series: SeriesId::new(0),
                t: Timestamp::from_millis(5),
                row: vec![3.5],
            },
        ]
    }

    #[test]
    fn memory_engine_serves_queries_and_mutations() {
        let engine = Engine::new(Backend::memory(HyGraph::new()));
        let (first, count) = engine.mutate_batch(seed_mutations()).unwrap();
        assert_eq!((first, count), (0, 4));
        let r = engine
            .query("MATCH (s:Station) RETURN COUNT(s) AS n")
            .unwrap();
        assert_eq!(r.rows[0][0], hygraph_types::Value::Int(1));
        // pseudo-LSNs advance monotonically
        let (first, _) = engine
            .mutate_batch(vec![HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            }])
            .unwrap();
        assert_eq!(first, 4);
    }

    #[test]
    fn handle_maps_failures_to_error_responses() {
        let engine = Engine::new(Backend::memory(HyGraph::new()));
        // bad query text
        let resp = engine.handle(&Request::Query("MTCH oops".into()));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Exec,
                ..
            }
        ));
        // mutation referencing a missing series
        let resp = engine.handle(&Request::Mutate(HgMutation::Append {
            series: SeriesId::new(99),
            t: Timestamp::from_millis(0),
            row: vec![1.0],
        }));
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Exec,
                ..
            }
        ));
        assert_eq!(engine.handle(&Request::Ping), Response::Pong);
    }

    #[test]
    fn plan_cache_reuses_and_evicts() {
        let cache = PlanCache::new(2);
        let plan = |text: &str| {
            let q = hygraph_query::parser::parse(text).unwrap();
            (
                hygraph_query::plan::fingerprint(&q),
                Arc::new(hygraph_query::plan_query(&q).unwrap()),
            )
        };
        let (fp_a, a) = plan("MATCH (u:User) RETURN u");
        let (fp_b, b) = plan("MATCH (m:Merchant) RETURN m");
        let (fp_c, c) = plan("MATCH (c:Card) RETURN c");
        assert!(cache.get(fp_a).is_none());
        cache.put(fp_a, a);
        cache.put(fp_b, b);
        assert!(cache.get(fp_a).is_some(), "hit moves a to front");
        cache.put(fp_c, c); // evicts b (least recently used)
        assert!(cache.get(fp_a).is_some());
        assert!(cache.get(fp_c).is_some());
        assert!(cache.get(fp_b).is_none(), "b evicted at capacity 2");
    }

    #[test]
    fn cached_plans_serve_repeated_and_explain_queries() {
        let engine = Engine::with_plan_cache(Backend::memory(HyGraph::new()), 8);
        engine.mutate_batch(seed_mutations()).unwrap();
        let text = "MATCH (s:Station) RETURN COUNT(s) AS n";
        let cold = engine.query(text).unwrap();
        let warm = engine.query(text).unwrap();
        assert_eq!(cold, warm, "cache hit returns identical rows");
        // cached plans survive mutations: plans are data-independent
        engine
            .mutate_batch(vec![HgMutation::AddTsVertex {
                labels: vec![Label::new("Station")],
                series: SeriesId::new(0),
            }])
            .unwrap();
        let after = engine.query(text).unwrap();
        assert_eq!(after.rows[0][0], hygraph_types::Value::Int(2));
        // EXPLAIN shares the executable plan's cache entry and renders
        // the plan instead of rows
        let plan = engine.query(&format!("EXPLAIN {text}")).unwrap();
        assert_eq!(plan.columns, vec!["plan"]);
        assert!(plan.rows[0][0]
            .to_string()
            .starts_with("Plan fingerprint=0x"));
        // a disabled cache still answers correctly
        let engine_off = Engine::with_plan_cache(Backend::memory(HyGraph::new()), 0);
        engine_off.mutate_batch(seed_mutations()).unwrap();
        assert_eq!(engine_off.query(text).unwrap().rows, cold.rows);
    }

    #[test]
    fn as_of_serves_past_states_and_now_serves_live() {
        let engine = Engine::with_history_config(
            Backend::memory(HyGraph::new()),
            8,
            HistoryConfig::default(),
        );
        engine.mutate_batch(seed_mutations()).unwrap();
        let t1 = *engine
            .history_commit_timestamps()
            .unwrap()
            .last()
            .expect("one commit");
        engine
            .mutate_batch(vec![HgMutation::AddTsVertex {
                labels: vec![Label::new("Station")],
                series: SeriesId::new(0),
            }])
            .unwrap();
        let text = "MATCH (s:Station) RETURN COUNT(s) AS n";
        // live: two stations; as of the first commit: one
        assert_eq!(
            engine.query(text).unwrap().rows[0][0],
            hygraph_types::Value::Int(2)
        );
        let past = engine.query(&format!(
            "MATCH (s:Station) AS OF {t1} RETURN COUNT(s) AS n"
        ));
        assert_eq!(past.unwrap().rows[0][0], hygraph_types::Value::Int(1));
        // the structured request form answers identically
        assert_eq!(
            engine.query_as_of(text, t1).unwrap().rows[0][0],
            hygraph_types::Value::Int(1)
        );
        // AS OF NOW() is the live state
        let now = engine
            .query("MATCH (s:Station) AS OF NOW() RETURN COUNT(s) AS n")
            .unwrap();
        assert_eq!(now.rows[0][0], hygraph_types::Value::Int(2));
        // double bounds are rejected, not silently overridden
        let err = engine
            .query_as_of(
                &format!("MATCH (s:Station) AS OF {t1} RETURN COUNT(s) AS n"),
                t1,
            )
            .unwrap_err();
        assert!(err.to_string().contains("already carries"), "{err}");
    }

    #[test]
    fn history_disabled_rejects_time_travel_but_serves_now() {
        let engine = Engine::with_history_config(
            Backend::memory(HyGraph::new()),
            8,
            HistoryConfig::disabled(),
        );
        engine.mutate_batch(seed_mutations()).unwrap();
        assert!(engine.history_commit_timestamps().is_none());
        let err = engine
            .query("MATCH (s:Station) AS OF 5 RETURN COUNT(s) AS n")
            .unwrap_err();
        assert!(err.to_string().contains("HYGRAPH_HISTORY"), "{err}");
        // AS OF NOW() degrades gracefully: it is the live state
        let now = engine
            .query("MATCH (s:Station) AS OF NOW() RETURN COUNT(s) AS n")
            .unwrap();
        assert_eq!(now.rows[0][0], hygraph_types::Value::Int(1));
    }

    #[test]
    fn durable_reopen_keeps_replayed_commits_time_addressable() {
        let dir = hygraph_persist::fault::scratch_dir("engine-asof");
        let (t1, t2);
        {
            let engine =
                Engine::open_durable(&dir, 8, HistoryConfig::default()).expect("open fresh");
            engine.mutate_batch(seed_mutations()).unwrap();
            engine
                .mutate_batch(vec![HgMutation::AddTsVertex {
                    labels: vec![Label::new("Station")],
                    series: SeriesId::new(0),
                }])
                .unwrap();
            let ts = engine.history_commit_timestamps().unwrap();
            t1 = ts[0];
            t2 = ts[1];
            engine.sync().unwrap();
        } // crash: no checkpoint — both commits live only in the WAL
        let engine = Engine::open_durable(&dir, 8, HistoryConfig::default()).expect("reopen");
        assert_eq!(
            engine.history_commit_timestamps().unwrap(),
            vec![t1, t2],
            "replayed WAL frames re-enter the commit timeline"
        );
        let text = "MATCH (s:Station) RETURN COUNT(s) AS n";
        assert_eq!(
            engine.query_as_of(text, t1).unwrap().rows[0][0],
            hygraph_types::Value::Int(1)
        );
        assert_eq!(
            engine.query(text).unwrap().rows[0][0],
            hygraph_types::Value::Int(2)
        );
        // a checkpoint moves the durable watermark; reopening seeds the
        // base there and newer commits stay addressable
        engine.checkpoint().unwrap();
        let engine2 = Engine::open_durable(&dir, 8, HistoryConfig::default()).expect("reopen 2");
        assert_eq!(engine2.history_horizon().unwrap(), t2);
        assert!(matches!(
            engine2.query_as_of(text, t2),
            Ok(r) if r.rows[0][0] == hygraph_types::Value::Int(2)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_watermark_tracks_csn_not_stream_depth() {
        let dir = hygraph_persist::fault::scratch_dir("engine-watermark");
        let engine = Engine::open_durable_sharded(&dir, 8, HistoryConfig::disabled(), 4)
            .expect("open sharded");
        assert_eq!(engine.shards(), 4);
        engine.mutate_batch(seed_mutations()).unwrap();
        // Four committed (durable) mutations land on a subset of the
        // four shards; the idle shards' WAL streams stay empty but must
        // not pin the watermark — every shard's durable CSN frontier is
        // the global next CSN once its stream is synced.
        assert_eq!(
            engine.shard_watermark(),
            4,
            "idle shards must not pin the cross-shard watermark"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_batch_failure_keeps_earlier_mutations() {
        // explicit history config: the assertions below time-travel, so
        // the test must not depend on the ambient HYGRAPH_HISTORY
        let engine = Engine::with_history_config(
            Backend::memory(HyGraph::new()),
            plan_cache_capacity_from_env(),
            HistoryConfig::default(),
        );
        let mut ms = seed_mutations();
        ms.push(HgMutation::Append {
            series: SeriesId::new(42), // rejected: no such series
            t: Timestamp::from_millis(9),
            row: vec![1.0],
        });
        assert!(engine.mutate_batch(ms).is_err());
        // the valid prefix applied (matches DurableStore::commit_batch)
        engine.with_graph(|hg| assert_eq!(hg.vertex_count(), 2));
        // history recorded exactly that prefix: commit once more, then
        // travel back to the failed batch's timestamp
        let failed_ts = *engine.history_commit_timestamps().unwrap().last().unwrap();
        engine
            .mutate_batch(vec![HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            }])
            .unwrap();
        let past = engine
            .query_as_of("MATCH (s:Station) RETURN COUNT(s) AS n", failed_ts)
            .unwrap();
        assert_eq!(past.rows[0][0], hygraph_types::Value::Int(1));
    }
}
