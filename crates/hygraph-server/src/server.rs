//! The TCP serving front end: accept loop, per-connection readers, a
//! fixed worker pool behind the bounded admission queue, and graceful
//! shutdown.
//!
//! # Threading model
//!
//! ```text
//! accept thread ──spawns──▶ reader thread (1 per connection)
//!                               │  decode frame → Request
//!                               ▼  try_push (non-blocking)
//!                        bounded admission queue ──▶ overload reply
//!                               │                    when full
//!                               ▼  pop (blocking)
//!                        worker pool (fixed, ParallelConfig-sized)
//!                               │  deadline check → execute on Engine
//!                               ▼
//!                        response frame → connection (mutex-serialised)
//! ```
//!
//! Readers never execute requests and never block on the queue, so a
//! saturated pool cannot stop the server from *answering* — it answers
//! with an explicit [`ErrorCode::Overloaded`] rejection instead. Each
//! worker writes its response under the connection's write mutex, so
//! concurrent responses to one pipelined client interleave per frame,
//! never mid-frame.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] stops admission (readers answer
//! [`ErrorCode::ShuttingDown`]), lets the workers drain every admitted
//! request and write its response, syncs the WAL on a durable backend,
//! and only then drops connections. A client whose request was
//! admitted before shutdown always gets its reply.

use crate::engine::{Backend, Engine};
use crate::proto::{ErrorCode, Push, Request, Response, MAX_SLEEP_MS};
use crate::queue::{Bounded, PushError};
use hygraph_metrics as metrics;
use hygraph_query::incremental::Delta;
use hygraph_sub::DeltaSink;
use hygraph_types::net::{self, Frame, FrameRead, ServerConfig, ServerSettings};
use hygraph_types::Result;
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One admitted unit of work: a decoded request plus where to send the
/// response and how long it may wait.
struct Job {
    request_id: u64,
    req: Request,
    reply: Arc<Mutex<TcpStream>>,
    deadline: Option<Instant>,
    /// When the job entered the queue; `Some` only while metrics are
    /// enabled (drives the queue-wait histogram).
    admitted_at: Option<Instant>,
}

#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shutdown: AtomicU64,
    bad_frames: AtomicU64,
    /// Deadline drops that happened *during the shutdown drain* — the
    /// requests a graceful shutdown answered but did not execute.
    drain_deadline_drops: AtomicU64,
}

/// A point-in-time snapshot of the server's request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests a worker finished (including deadline drops).
    pub completed: u64,
    /// Requests rejected because the admission queue was full.
    pub rejected_overload: u64,
    /// Admitted requests dropped at dequeue for exceeding their
    /// deadline.
    pub rejected_deadline: u64,
    /// Requests refused because the server was draining for shutdown.
    pub rejected_shutdown: u64,
    /// Frames rejected before decoding (CRC failures).
    pub bad_frames: u64,
    /// Deadline drops that happened during the shutdown drain (a subset
    /// of `rejected_deadline`).
    pub drain_deadline_drops: u64,
}

/// What a graceful [`Server::shutdown`] accomplished.
pub struct ShutdownReport {
    /// The backend, handed back for inspection or reuse — `None` if a
    /// [`crate::client::LocalClient`] still shares the engine (the
    /// shutdown itself still completed and the WAL is synced).
    pub backend: Option<Backend>,
    /// Requests taken off the queue and answered during the drain
    /// (executed or deadline-dropped).
    pub drained: u64,
    /// How many of the drained requests sat past their deadline and
    /// were answered [`ErrorCode::DeadlineExceeded`] without executing.
    pub dropped_at_deadline: u64,
    /// Final counter values at the instant the drain finished.
    pub stats: ServerStats,
}

impl std::fmt::Debug for ShutdownReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownReport")
            .field("backend", &self.backend.is_some())
            .field("drained", &self.drained)
            .field("dropped_at_deadline", &self.dropped_at_deadline)
            .field("stats", &self.stats)
            .finish()
    }
}

/// The per-connection outbound push channel for standing-query deltas.
///
/// Workers (inside [`Engine::mutate_batch`], under the engine's write
/// lock) enqueue pre-encoded frames; a dedicated pusher thread drains
/// the queue and writes them under the connection's reply mutex, so
/// pushes interleave with pipelined replies per frame, never mid-frame,
/// and a slow socket never blocks the commit path — the queue just
/// fills and the registry drops the subscriber.
struct ConnSink {
    reply: Arc<Mutex<TcpStream>>,
    max_frame: usize,
    /// Queue depth bound (`HYGRAPH_SUB_BUFFER`); [`Push::Closed`]
    /// frames bypass it so the disconnect reason always fits.
    cap: usize,
    q: Mutex<VecDeque<Frame>>,
    cv: Condvar,
    done: AtomicBool,
}

impl ConnSink {
    fn new(reply: Arc<Mutex<TcpStream>>, max_frame: usize, cap: usize) -> Self {
        Self {
            reply,
            max_frame,
            cap,
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
        }
    }

    fn enqueue(&self, frame: Frame, respect_cap: bool) -> bool {
        let mut q = lock(&self.q);
        if respect_cap && q.len() >= self.cap {
            return false;
        }
        q.push_back(frame);
        self.cv.notify_one();
        true
    }

    /// Stops the pusher after it flushes what is already queued.
    fn shutdown(&self) {
        self.done.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

impl DeltaSink for ConnSink {
    fn push_delta(&self, sub_id: u64, delta: &Delta) -> bool {
        self.enqueue(Push::Delta(delta.clone()).to_frame(sub_id), true)
    }

    fn close(&self, sub_id: u64, reason: &str) {
        self.enqueue(
            Push::Closed {
                reason: reason.to_owned(),
            }
            .to_frame(sub_id),
            false,
        );
    }
}

/// Drains a [`ConnSink`]'s queue onto the wire until shutdown, then
/// flushes the remainder. A gone peer is not an error here — the
/// registry notices via the filling queue.
fn pusher_loop(sink: &ConnSink) {
    loop {
        let frame = {
            let mut q = lock(&sink.q);
            loop {
                if let Some(f) = q.pop_front() {
                    break f;
                }
                if sink.done.load(Ordering::SeqCst) {
                    return;
                }
                q = sink.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let mut stream = lock(&sink.reply);
        let _ = net::write_frame(&mut *stream, &frame, sink.max_frame);
    }
}

struct SinkEntry {
    sink: Arc<ConnSink>,
    pusher: Option<JoinHandle<()>>,
}

struct Shared {
    engine: Arc<Engine>,
    queue: Bounded<Job>,
    settings: ServerSettings,
    shutdown: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Push channels by connection id (the reply-mutex pointer, unique
    /// while the connection lives).
    sinks: Mutex<HashMap<u64, SinkEntry>>,
    stats: Stats,
}

/// A connection's id: the address of its reply mutex — stable and
/// unique for the connection's whole lifetime, with no extra counter to
/// thread through.
fn conn_id(reply: &Arc<Mutex<TcpStream>>) -> u64 {
    Arc::as_ptr(reply) as usize as u64
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn snapshot_stats(s: &Stats) -> ServerStats {
    ServerStats {
        admitted: s.admitted.load(Ordering::Relaxed),
        completed: s.completed.load(Ordering::Relaxed),
        rejected_overload: s.rejected_overload.load(Ordering::Relaxed),
        rejected_deadline: s.rejected_deadline.load(Ordering::Relaxed),
        rejected_shutdown: s.rejected_shutdown.load(Ordering::Relaxed),
        bad_frames: s.bad_frames.load(Ordering::Relaxed),
        drain_deadline_drops: s.drain_deadline_drops.load(Ordering::Relaxed),
    }
}

/// Writes one response frame under the connection's write mutex. A gone
/// peer is not an error — the work was done; only the reply is lost.
fn respond(reply: &Mutex<TcpStream>, resp: &Response, request_id: u64, max_bytes: usize) {
    let frame = resp.to_frame(request_id);
    let mut stream = lock(reply);
    let _ = net::write_frame(&mut *stream, &frame, max_bytes);
}

fn reject(reply: &Mutex<TcpStream>, code: ErrorCode, msg: &str, request_id: u64, max: usize) {
    respond(
        reply,
        &Response::Error {
            code,
            message: msg.to_owned(),
        },
        request_id,
        max,
    );
}

fn reader_loop(shared: &Shared, mut stream: TcpStream, reply: Arc<Mutex<TcpStream>>) {
    let max = shared.settings.max_frame_bytes;
    if let Some(m) = metrics::get() {
        m.server.connections.inc();
    }
    loop {
        let frame = match net::read_frame(&mut stream, max) {
            Ok(FrameRead::Frame(f)) => f,
            // clean close between frames
            Ok(FrameRead::Eof) => break,
            // CRC failure: the stream is still frame-aligned, so reject
            // the frame (id 0 = connection-level) and keep reading
            Ok(FrameRead::Corrupt(msg)) => {
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics::get() {
                    m.server.bad_frames.inc();
                }
                reject(&reply, ErrorCode::BadFrame, &msg, 0, max);
                continue;
            }
            // bad magic / oversize / mid-frame hangup: unrecoverable
            Err(_) => break,
        };
        // admission clock starts once a whole frame is off the wire
        let t_admit = metrics::enabled().then(Instant::now);
        let request_id = frame.request_id;
        let req = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                reject(
                    &reply,
                    ErrorCode::BadRequest,
                    &e.to_string(),
                    request_id,
                    max,
                );
                continue;
            }
        };
        let job = Job {
            request_id,
            req,
            reply: Arc::clone(&reply),
            deadline: shared.settings.req_timeout.map(|t| Instant::now() + t),
            admitted_at: t_admit,
        };
        // admission is counted *inside* the queue's critical section:
        // a worker pops through the same lock, so a dequeued request's
        // own admission is always visible in the snapshot it takes —
        // the exact-count contract of the `Stats` request
        let pushed = shared.queue.try_push_with(job, || {
            shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = metrics::get() {
                m.server.admitted.inc();
                m.server.queue_depth.inc();
                if let Some(t) = t_admit {
                    m.server.admission_us.observe_duration(t.elapsed());
                }
            }
        });
        match pushed {
            Ok(()) => {}
            Err(PushError::Full(job)) => {
                shared
                    .stats
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics::get() {
                    m.server.rejected_overload.inc();
                }
                reject(
                    &job.reply,
                    ErrorCode::Overloaded,
                    "admission queue full; retry later",
                    job.request_id,
                    max,
                );
            }
            Err(PushError::Closed(job)) => {
                shared
                    .stats
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(m) = metrics::get() {
                    m.server.rejected_shutdown.inc();
                }
                reject(
                    &job.reply,
                    ErrorCode::ShuttingDown,
                    "server is draining",
                    job.request_id,
                    max,
                );
                break;
            }
        }
    }
    // connection teardown: stop the pusher (flushing what is queued),
    // then unregister every standing query of this connection. Order
    // matters for the subscribe race (see the worker's Subscribe arm):
    // `done` is set before `drop_conn`, so a concurrent subscribe either
    // observes `done` and self-unsubscribes, or registered early enough
    // that `drop_conn` sweeps it.
    let id = conn_id(&reply);
    // absent when server shutdown already drained the sinks map
    let entry = lock(&shared.sinks).remove(&id);
    if let Some(entry) = &entry {
        entry.sink.shutdown();
    }
    shared.engine.drop_conn(id);
    if let Some(SinkEntry {
        pusher: Some(h), ..
    }) = entry
    {
        let _ = h.join();
    }
    if let Some(m) = metrics::get() {
        m.server.connections.dec();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if let Some(m) = metrics::get() {
            m.server.queue_depth.dec();
            if let Some(t) = job.admitted_at {
                m.server.queue_wait_us.observe_duration(t.elapsed());
            }
        }
        let resp = if job.deadline.is_some_and(|d| Instant::now() > d) {
            shared
                .stats
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            // a deadline drop while the queue is closed is a request the
            // graceful shutdown answered but never executed
            let draining = shared.shutdown.load(Ordering::SeqCst);
            if draining {
                shared
                    .stats
                    .drain_deadline_drops
                    .fetch_add(1, Ordering::Relaxed);
            }
            if let Some(m) = metrics::get() {
                m.server.rejected_deadline.inc();
                if draining {
                    m.server.drain_deadline_drops.inc();
                }
            }
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "request queued past its deadline; dropped unexecuted".into(),
            }
        } else {
            let t_exec = metrics::enabled().then(Instant::now);
            if let Some(m) = metrics::get() {
                m.server.workers_busy.inc();
            }
            let resp = match &job.req {
                Request::Sleep(ms) => {
                    // serviced here, not in the engine: holds no lock,
                    // only a worker slot — exactly what the saturation
                    // tests need
                    std::thread::sleep(Duration::from_millis(*ms.min(&MAX_SLEEP_MS)));
                    Response::Pong
                }
                // connection-scoped, so serviced here where the push
                // sink lives, not in the engine
                Request::Subscribe(text) => {
                    let id = conn_id(&job.reply);
                    let sink = lock(&shared.sinks).get(&id).map(|e| Arc::clone(&e.sink));
                    match sink {
                        Some(sink) => {
                            match shared.engine.subscribe(text, id, sink.clone()) {
                                Ok((sub_id, snapshot)) => {
                                    if sink.done.load(Ordering::SeqCst) {
                                        // the reader tore the connection
                                        // down while we registered; its
                                        // drop_conn may have run before
                                        // we existed, so sweep ourselves
                                        shared.engine.unsubscribe(id, sub_id);
                                        Response::Error {
                                            code: ErrorCode::Exec,
                                            message: "connection closed during subscribe".into(),
                                        }
                                    } else {
                                        Response::Subscribed { sub_id, snapshot }
                                    }
                                }
                                Err(e) => Response::Error {
                                    code: ErrorCode::Exec,
                                    message: e.to_string(),
                                },
                            }
                        }
                        None => Response::Error {
                            code: ErrorCode::Exec,
                            message: "connection is closing".into(),
                        },
                    }
                }
                Request::Unsubscribe { sub_id } => Response::Unsubscribed {
                    existed: shared.engine.unsubscribe(conn_id(&job.reply), *sub_id),
                },
                req => shared.engine.handle(req),
            };
            if let Some(m) = metrics::get() {
                m.server.workers_busy.dec();
                if let Some(t) = t_exec {
                    m.server.execute_us.observe_duration(t.elapsed());
                }
            }
            resp
        };
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        // count completion *before* the response hits the wire, so a
        // client that has a reply in hand is guaranteed to see it in the
        // next snapshot (exact-count accounting over a serial connection)
        if let Some(m) = metrics::get() {
            m.server.completed.inc();
        }
        let t_encode = metrics::enabled().then(Instant::now);
        respond(
            &job.reply,
            &resp,
            job.request_id,
            shared.settings.max_frame_bytes,
        );
        if let Some(m) = metrics::get() {
            if let Some(t) = t_encode {
                m.server.encode_us.observe_duration(t.elapsed());
            }
        }
    }
}

/// Periodic one-line metrics summary to stderr, driven by
/// `HYGRAPH_METRICS_LOG_EVERY_MS` (see [`hygraph_metrics::MetricsConfig`]).
/// Sleeps in short slices so shutdown never waits more than ~250 ms for
/// this thread.
fn logger_loop(shared: &Shared, every: Duration) {
    let slice = Duration::from_millis(250).min(every);
    let mut last = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        if last.elapsed() >= every {
            last = Instant::now();
            if let Some(snap) = metrics::snapshot() {
                eprintln!("{}", snap.summary_line());
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let (reply, registered) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(w), Ok(r)) => (Arc::new(Mutex::new(w)), r),
            _ => continue,
        };
        lock(&shared.conns).push(registered);
        // every connection gets a push channel up front: subscriptions
        // registered by any worker have somewhere to deliver, with no
        // lazy-spawn race against the commit path
        let sink = Arc::new(ConnSink::new(
            Arc::clone(&reply),
            shared.settings.max_frame_bytes,
            shared.engine.subscriptions().config().push_buffer,
        ));
        let pusher = {
            let sink = Arc::clone(&sink);
            std::thread::Builder::new()
                .name("hygraph-push".into())
                .spawn(move || pusher_loop(&sink))
                .ok()
        };
        lock(&shared.sinks).insert(conn_id(&reply), SinkEntry { sink, pusher });
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("hygraph-conn".into())
            .spawn(move || reader_loop(&shared2, stream, reply));
        if let Ok(h) = handle {
            lock(&shared.readers).push(h);
        }
    }
}

struct Threads {
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
}

/// A running HyGraph server (see module docs). Dropping it shuts it
/// down best-effort; call [`Server::shutdown`] for the checked path.
pub struct Server {
    shared: Option<Arc<Shared>>,
    threads: Option<Threads>,
    addr: SocketAddr,
}

impl Server {
    /// Binds and starts serving `backend` with `config` (explicit
    /// fields win over `HYGRAPH_*` environment knobs — see
    /// [`ServerConfig`]). Use address `"127.0.0.1:0"` for an ephemeral
    /// test port; [`Server::local_addr`] reports what was bound.
    pub fn serve(backend: Backend, config: &ServerConfig) -> Result<Self> {
        Self::serve_engine(Engine::new(backend), config)
    }

    /// Like [`Server::serve`], but over a pre-built [`Engine`] — the
    /// way to pin engine-level settings ([`Engine::with_plan_cache`],
    /// [`Engine::with_sub_config`]) regardless of the environment.
    pub fn serve_engine(engine: Engine, config: &ServerConfig) -> Result<Self> {
        let settings = config.resolve();
        let listener = TcpListener::bind(&settings.addr)?;
        let addr = listener.local_addr()?;
        let workers = settings.workers;
        let shared = Arc::new(Shared {
            engine: Arc::new(engine),
            queue: Bounded::new(settings.queue_depth),
            settings,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            sinks: Mutex::new(HashMap::new()),
            stats: Stats::default(),
        });
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let s = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("hygraph-worker-{i}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }
        let s = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hygraph-accept".into())
            .spawn(move || accept_loop(&s, listener))?;
        let every = metrics::config().log_every;
        let logger = if metrics::enabled() && !every.is_zero() {
            let s = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("hygraph-metrics-log".into())
                    .spawn(move || logger_loop(&s, every))?,
            )
        } else {
            None
        };
        Ok(Self {
            shared: Some(shared),
            threads: Some(Threads {
                accept,
                workers: worker_handles,
                logger,
            }),
            addr,
        })
    }

    /// Serves `backend` with default configuration (environment knobs
    /// still apply).
    pub fn serve_default(backend: Backend) -> Result<Self> {
        Self::serve(backend, &ServerConfig::new())
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The effective settings this server runs with.
    pub fn settings(&self) -> &ServerSettings {
        &self.shared.as_ref().expect("server not shut down").settings
    }

    /// The shared engine this server executes against — lets tests and
    /// the bench harness pin snapshot epochs ([`Engine::pin_snapshot`])
    /// alongside live wire traffic.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.shared.as_ref().expect("server not shut down").engine)
    }

    /// A snapshot of the request counters.
    pub fn stats(&self) -> ServerStats {
        snapshot_stats(&self.shared.as_ref().expect("server not shut down").stats)
    }

    /// An in-process client sharing this server's engine — same locks,
    /// same execution paths, no sockets. For tests and benches.
    pub fn local_client(&self) -> crate::client::LocalClient {
        crate::client::LocalClient::new(Arc::clone(
            &self.shared.as_ref().expect("server not shut down").engine,
        ))
    }

    /// Gracefully shuts down: stops admitting, drains every admitted
    /// request (responses are written), syncs the WAL on a durable
    /// backend, then closes connections. The report carries the backend
    /// (unless a [`crate::client::LocalClient`] still shares the
    /// engine), how many queued requests the drain answered, and how
    /// many of those sat past their deadline and were dropped
    /// unexecuted.
    pub fn shutdown(mut self) -> Result<ShutdownReport> {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> Result<ShutdownReport> {
        let Some(shared) = self.shared.take() else {
            return Ok(ShutdownReport {
                backend: None,
                drained: 0,
                dropped_at_deadline: 0,
                stats: ServerStats::default(),
            });
        };
        let completed_before = shared.stats.completed.load(Ordering::SeqCst);
        let drops_before = shared.stats.drain_deadline_drops.load(Ordering::SeqCst);
        // 1. stop admission: readers see Closed and answer ShuttingDown
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.queue.close();
        // 2. wake the accept thread out of its blocking accept()
        let _ = TcpStream::connect(self.addr);
        if let Some(threads) = self.threads.take() {
            let _ = threads.accept.join();
            // 3. workers drain the queue, then exit on pop() == None
            for w in threads.workers {
                let _ = w.join();
            }
            if let Some(l) = threads.logger {
                let _ = l.join();
            }
        }
        let drained = shared.stats.completed.load(Ordering::SeqCst) - completed_before;
        let dropped_at_deadline =
            shared.stats.drain_deadline_drops.load(Ordering::SeqCst) - drops_before;
        // 3b. the workers are done, so no more deltas can be produced:
        // flush every push channel (queued deltas still reach their
        // subscribers) and retire the pusher threads
        let entries: Vec<SinkEntry> = lock(&shared.sinks).drain().map(|(_, e)| e).collect();
        for e in &entries {
            e.sink.shutdown();
        }
        for e in entries {
            if let Some(h) = e.pusher {
                let _ = h.join();
            }
        }
        // 4. every admitted mutation is on disk before we say goodbye
        shared.engine.sync()?;
        // 5. now drop the connections and collect the readers
        for conn in lock(&shared.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let readers: Vec<_> = lock(&shared.readers).drain(..).collect();
        for r in readers {
            let _ = r.join();
        }
        let stats = snapshot_stats(&shared.stats);
        let backend = match Arc::try_unwrap(shared) {
            Ok(shared) => match Arc::try_unwrap(shared.engine) {
                Ok(engine) => Some(engine.into_backend()),
                Err(_still_shared) => None,
            },
            Err(_still_shared) => None,
        };
        Ok(ShutdownReport {
            backend,
            drained,
            dropped_at_deadline,
            stats,
        })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("stats", &self.shared.as_ref().map(|_| self.stats()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use hygraph_core::HyGraph;
    use hygraph_persist::HgMutation;
    use hygraph_types::{Label, PropertyMap, Value};

    fn test_config() -> ServerConfig {
        ServerConfig::new()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_depth(16)
            .req_timeout_ms(2_000)
    }

    #[test]
    fn serves_ping_query_and_mutation_over_tcp() {
        let server = Server::serve(Backend::memory(HyGraph::new()), &test_config()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client.ping().expect("ping");
        let (first, count) = client
            .mutate(HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: hygraph_types::Interval::ALL,
            })
            .expect("mutate");
        assert_eq!((first, count), (0, 1));
        let rows = client
            .query("MATCH (u:User) RETURN COUNT(u) AS n")
            .expect("query");
        assert_eq!(rows.rows[0][0], Value::Int(1));
        let stats = server.stats();
        assert_eq!(stats.admitted, 3);
        let report = server.shutdown().expect("shutdown");
        let backend = report.backend.expect("backend back");
        assert_eq!(backend.graph().vertex_count(), 1);
    }

    #[test]
    fn rejects_new_requests_while_draining() {
        let server = Server::serve(Backend::memory(HyGraph::new()), &test_config()).expect("bind");
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        client.ping().expect("ping");
        server.shutdown().expect("shutdown");
        // the connection is gone or refuses work; either way no panic
        let err = client.ping();
        assert!(err.is_err(), "ping after shutdown must fail, got {err:?}");
    }

    #[test]
    fn exec_errors_come_back_typed() {
        let server = Server::serve(Backend::memory(HyGraph::new()), &test_config()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let err = client.query("MTCH nonsense").unwrap_err();
        assert!(
            matches!(err, hygraph_types::HyGraphError::Query(_)),
            "got {err:?}"
        );
        // the connection survives the failed request
        client.ping().expect("ping after error");
        server.shutdown().expect("shutdown");
    }
}
