//! hygraph-server — the concurrent query-serving layer for HyGraph.
//!
//! Turns the embedded hybrid-graph library into a network service: a
//! TCP server speaking a CRC-guarded, length-prefixed binary protocol
//! (framing in [`hygraph_types::net`], vocabulary in [`proto`]) over a
//! shared [`Engine`] holding either an in-memory [`hygraph_core::HyGraph`]
//! or a durable [`hygraph_persist::DurableStore`].
//!
//! The serving pipeline is deliberately boring and explicit:
//!
//! * per-connection reader threads decode frames and **never block** —
//!   admission goes through a bounded queue ([`queue::Bounded`]) and a
//!   full queue is an immediate, typed overload rejection
//!   ([`proto::ErrorCode::Overloaded`]), not latency;
//! * a fixed worker pool (sized like the rest of the workspace, via
//!   [`hygraph_types::parallel`]) executes requests under a
//!   readers/writer lock — queries run concurrently, mutations
//!   serialise through the WAL's group-commit path;
//! * per-request deadlines drop stale queued work
//!   ([`proto::ErrorCode::DeadlineExceeded`]) instead of executing it
//!   after the client stopped caring;
//! * graceful shutdown ([`Server::shutdown`]) drains every admitted
//!   request, syncs the WAL, and only then closes connections;
//! * standing queries ([`Client::subscribe`], `hygraph-sub`) push
//!   incremental result deltas as unsolicited tagged frames, written by
//!   a per-connection pusher thread so a slow subscriber never blocks
//!   the commit path — it is disconnected with a typed
//!   [`proto::Push::Closed`] instead.
//!
//! Configuration follows the workspace's layered-knob convention:
//! `HYGRAPH_ADDR`, `HYGRAPH_WORKERS`, `HYGRAPH_QUEUE_DEPTH`, and
//! `HYGRAPH_REQ_TIMEOUT_MS` from the environment, overridable
//! programmatically via [`hygraph_types::net::ServerConfig`].
//!
//! ```
//! use hygraph_server::{Backend, Client, Server};
//! use hygraph_types::net::ServerConfig;
//!
//! let server = Server::serve(
//!     Backend::memory(hygraph_core::HyGraph::new()),
//!     &ServerConfig::new().addr("127.0.0.1:0").workers(2),
//! )
//! .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! let rows = client.query("MATCH (n) RETURN COUNT(n) AS n").unwrap();
//! assert_eq!(rows.columns, vec!["n"]);
//! server.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{Client, LocalClient, Subscription};
pub use engine::{Backend, Engine};
pub use hygraph_sub::SubConfig;
pub use proto::{ErrorCode, Push, Request, Response};
pub use server::{Server, ServerStats, ShutdownReport};
