//! The request/response vocabulary of the HyGraph wire protocol.
//!
//! Messages travel inside [`Frame`]s (see [`hygraph_types::net`]): the
//! frame's kind tag selects a variant here, and the payload is the
//! variant's [`hygraph_types::bytes`] encoding. Mutations reuse the WAL
//! record codec of `hygraph-persist` — what a client sends over the
//! wire is byte-for-byte what the server appends to its log — and query
//! results reuse [`QueryResult`]'s wire codec, so the serving layer
//! introduces no second serialisation vocabulary.
//!
//! Decoding is untrusted on both sides: malformed payloads error,
//! never panic, and never kill the connection loop.

use hygraph_core::HyGraph;
use hygraph_persist::{Durable, HgMutation};
use hygraph_query::QueryResult;
use hygraph_types::bytes::{ByteReader, ByteWriter};
use hygraph_types::net::Frame;
use hygraph_types::{HyGraphError, Result};

/// Upper bound on [`Request::Sleep`] so a hostile client cannot park a
/// worker indefinitely.
pub const MAX_SLEEP_MS: u64 = 10_000;

// Request kinds (client → server).
const K_PING: u8 = 0;
const K_QUERY: u8 = 1;
const K_MUTATE: u8 = 2;
const K_MUTATE_BATCH: u8 = 3;
const K_CHECKPOINT: u8 = 4;
const K_SLEEP: u8 = 5;
const K_STATS: u8 = 6;
const K_SUBSCRIBE: u8 = 7;
const K_UNSUBSCRIBE: u8 = 8;
const K_QUERY_AS_OF: u8 = 9;

// Response kinds (server → client).
const K_PONG: u8 = 128;
const K_ROWS: u8 = 129;
const K_COMMITTED: u8 = 130;
const K_CHECKPOINT_DONE: u8 = 131;
const K_STATS_SNAPSHOT: u8 = 132;
const K_SUBSCRIBED: u8 = 133;
const K_UNSUBSCRIBED: u8 = 134;
const K_ERROR: u8 = 255;

// Push kinds (server → client, unsolicited). Everything in
// `192..K_ERROR` is a push frame: its `request_id` carries the
// *subscription* id, not a request correlation id, so clients must
// route these by kind before matching replies (see
// [`Push::is_push_kind`]).
const K_DELTA: u8 = 192;
const K_SUB_CLOSED: u8 = 193;

/// Why the server refused or failed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame failed its CRC check; the request was never decoded.
    BadFrame = 0,
    /// The frame decoded but the payload did not parse as a request.
    BadRequest = 1,
    /// The admission queue is full — explicit load shedding. Retry
    /// later; nothing was executed.
    Overloaded = 2,
    /// The request sat in the queue past its deadline and was dropped
    /// without executing.
    DeadlineExceeded = 3,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown = 4,
    /// The engine executed the request and returned an error (the
    /// message carries its rendering).
    Exec = 5,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => ErrorCode::BadFrame,
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Exec,
            _ => return Err(HyGraphError::corrupt(format!("unknown error code {v}"))),
        })
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Execute a HyQL query and return its rows.
    Query(String),
    /// Commit one mutation (durable on reply when persistence is on).
    Mutate(HgMutation),
    /// Group-commit a batch of mutations: one fsync for the lot.
    MutateBatch(Vec<HgMutation>),
    /// Force a checkpoint (snapshot + log purge) on a durable backend.
    Checkpoint,
    /// Hold a worker for the given milliseconds (capped at
    /// [`MAX_SLEEP_MS`]), then reply [`Response::Pong`] — the serving
    /// analogue of SQL `sleep()`, used by the load tests to saturate
    /// the pool deterministically.
    Sleep(u64),
    /// Fetch the server's observability snapshot (counters, latency
    /// histograms, slow-query log) — answered with [`Response::Stats`].
    Stats,
    /// Register the HyQL text as a standing query on this connection —
    /// answered with [`Response::Subscribed`], after which committed
    /// changes arrive as unsolicited [`Push::Delta`] frames.
    Subscribe(String),
    /// Remove a standing query registered on this connection.
    Unsubscribe {
        /// The id from [`Response::Subscribed`].
        sub_id: u64,
    },
    /// Execute a HyQL query pinned to the store's state as of a past
    /// transaction time — the structured form of an `AS OF` clause, so
    /// clients bind the timestamp without splicing it into query text.
    /// Rejected if `text` already carries its own temporal bound, or if
    /// the server runs with `HYGRAPH_HISTORY=0`.
    QueryAsOf {
        /// The HyQL text (without a temporal clause).
        text: String,
        /// Transaction time to query at, in epoch milliseconds.
        as_of_ms: i64,
    },
}

/// One server response. `Error` carries an [`ErrorCode`] so clients can
/// distinguish retryable rejections (backpressure, shutdown, deadline)
/// from request or execution failures.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`] / [`Request::Sleep`].
    Pong,
    /// Query result rows.
    Rows(QueryResult),
    /// Mutations applied: first LSN and how many were committed.
    Committed {
        /// LSN of the first mutation in the batch.
        first_lsn: u64,
        /// Number of mutations committed.
        count: u64,
    },
    /// Checkpoint finished at this LSN.
    CheckpointDone {
        /// The checkpoint's LSN.
        lsn: u64,
    },
    /// Reply to [`Request::Stats`]: the process-wide metrics snapshot.
    /// The payload is [`hygraph_metrics::Snapshot::to_bytes`] verbatim,
    /// so what a client decodes is byte-identical to what
    /// [`hygraph_metrics::snapshot`] returns in-process (all zeros when
    /// metrics are disabled server-side).
    Stats(Box<hygraph_metrics::Snapshot>),
    /// Reply to [`Request::Subscribe`]: the standing query's id plus
    /// its initial materialised result. Applying every subsequent
    /// [`Push::Delta`] to `snapshot` in arrival order reproduces the
    /// server-side result after each commit.
    Subscribed {
        /// Subscription id (scoped to this connection).
        sub_id: u64,
        /// The result as of registration.
        snapshot: QueryResult,
    },
    /// Reply to [`Request::Unsubscribe`]; carries whether the id was
    /// actually registered on this connection.
    Unsubscribed {
        /// `false` when the id was unknown (already dropped or never
        /// this connection's).
        existed: bool,
    },
    /// The request was refused or failed; see [`ErrorCode`].
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn mutation_bytes(m: &HgMutation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    <HyGraph as Durable>::encode_mutation(m, &mut w);
    w.into_bytes()
}

impl Request {
    /// The frame kind tag for this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => K_PING,
            Request::Query(_) => K_QUERY,
            Request::Mutate(_) => K_MUTATE,
            Request::MutateBatch(_) => K_MUTATE_BATCH,
            Request::Checkpoint => K_CHECKPOINT,
            Request::Sleep(_) => K_SLEEP,
            Request::Stats => K_STATS,
            Request::Subscribe(_) => K_SUBSCRIBE,
            Request::Unsubscribe { .. } => K_UNSUBSCRIBE,
            Request::QueryAsOf { .. } => K_QUERY_AS_OF,
        }
    }

    /// Encodes the request into a frame carrying `request_id`.
    pub fn to_frame(&self, request_id: u64) -> Frame {
        let mut w = ByteWriter::new();
        match self {
            Request::Ping | Request::Checkpoint | Request::Stats => {}
            Request::Query(text) => w.str(text),
            Request::Mutate(m) => <HyGraph as Durable>::encode_mutation(m, &mut w),
            Request::MutateBatch(ms) => {
                w.len_of(ms.len());
                for m in ms {
                    let bytes = mutation_bytes(m);
                    w.len_of(bytes.len());
                    w.raw(&bytes);
                }
            }
            Request::Sleep(ms) => w.u64(*ms),
            Request::Subscribe(text) => w.str(text),
            Request::Unsubscribe { sub_id } => w.u64(*sub_id),
            Request::QueryAsOf { text, as_of_ms } => {
                w.str(text);
                w.i64(*as_of_ms);
            }
        }
        Frame::new(request_id, self.kind(), w.into_bytes())
    }

    /// Decodes a request frame. Untrusted input.
    pub fn from_frame(frame: &Frame) -> Result<Self> {
        let mut r = ByteReader::new(&frame.payload);
        let req = match frame.kind {
            K_PING => Request::Ping,
            K_QUERY => Request::Query(r.str()?),
            K_MUTATE => Request::Mutate(<HyGraph as Durable>::decode_mutation(&mut r)?),
            K_MUTATE_BATCH => {
                let n = r.len_of()?;
                let mut ms = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = r.len_of()?;
                    let raw = r.raw(len)?;
                    let mut mr = ByteReader::new(raw);
                    let m = <HyGraph as Durable>::decode_mutation(&mut mr)?;
                    mr.expect_exhausted()?;
                    ms.push(m);
                }
                Request::MutateBatch(ms)
            }
            K_CHECKPOINT => Request::Checkpoint,
            K_SLEEP => Request::Sleep(r.u64()?.min(MAX_SLEEP_MS)),
            K_STATS => Request::Stats,
            K_SUBSCRIBE => Request::Subscribe(r.str()?),
            K_UNSUBSCRIBE => Request::Unsubscribe { sub_id: r.u64()? },
            K_QUERY_AS_OF => Request::QueryAsOf {
                text: r.str()?,
                as_of_ms: r.i64()?,
            },
            k => return Err(HyGraphError::corrupt(format!("unknown request kind {k}"))),
        };
        r.expect_exhausted()?;
        Ok(req)
    }
}

impl Response {
    /// The frame kind tag for this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong => K_PONG,
            Response::Rows(_) => K_ROWS,
            Response::Committed { .. } => K_COMMITTED,
            Response::CheckpointDone { .. } => K_CHECKPOINT_DONE,
            Response::Stats(_) => K_STATS_SNAPSHOT,
            Response::Subscribed { .. } => K_SUBSCRIBED,
            Response::Unsubscribed { .. } => K_UNSUBSCRIBED,
            Response::Error { .. } => K_ERROR,
        }
    }

    /// Encodes the response into a frame echoing `request_id`.
    pub fn to_frame(&self, request_id: u64) -> Frame {
        let mut w = ByteWriter::new();
        match self {
            Response::Pong => {}
            Response::Rows(result) => result.encode(&mut w),
            Response::Committed { first_lsn, count } => {
                w.u64(*first_lsn);
                w.u64(*count);
            }
            Response::CheckpointDone { lsn } => w.u64(*lsn),
            Response::Subscribed { sub_id, snapshot } => {
                w.u64(*sub_id);
                snapshot.encode(&mut w);
            }
            Response::Unsubscribed { existed } => w.u8(*existed as u8),
            Response::Stats(snap) => {
                let bytes = snap.to_bytes();
                w.len_of(bytes.len());
                w.raw(&bytes);
            }
            Response::Error { code, message } => {
                w.u8(*code as u8);
                w.str(message);
            }
        }
        Frame::new(request_id, self.kind(), w.into_bytes())
    }

    /// Decodes a response frame. Untrusted input.
    pub fn from_frame(frame: &Frame) -> Result<Self> {
        let mut r = ByteReader::new(&frame.payload);
        let resp = match frame.kind {
            K_PONG => Response::Pong,
            K_ROWS => Response::Rows(QueryResult::decode(&mut r)?),
            K_COMMITTED => Response::Committed {
                first_lsn: r.u64()?,
                count: r.u64()?,
            },
            K_CHECKPOINT_DONE => Response::CheckpointDone { lsn: r.u64()? },
            K_SUBSCRIBED => Response::Subscribed {
                sub_id: r.u64()?,
                snapshot: QueryResult::decode(&mut r)?,
            },
            K_UNSUBSCRIBED => Response::Unsubscribed {
                existed: r.u8()? != 0,
            },
            K_STATS_SNAPSHOT => {
                let len = r.len_of()?;
                let raw = r.raw(len)?;
                let snap = hygraph_metrics::Snapshot::from_bytes(raw)
                    .map_err(|e| HyGraphError::corrupt(e.to_string()))?;
                Response::Stats(Box::new(snap))
            }
            K_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                message: r.str()?,
            },
            k => return Err(HyGraphError::corrupt(format!("unknown response kind {k}"))),
        };
        r.expect_exhausted()?;
        Ok(resp)
    }

    /// Converts a response into the client-side result: rejections and
    /// failures become [`HyGraphError`]s, everything else passes
    /// through. Retryable rejections (overload, deadline, shutdown) map
    /// to [`HyGraphError::Unavailable`].
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Error { code, message } => Err(match code {
                ErrorCode::Overloaded => {
                    HyGraphError::unavailable(format!("server overloaded: {message}"))
                }
                ErrorCode::DeadlineExceeded => {
                    HyGraphError::unavailable(format!("deadline exceeded: {message}"))
                }
                ErrorCode::ShuttingDown => {
                    HyGraphError::unavailable(format!("server shutting down: {message}"))
                }
                ErrorCode::BadFrame | ErrorCode::BadRequest => HyGraphError::invalid(message),
                ErrorCode::Exec => HyGraphError::query(message),
            }),
            ok => Ok(ok),
        }
    }
}

/// One unsolicited server→client push frame for a standing query.
/// Unlike [`Response`]s, pushes are not correlated to a request: the
/// frame's `request_id` slot carries the subscription id.
#[derive(Clone, Debug, PartialEq)]
pub enum Push {
    /// The subscription's result changed; apply with
    /// [`hygraph_query::incremental::apply_delta`].
    Delta(hygraph_query::incremental::Delta),
    /// The server dropped the subscription (slow consumer, standing
    /// query failure); no further frames follow for this id.
    Closed {
        /// Why it was dropped.
        reason: String,
    },
}

impl Push {
    /// Whether a frame kind is in the unsolicited-push range. Clients
    /// route these by kind *before* reply correlation.
    pub fn is_push_kind(kind: u8) -> bool {
        (K_DELTA..K_ERROR).contains(&kind)
    }

    /// The frame kind tag for this push.
    pub fn kind(&self) -> u8 {
        match self {
            Push::Delta(_) => K_DELTA,
            Push::Closed { .. } => K_SUB_CLOSED,
        }
    }

    /// Encodes the push into a frame whose id slot carries `sub_id`.
    pub fn to_frame(&self, sub_id: u64) -> Frame {
        let mut w = ByteWriter::new();
        match self {
            Push::Delta(d) => d.encode(&mut w),
            Push::Closed { reason } => w.str(reason),
        }
        Frame::new(sub_id, self.kind(), w.into_bytes())
    }

    /// Decodes a push frame, returning `(sub_id, push)`. Untrusted
    /// input.
    pub fn from_frame(frame: &Frame) -> Result<(u64, Self)> {
        let mut r = ByteReader::new(&frame.payload);
        let push = match frame.kind {
            K_DELTA => Push::Delta(hygraph_query::incremental::Delta::decode(&mut r)?),
            K_SUB_CLOSED => Push::Closed { reason: r.str()? },
            k => return Err(HyGraphError::corrupt(format!("unknown push kind {k}"))),
        };
        r.expect_exhausted()?;
        Ok((frame.request_id, push))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hygraph_query::incremental::{Delta, DeltaOp};
    use hygraph_types::{Interval, Label, PropertyMap, SeriesId, Timestamp, Value};

    fn roundtrip_request(req: &Request) -> Request {
        let frame = req.to_frame(7);
        assert_eq!(frame.request_id, 7);
        Request::from_frame(&frame).expect("request decodes")
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let frame = resp.to_frame(9);
        assert_eq!(frame.request_id, 9);
        Response::from_frame(&frame).expect("response decodes")
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Query("MATCH (n) RETURN n.name AS name".into()),
            Request::Mutate(HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: PropertyMap::new(),
                validity: Interval::ALL,
            }),
            Request::MutateBatch(vec![
                HgMutation::AddSeries {
                    names: vec!["x".into()],
                    rows: vec![(Timestamp::from_millis(1), vec![0.5])],
                },
                HgMutation::Append {
                    series: SeriesId::new(0),
                    t: Timestamp::from_millis(2),
                    row: vec![1.5],
                },
            ]),
            Request::Checkpoint,
            Request::Sleep(50),
            Request::Stats,
            Request::Subscribe("MATCH (u:User) RETURN u.name AS n".into()),
            Request::Unsubscribe { sub_id: 12 },
            Request::QueryAsOf {
                text: "MATCH (n) RETURN n.name AS name".into(),
                as_of_ms: 1_722_000_000_123,
            },
        ];
        for req in &reqs {
            assert_eq!(&roundtrip_request(req), req);
        }
    }

    #[test]
    fn sleep_is_capped_on_decode() {
        let frame = Request::Sleep(u64::MAX).to_frame(1);
        assert_eq!(
            Request::from_frame(&frame).unwrap(),
            Request::Sleep(MAX_SLEEP_MS)
        );
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Pong,
            Response::Rows(QueryResult {
                columns: vec!["a".into(), "b".into()],
                rows: vec![vec![
                    hygraph_types::Value::Int(1),
                    hygraph_types::Value::Str("x".into()),
                ]],
            }),
            Response::Committed {
                first_lsn: 17,
                count: 3,
            },
            Response::CheckpointDone { lsn: 20 },
            Response::Stats(Box::new({
                let mut snap = hygraph_metrics::Snapshot::default();
                snap.server.admitted = 42;
                snap.slow_queries.push(hygraph_metrics::SlowQueryEntry {
                    query: "MATCH (n) RETURN n".into(),
                    duration_us: 123_456,
                    rows: 7,
                    plan_fp: 0xabc,
                });
                snap
            })),
            Response::Subscribed {
                sub_id: 3,
                snapshot: QueryResult {
                    columns: vec!["n".into()],
                    rows: vec![vec![Value::Str("ada".into())]],
                },
            },
            Response::Unsubscribed { existed: true },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
        ];
        for resp in &resps {
            assert_eq!(&roundtrip_response(resp), resp);
        }
    }

    #[test]
    fn pushes_roundtrip_and_carry_sub_id() {
        let pushes = [
            Push::Delta(Delta {
                ops: vec![
                    DeltaOp::Insert {
                        at: 0,
                        row: vec![Value::Int(7)],
                    },
                    DeltaOp::Remove { at: 2 },
                ],
            }),
            Push::Closed {
                reason: "slow consumer: push buffer full".into(),
            },
        ];
        for push in &pushes {
            let frame = push.to_frame(42);
            assert!(Push::is_push_kind(frame.kind), "kind {}", frame.kind);
            // push kinds never collide with the reply vocabulary
            assert!(Response::from_frame(&frame).is_err());
            let (sub_id, decoded) = Push::from_frame(&frame).expect("push decodes");
            assert_eq!(sub_id, 42);
            assert_eq!(&decoded, push);
        }
        // the error kind stays a reply, not a push
        assert!(!Push::is_push_kind(K_ERROR));
        assert!(!Push::is_push_kind(K_PONG));
        assert!(Push::from_frame(&Frame::new(1, K_PONG, vec![])).is_err());
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        // trailing garbage after a valid ping
        let frame = Frame::new(1, 0, vec![0xFF]);
        assert!(Request::from_frame(&frame).is_err());
        // unknown kinds
        assert!(Request::from_frame(&Frame::new(1, 99, vec![])).is_err());
        assert!(Response::from_frame(&Frame::new(1, 99, vec![])).is_err());
        // truncated mutation batch
        let good = Request::MutateBatch(vec![HgMutation::AddSeries {
            names: vec!["x".into()],
            rows: vec![],
        }])
        .to_frame(1);
        let cut = Frame::new(
            1,
            good.kind,
            good.payload[..good.payload.len() - 1].to_vec(),
        );
        assert!(Request::from_frame(&cut).is_err());
    }

    #[test]
    fn retryable_rejections_map_to_unavailable() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShuttingDown,
        ] {
            let err = Response::Error {
                code,
                message: "x".into(),
            }
            .into_result()
            .unwrap_err();
            assert!(
                matches!(err, HyGraphError::Unavailable(_)),
                "{code:?} must be Unavailable, got {err:?}"
            );
        }
        assert!(Response::Pong.into_result().is_ok());
    }
}
