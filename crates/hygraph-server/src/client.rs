//! Clients: a blocking TCP [`Client`] speaking the wire protocol, and
//! an in-process [`LocalClient`] that shares a server's engine directly
//! (same locks, same execution paths, no sockets).
//!
//! The TCP client supports pipelining: [`Client::send`] returns the
//! request id immediately, [`Client::recv`] returns the next response
//! off the wire, and [`Client::call`] does a full round trip, holding
//! out-of-order responses aside until the matching id arrives.

use crate::engine::Engine;
use crate::proto::{Request, Response};
use hygraph_persist::HgMutation;
use hygraph_query::QueryResult;
use hygraph_types::net::{self, FrameRead, DEFAULT_MAX_FRAME_BYTES};
use hygraph_types::{HyGraphError, Result};
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A blocking TCP client for the HyGraph wire protocol.
///
/// ```
/// use hygraph_server::{Backend, Client, Server};
/// use hygraph_types::net::ServerConfig;
///
/// let server = Server::serve(
///     Backend::memory(hygraph_core::HyGraph::new()),
///     &ServerConfig::new().addr("127.0.0.1:0").workers(2),
/// )?;
///
/// let mut client = Client::connect(server.local_addr())?;
/// client.ping()?;
/// let rows = client.query("MATCH (n) RETURN COUNT(n) AS n")?;
/// assert_eq!(rows.columns, vec!["n"]);
/// let stats = client.stats()?; // the server's observability snapshot
/// assert!(stats.server.admitted >= 3);
///
/// server.shutdown()?;
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_bytes: usize,
    /// Responses read while waiting for a different request id.
    pending: HashMap<u64, Response>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending: HashMap::new(),
        })
    }

    /// Overrides the frame-size limit (must match the server's to make
    /// use of a raised limit).
    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n;
        self
    }

    /// Sends a request without waiting for its response; returns the
    /// request id to match against [`Client::recv`]. This is the
    /// pipelining half — a load generator can keep several ids in
    /// flight per connection.
    pub fn send(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = req.to_frame(id);
        net::write_frame(&mut self.stream, &frame, self.max_frame_bytes)?;
        Ok(id)
    }

    /// Receives the next response off the wire as `(request_id,
    /// response)`. Responses may arrive in any order relative to sends.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        match net::read_frame(&mut self.stream, self.max_frame_bytes)? {
            FrameRead::Frame(frame) => {
                let id = frame.request_id;
                Ok((id, Response::from_frame(&frame)?))
            }
            FrameRead::Eof => Err(HyGraphError::unavailable(
                "connection closed by server".to_owned(),
            )),
            FrameRead::Corrupt(msg) => Err(HyGraphError::corrupt(format!(
                "response frame corrupt: {msg}"
            ))),
        }
    }

    /// Full round trip: send, then receive until the matching response
    /// arrives. Out-of-order responses for other in-flight ids are held
    /// aside for their own `call`/`recv_for`. A connection-level error
    /// (request id 0, e.g. a frame the server could not CRC-verify)
    /// surfaces immediately — its real id is unknowable.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Receives until the response for `id` arrives (see
    /// [`Client::call`]).
    pub fn recv_for(&mut self, id: u64) -> Result<Response> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            if got == 0 {
                return resp
                    .into_result()
                    .map(|_| unreachable!("id-0 frames are always connection-level errors"));
            }
            self.pending.insert(got, resp);
        }
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T> {
        let resp = self.call(req)?.into_result()?;
        let kind = resp.kind();
        extract(resp).ok_or_else(|| {
            HyGraphError::corrupt(format!("unexpected response kind {kind} for request"))
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.expect(&Request::Ping, |r| {
            matches!(r, Response::Pong).then_some(())
        })
    }

    /// Executes a HyQL query and returns its rows.
    pub fn query(&mut self, text: impl Into<String>) -> Result<QueryResult> {
        self.expect(&Request::Query(text.into()), |r| match r {
            Response::Rows(rows) => Some(rows),
            _ => None,
        })
    }

    /// Commits one mutation; returns `(lsn, 1)`.
    pub fn mutate(&mut self, m: HgMutation) -> Result<(u64, u64)> {
        self.expect(&Request::Mutate(m), |r| match r {
            Response::Committed { first_lsn, count } => Some((first_lsn, count)),
            _ => None,
        })
    }

    /// Group-commits a batch; returns `(first_lsn, count)`.
    pub fn mutate_batch(&mut self, ms: Vec<HgMutation>) -> Result<(u64, u64)> {
        self.expect(&Request::MutateBatch(ms), |r| match r {
            Response::Committed { first_lsn, count } => Some((first_lsn, count)),
            _ => None,
        })
    }

    /// Forces a checkpoint; returns its LSN.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.expect(&Request::Checkpoint, |r| match r {
            Response::CheckpointDone { lsn } => Some(lsn),
            _ => None,
        })
    }

    /// Parks a server worker for `ms` milliseconds (capped server-side
    /// at [`crate::proto::MAX_SLEEP_MS`]). Load tests use this to
    /// saturate the pool deterministically.
    pub fn sleep(&mut self, ms: u64) -> Result<()> {
        self.expect(&Request::Sleep(ms), |r| {
            matches!(r, Response::Pong).then_some(())
        })
    }

    /// Fetches the server's observability snapshot (counters, latency
    /// histograms, slow-query log). All zeros when the server runs with
    /// metrics disabled.
    pub fn stats(&mut self) -> Result<hygraph_metrics::Snapshot> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(snap) => Some(*snap),
            _ => None,
        })
    }

    /// Closes the connection (dropping the client does the same).
    pub fn close(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("next_id", &self.next_id)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// An in-process client over a shared [`Engine`] — the zero-copy
/// baseline the integration tests compare served results against, and
/// the way embedded callers reach a running server's state without a
/// socket.
///
/// ```
/// use hygraph_server::{Backend, Server};
/// use hygraph_types::net::ServerConfig;
///
/// let server = Server::serve(
///     Backend::memory(hygraph_core::HyGraph::new()),
///     &ServerConfig::new().addr("127.0.0.1:0").workers(2),
/// )?;
///
/// // same engine, same locks, no socket
/// let local = server.local_client();
/// let rows = local.query("MATCH (n) RETURN COUNT(n) AS n")?;
/// assert_eq!(rows.rows[0][0], hygraph_types::Value::Int(0));
/// local.with_graph(|hg| assert_eq!(hg.vertex_count(), 0));
///
/// // the engine is still shared, so shutdown hands back no backend
/// assert!(server.shutdown()?.backend.is_none());
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LocalClient {
    engine: Arc<Engine>,
}

impl LocalClient {
    /// A client over `engine` (see [`crate::Server::local_client`]).
    pub fn new(engine: Arc<Engine>) -> Self {
        Self { engine }
    }

    /// Executes a HyQL query under the engine's read lock.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.engine.query(text)
    }

    /// Commits a batch of mutations; returns `(first_lsn, count)`.
    pub fn mutate_batch(&self, ms: Vec<HgMutation>) -> Result<(u64, u64)> {
        self.engine.mutate_batch(ms)
    }

    /// Forces a checkpoint; returns its LSN.
    pub fn checkpoint(&self) -> Result<u64> {
        self.engine.checkpoint()
    }

    /// Runs `f` against the live graph under the read lock.
    pub fn with_graph<R>(&self, f: impl FnOnce(&hygraph_core::HyGraph) -> R) -> R {
        self.engine.with_graph(f)
    }

    /// The observability snapshot, exactly as [`Client::stats`] would
    /// see it over the wire (all zeros when metrics are disabled).
    pub fn stats(&self) -> hygraph_metrics::Snapshot {
        hygraph_metrics::snapshot().unwrap_or_default()
    }

    /// Executes one protocol request exactly as a worker would (minus
    /// the queue and deadline).
    pub fn handle(&self, req: &Request) -> Response {
        self.engine.handle(req)
    }
}
