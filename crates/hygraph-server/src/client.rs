//! Clients: a blocking TCP [`Client`] speaking the wire protocol, and
//! an in-process [`LocalClient`] that shares a server's engine directly
//! (same locks, same execution paths, no sockets).
//!
//! The TCP client supports pipelining: [`Client::send`] returns the
//! request id immediately, [`Client::recv`] returns the next response
//! off the wire, and [`Client::call`] does a full round trip, holding
//! out-of-order responses aside until the matching id arrives.

use crate::engine::Engine;
use crate::proto::{Push, Request, Response};
use hygraph_persist::HgMutation;
use hygraph_query::incremental::apply_delta;
use hygraph_query::QueryResult;
use hygraph_types::net::{self, Frame, FrameRead, DEFAULT_MAX_FRAME_BYTES};
use hygraph_types::{HyGraphError, Result};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A standing query as the client sees it: the server-assigned id plus
/// a local materialisation of the result, advanced by applying each
/// [`Push`] the server sends for this id (in arrival order).
#[derive(Clone, Debug)]
pub struct Subscription {
    id: u64,
    snapshot: QueryResult,
    closed: Option<String>,
}

impl Subscription {
    /// The server-assigned subscription id ([`Push`] frames carry it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The locally maintained result — after applying every push for
    /// this id, byte-identical to re-running the query server-side.
    pub fn rows(&self) -> &QueryResult {
        &self.snapshot
    }

    /// Why the server dropped this subscription, once it has.
    pub fn closed(&self) -> Option<&str> {
        self.closed.as_deref()
    }

    /// Advances the local result by one push frame.
    pub fn apply(&mut self, push: &Push) -> Result<()> {
        match push {
            Push::Delta(d) => apply_delta(&mut self.snapshot, d),
            Push::Closed { reason } => {
                self.closed = Some(reason.clone());
                Ok(())
            }
        }
    }
}

/// `HYGRAPH_CLIENT_PING_MS`: idle keepalive interval for subscription
/// connections (`0`/unset disables).
fn ping_every_from_env() -> Option<Duration> {
    let ms: u64 = std::env::var("HYGRAPH_CLIENT_PING_MS")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// A blocking TCP client for the HyGraph wire protocol.
///
/// ```
/// use hygraph_server::{Backend, Client, Server};
/// use hygraph_types::net::ServerConfig;
///
/// let server = Server::serve(
///     Backend::memory(hygraph_core::HyGraph::new()),
///     &ServerConfig::new().addr("127.0.0.1:0").workers(2),
/// )?;
///
/// let mut client = Client::connect(server.local_addr())?;
/// client.ping()?;
/// let rows = client.query("MATCH (n) RETURN COUNT(n) AS n")?;
/// assert_eq!(rows.columns, vec!["n"]);
/// let stats = client.stats()?; // the server's observability snapshot
/// assert!(stats.server.admitted >= 3);
///
/// server.shutdown()?;
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame_bytes: usize,
    /// Responses read while waiting for a different request id.
    pending: HashMap<u64, Response>,
    /// Unsolicited push frames read while waiting for a reply, in
    /// arrival order (the order deltas must be applied in).
    pushes: VecDeque<(u64, Push)>,
    /// Idle keepalive interval (`HYGRAPH_CLIENT_PING_MS`); pings are
    /// only issued from the push-waiting paths, where a connection can
    /// sit idle indefinitely.
    ping_every: Option<Duration>,
    /// Request ids of in-flight keepalive pings; their pongs are
    /// swallowed so they never surface as someone else's reply.
    keepalive_ids: HashSet<u64>,
    /// Last time a frame crossed this connection in either direction.
    last_io: Instant,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            next_id: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending: HashMap::new(),
            pushes: VecDeque::new(),
            ping_every: ping_every_from_env(),
            keepalive_ids: HashSet::new(),
            last_io: Instant::now(),
        })
    }

    /// Overrides the frame-size limit (must match the server's to make
    /// use of a raised limit).
    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.max_frame_bytes = n;
        self
    }

    /// Overrides the idle keepalive interval (`0` disables), normally
    /// taken from `HYGRAPH_CLIENT_PING_MS` at connect time.
    pub fn ping_every_ms(mut self, ms: u64) -> Self {
        self.ping_every = (ms > 0).then(|| Duration::from_millis(ms));
        self
    }

    /// Sends a request without waiting for its response; returns the
    /// request id to match against [`Client::recv`]. This is the
    /// pipelining half — a load generator can keep several ids in
    /// flight per connection.
    pub fn send(&mut self, req: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = req.to_frame(id);
        net::write_frame(&mut self.stream, &frame, self.max_frame_bytes)?;
        self.last_io = Instant::now();
        Ok(id)
    }

    /// Reads one frame, mapping stream-level conditions to errors.
    fn read_frame(&mut self) -> Result<Frame> {
        match net::read_frame(&mut self.stream, self.max_frame_bytes)? {
            FrameRead::Frame(frame) => {
                self.last_io = Instant::now();
                Ok(frame)
            }
            FrameRead::Eof => Err(HyGraphError::unavailable(
                "connection closed by server".to_owned(),
            )),
            FrameRead::Corrupt(msg) => Err(HyGraphError::corrupt(format!(
                "response frame corrupt: {msg}"
            ))),
        }
    }

    /// Classifies one frame: push frames land in the push queue (and
    /// return `None`), keepalive pongs are swallowed, everything else is
    /// the `(id, response)` a reply-waiter wants.
    fn classify(&mut self, frame: Frame) -> Result<Option<(u64, Response)>> {
        if Push::is_push_kind(frame.kind) {
            let (sub_id, push) = Push::from_frame(&frame)?;
            self.pushes.push_back((sub_id, push));
            return Ok(None);
        }
        let id = frame.request_id;
        let resp = Response::from_frame(&frame)?;
        if self.keepalive_ids.remove(&id) {
            return Ok(None);
        }
        Ok(Some((id, resp)))
    }

    /// Receives the next *response* off the wire as `(request_id,
    /// response)`. Responses may arrive in any order relative to sends;
    /// unsolicited push frames encountered on the way are queued for
    /// [`Client::recv_push`] — a subscription connection is therefore
    /// NOT fifo at the frame level, and correlation happens by id and
    /// kind, never by arrival position.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        loop {
            let frame = self.read_frame()?;
            if let Some(pair) = self.classify(frame)? {
                return Ok(pair);
            }
        }
    }

    /// Full round trip: send, then receive until the matching response
    /// arrives. Out-of-order responses for other in-flight ids are held
    /// aside for their own `call`/`recv_for`. A connection-level error
    /// (request id 0, e.g. a frame the server could not CRC-verify)
    /// surfaces immediately — its real id is unknowable.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Receives until the response for `id` arrives (see
    /// [`Client::call`]).
    pub fn recv_for(&mut self, id: u64) -> Result<Response> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            if got == 0 {
                return resp
                    .into_result()
                    .map(|_| unreachable!("id-0 frames are always connection-level errors"));
            }
            self.pending.insert(got, resp);
        }
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T> {
        let resp = self.call(req)?.into_result()?;
        let kind = resp.kind();
        extract(resp).ok_or_else(|| {
            HyGraphError::corrupt(format!("unexpected response kind {kind} for request"))
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.expect(&Request::Ping, |r| {
            matches!(r, Response::Pong).then_some(())
        })
    }

    /// Executes a HyQL query and returns its rows.
    pub fn query(&mut self, text: impl Into<String>) -> Result<QueryResult> {
        self.expect(&Request::Query(text.into()), |r| match r {
            Response::Rows(rows) => Some(rows),
            _ => None,
        })
    }

    /// Executes a HyQL query pinned to the server's state as of
    /// `as_of_ms` (epoch milliseconds of transaction time) — time
    /// travel without splicing `AS OF` into the query text. Errors if
    /// the text already carries a temporal bound or the server keeps no
    /// history (`HYGRAPH_HISTORY=0`).
    pub fn query_as_of(&mut self, text: impl Into<String>, as_of_ms: i64) -> Result<QueryResult> {
        let req = Request::QueryAsOf {
            text: text.into(),
            as_of_ms,
        };
        self.expect(&req, |r| match r {
            Response::Rows(rows) => Some(rows),
            _ => None,
        })
    }

    /// Commits one mutation; returns `(lsn, 1)`.
    pub fn mutate(&mut self, m: HgMutation) -> Result<(u64, u64)> {
        self.expect(&Request::Mutate(m), |r| match r {
            Response::Committed { first_lsn, count } => Some((first_lsn, count)),
            _ => None,
        })
    }

    /// Group-commits a batch; returns `(first_lsn, count)`.
    pub fn mutate_batch(&mut self, ms: Vec<HgMutation>) -> Result<(u64, u64)> {
        self.expect(&Request::MutateBatch(ms), |r| match r {
            Response::Committed { first_lsn, count } => Some((first_lsn, count)),
            _ => None,
        })
    }

    /// Forces a checkpoint; returns its LSN.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.expect(&Request::Checkpoint, |r| match r {
            Response::CheckpointDone { lsn } => Some(lsn),
            _ => None,
        })
    }

    /// Parks a server worker for `ms` milliseconds (capped server-side
    /// at [`crate::proto::MAX_SLEEP_MS`]). Load tests use this to
    /// saturate the pool deterministically.
    pub fn sleep(&mut self, ms: u64) -> Result<()> {
        self.expect(&Request::Sleep(ms), |r| {
            matches!(r, Response::Pong).then_some(())
        })
    }

    /// Fetches the server's observability snapshot (counters, latency
    /// histograms, slow-query log). All zeros when the server runs with
    /// metrics disabled.
    pub fn stats(&mut self) -> Result<hygraph_metrics::Snapshot> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(snap) => Some(*snap),
            _ => None,
        })
    }

    /// Registers the HyQL text as a standing query on this connection.
    /// The returned [`Subscription`] holds the initial result; feed it
    /// every [`Client::recv_push`] frame carrying its id (via
    /// [`Subscription::apply`]) to track the server.
    pub fn subscribe(&mut self, text: impl Into<String>) -> Result<Subscription> {
        self.expect(&Request::Subscribe(text.into()), |r| match r {
            Response::Subscribed { sub_id, snapshot } => Some(Subscription {
                id: sub_id,
                snapshot,
                closed: None,
            }),
            _ => None,
        })
    }

    /// Removes a standing query; returns whether the id was registered
    /// on this connection. Pushes already in flight for it may still
    /// arrive afterwards and can be discarded.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<bool> {
        self.expect(&Request::Unsubscribe { sub_id }, |r| match r {
            Response::Unsubscribed { existed } => Some(existed),
            _ => None,
        })
    }

    /// Issues a tracked keepalive ping if the connection has sat idle
    /// past `HYGRAPH_CLIENT_PING_MS`. The pong is swallowed by
    /// [`Client::classify`], so keepalives are invisible to reply
    /// correlation.
    fn maybe_keepalive(&mut self) -> Result<()> {
        if let Some(every) = self.ping_every {
            if self.last_io.elapsed() >= every {
                let id = self.send(&Request::Ping)?;
                self.keepalive_ids.insert(id);
            }
        }
        Ok(())
    }

    /// Reads and classifies one frame if any data arrives within
    /// `timeout` (`None` blocks). Returns whether a frame was consumed.
    /// Responses for other requests are held in `pending`; a
    /// connection-level (id 0) error surfaces immediately.
    fn pump_one(&mut self, timeout: Option<Duration>) -> Result<bool> {
        if let Some(d) = timeout {
            // a peek under a read timeout: the frame itself is then read
            // blocking, so a frame is consumed whole or not at all
            self.stream
                .set_read_timeout(Some(d.max(Duration::from_millis(1))))?;
            let mut probe = [0u8; 1];
            let peeked = self.stream.peek(&mut probe);
            self.stream.set_read_timeout(None)?;
            match peeked {
                Ok(0) => {
                    return Err(HyGraphError::unavailable(
                        "connection closed by server".to_owned(),
                    ))
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
        let frame = self.read_frame()?;
        if let Some((id, resp)) = self.classify(frame)? {
            if id == 0 {
                // connection-level error; its real request is unknowable
                resp.into_result()?;
                return Ok(true);
            }
            self.pending.insert(id, resp);
        }
        Ok(true)
    }

    /// Waits up to `timeout` for the next unsolicited push frame,
    /// returning `Ok(None)` on expiry. Replies to in-flight requests
    /// read along the way stay available to their own
    /// [`Client::recv_for`]. Idle keepalive pings
    /// (`HYGRAPH_CLIENT_PING_MS`) are issued from here.
    pub fn recv_push_timeout(&mut self, timeout: Duration) -> Result<Option<(u64, Push)>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.pushes.pop_front() {
                return Ok(Some(p));
            }
            self.maybe_keepalive()?;
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return Ok(None);
            };
            if left.is_zero() {
                return Ok(None);
            }
            // wake at least once per ping interval so long waits still
            // emit keepalives
            let slice = match self.ping_every {
                Some(every) => left.min(every),
                None => left,
            };
            self.pump_one(Some(slice))?;
        }
    }

    /// Blocks until the next unsolicited push frame arrives (issuing
    /// idle keepalives along the way when configured).
    pub fn recv_push(&mut self) -> Result<(u64, Push)> {
        loop {
            let slice = self.ping_every.unwrap_or(Duration::from_millis(500));
            if let Some(p) = self.recv_push_timeout(slice)? {
                return Ok(p);
            }
        }
    }

    /// Closes the connection (dropping the client does the same).
    pub fn close(self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("next_id", &self.next_id)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// An in-process client over a shared [`Engine`] — the zero-copy
/// baseline the integration tests compare served results against, and
/// the way embedded callers reach a running server's state without a
/// socket.
///
/// ```
/// use hygraph_server::{Backend, Server};
/// use hygraph_types::net::ServerConfig;
///
/// let server = Server::serve(
///     Backend::memory(hygraph_core::HyGraph::new()),
///     &ServerConfig::new().addr("127.0.0.1:0").workers(2),
/// )?;
///
/// // same engine, same locks, no socket
/// let local = server.local_client();
/// let rows = local.query("MATCH (n) RETURN COUNT(n) AS n")?;
/// assert_eq!(rows.rows[0][0], hygraph_types::Value::Int(0));
/// local.with_graph(|hg| assert_eq!(hg.vertex_count(), 0));
///
/// // the engine is still shared, so shutdown hands back no backend
/// assert!(server.shutdown()?.backend.is_none());
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
///
/// A multi-shard engine serves the same API with snapshot reads:
/// queries pin the latest published epoch (never blocking behind a
/// writer) and execute scatter-gather across the shard partitioning,
/// byte-identical to a single-shard engine.
///
/// ```
/// use hygraph_persist::HgMutation;
/// use hygraph_server::{Backend, Engine, LocalClient};
/// use hygraph_types::{Interval, Label, PropertyMap};
/// use std::sync::Arc;
///
/// let engine = Engine::new(Backend::memory(hygraph_core::HyGraph::new()))
///     .with_shards(4); // pin the partitioning regardless of HYGRAPH_SHARDS
/// assert_eq!(engine.shards(), 4);
///
/// let local = LocalClient::new(Arc::new(engine));
/// local.mutate_batch(vec![
///     HgMutation::AddPgVertex {
///         labels: vec![Label::new("Station")],
///         props: PropertyMap::new(),
///         validity: Interval::ALL,
///     };
///     3
/// ])?;
/// let rows = local.query("MATCH (s:Station) RETURN COUNT(s) AS n")?;
/// assert_eq!(rows.rows[0][0], hygraph_types::Value::Int(3));
/// # Ok::<(), hygraph_types::HyGraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LocalClient {
    engine: Arc<Engine>,
}

impl LocalClient {
    /// A client over `engine` (see [`crate::Server::local_client`]).
    pub fn new(engine: Arc<Engine>) -> Self {
        Self { engine }
    }

    /// Executes a HyQL query under the engine's read lock.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.engine.query(text)
    }

    /// [`LocalClient::query`] pinned to the state as of `as_of_ms`
    /// (epoch milliseconds of transaction time).
    pub fn query_as_of(&self, text: &str, as_of_ms: i64) -> Result<QueryResult> {
        self.engine.query_as_of(text, as_of_ms)
    }

    /// Commits a batch of mutations; returns `(first_lsn, count)`.
    pub fn mutate_batch(&self, ms: Vec<HgMutation>) -> Result<(u64, u64)> {
        self.engine.mutate_batch(ms)
    }

    /// Forces a checkpoint; returns its LSN.
    pub fn checkpoint(&self) -> Result<u64> {
        self.engine.checkpoint()
    }

    /// Runs `f` against the live graph under the read lock.
    pub fn with_graph<R>(&self, f: impl FnOnce(&hygraph_core::HyGraph) -> R) -> R {
        self.engine.with_graph(f)
    }

    /// The observability snapshot, exactly as [`Client::stats`] would
    /// see it over the wire (all zeros when metrics are disabled).
    pub fn stats(&self) -> hygraph_metrics::Snapshot {
        hygraph_metrics::snapshot().unwrap_or_default()
    }

    /// Executes one protocol request exactly as a worker would (minus
    /// the queue and deadline).
    pub fn handle(&self, req: &Request) -> Response {
        self.engine.handle(req)
    }
}
