//! A bounded multi-producer/multi-consumer admission queue.
//!
//! The serving layer's backpressure point: connection readers
//! [`Bounded::try_push`] admitted requests and *never block* — a full
//! queue is an immediate, explicit overload rejection rather than
//! unbounded memory growth or a stalled reader. Workers [`Bounded::pop`]
//! jobs and block when idle. [`Bounded::close`] flips the queue into
//! drain mode for graceful shutdown: pushes are refused, pops continue
//! until the backlog is empty, then return `None` so workers exit.
//!
//! Built on `Mutex` + `Condvar` only — the workspace is offline and
//! `std::sync::mpsc` has no bounded multi-consumer flavour.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the value is handed back.
    Full(T),
    /// The queue is closed for shutdown; the value is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (see module docs).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking admission: `Err(Full)` at capacity, `Err(Closed)`
    /// after [`Bounded::close`].
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        self.try_push_with(value, || {})
    }

    /// Like [`Bounded::try_push`], but runs `on_admit` *inside* the
    /// queue's critical section when the push succeeds. A consumer
    /// pops through the same lock, so every effect of `on_admit`
    /// happens-before anything the consumer does with the item — the
    /// ordering the exact-count stats accounting relies on (a popped
    /// job's admission is always already counted). Keep the hook
    /// cheap: it holds the queue mutex.
    pub fn try_push_with(&self, value: T, on_admit: impl FnOnce()) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(value));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(value));
        }
        s.items.push_back(value);
        on_admit();
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking removal. `None` means the queue is closed *and* fully
    /// drained — the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pushes are refused from now on; queued items
    /// remain poppable (drain mode); blocked consumers wake up.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (racy; for stats only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(PushError::Closed(5)));
        // drain mode: queued items survive the close
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn admit_hook_runs_only_on_success() {
        let q = Bounded::new(1);
        let mut ran = 0;
        assert_eq!(q.try_push_with(1, || ran += 1), Ok(()));
        assert_eq!(ran, 1);
        assert_eq!(q.try_push_with(2, || ran += 1), Err(PushError::Full(2)));
        assert_eq!(ran, 1, "a refused push must not run the hook");
        q.close();
        assert_eq!(q.try_push_with(3, || ran += 1), Err(PushError::Closed(3)));
        assert_eq!(ran, 1);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // let the consumers block, then close
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(Bounded::<u64>::new(8));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut pushed = 0u64;
                    for i in 0..100 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => {
                                    pushed += v;
                                    break;
                                }
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => unreachable!(),
                            }
                        }
                    }
                    pushed
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let sent: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        let received: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(sent, received);
    }
}
