//! Shard-scaling benchmark: read **and commit** throughput under
//! concurrency as a function of the engine's shard count and snapshot
//! implementation.
//!
//! The single-shard engine serialises readers behind the writer's lock
//! — every commit stalls every query for the commit's duration. The
//! sharded engine publishes an immutable snapshot per commit and
//! readers pin the latest epoch without touching the write path, so
//! read throughput should hold (and scale) while the writer streams
//! batches. That was the PR 9 story; this harness now also measures
//! the other side of the ledger: what snapshot publication costs the
//! *writer*. Under the legacy copy-on-write maps a publication clones
//! O(graph); under the persistent-map (`pmap`) implementation it
//! clones O(structure changed by the batch), so sharded commit
//! throughput should approach the single-shard engine's (which never
//! publishes at all).
//!
//! Readers are **pinned readers**: each holds a pinned snapshot epoch
//! ([`Engine::pin_snapshot`]) across a stretch of queries, the way an
//! export or analytics scan would — so retired epochs stay alive while
//! the writer streams, exactly the workload structural sharing is for.
//!
//! Correctness is gated first: at every shard count the engine's final
//! state must be **byte identical** to the single-shard engine's, the
//! two snapshot implementations must produce byte-identical state
//! encodings, and a query corpus must answer byte-for-byte the same.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin shard_scaling
//! [--scale small|medium|large]`
//!
//! Emits `BENCH_PR10.json` in the working directory (override with
//! `BENCH_PR10_JSON=<path>`) so CI and later PRs can diff the numbers.

use hygraph_bench::Scale;
use hygraph_persist::HgMutation;
use hygraph_server::{Backend, Engine};
use hygraph_types::pmap::SnapshotImpl;
use hygraph_types::{props, Interval, Label, SeriesId, Timestamp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "MATCH (s:Station) RETURN COUNT(s) AS n",
    "MATCH (s:Station) RETURN MEAN(DELTA(s) IN [0, 600000)) AS avail ORDER BY avail DESC LIMIT 5",
    "MATCH (d:Dock) WHERE d.docks > 25 RETURN d.name AS name ORDER BY name LIMIT 10",
    "MATCH (s:Station) RETURN MAX(DELTA(s) IN [0, 300000)) AS peak ORDER BY peak LIMIT 3",
];

/// How many corpus queries a reader runs under one held pin before
/// re-pinning the latest epoch.
const PIN_HOLD_QUERIES: usize = 8;

/// The seed: `stations` ts-stations (one series each) plus a pg dock
/// twin per station.
fn seed(stations: usize) -> Vec<HgMutation> {
    let mut ms = Vec::with_capacity(3 * stations);
    for i in 0..stations {
        ms.push(HgMutation::AddSeries {
            names: vec![format!("avail-{i}")],
            rows: vec![],
        });
        ms.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Station"), Label::new(format!("Zone{}", i % 8))],
            series: SeriesId::new(i as u64),
        });
        ms.push(HgMutation::AddPgVertex {
            labels: vec![Label::new("Dock")],
            props: props! {"name" => format!("dock-{i}"), "docks" => (20 + (i % 15)) as i64},
            validity: Interval::ALL,
        });
    }
    ms
}

/// How many points each touched station receives per writer batch —
/// sized so a commit holds the single-shard write lock long enough to
/// stall its readers measurably (the contention the snapshot path
/// removes).
const POINTS_PER_BATCH: usize = 50;

/// Stations each writer batch touches: a rotating window over the
/// fleet, the way real ingest arrives (one feed reports a station
/// group, not every station at once). A bounded touch set is what
/// makes commit cost a function of the *batch* — an element's first
/// write after a publication copies that element, so a batch touching
/// the whole fleet would re-copy the whole fleet's series payloads per
/// commit under any snapshot implementation.
const STATIONS_PER_BATCH: usize = 16;

/// Writer batch `b`: a burst of availability appends for its rotating
/// station window (consecutive series ids — cross-shard by
/// construction) plus a fresh dock vertex.
fn writer_batch(b: usize, stations: usize) -> Vec<HgMutation> {
    let k = STATIONS_PER_BATCH.min(stations);
    let mut ms: Vec<HgMutation> = Vec::with_capacity(k * POINTS_PER_BATCH + 1);
    for j in 0..k {
        let i = (b * k + j) % stations;
        for p in 0..POINTS_PER_BATCH {
            ms.push(HgMutation::Append {
                series: SeriesId::new(i as u64),
                t: Timestamp::from_millis(((b * POINTS_PER_BATCH + p) as i64 + 1) * 1_000),
                row: vec![((b * 31 + i * 7 + p) % 40) as f64],
            });
        }
    }
    ms.push(HgMutation::AddPgVertex {
        labels: vec![Label::new("Dock")],
        props: props! {"name" => format!("dock-w{b}"), "docks" => (20 + (b % 15)) as i64},
        validity: Interval::ALL,
    });
    ms
}

fn build_engine(shards: usize, stations: usize) -> Arc<Engine> {
    let engine = Engine::new(Backend::memory(hygraph_core::HyGraph::new())).with_shards(shards);
    engine.mutate_batch(seed(stations)).expect("seed commits");
    Arc::new(engine)
}

/// Applies the full writer workload without concurrency — the
/// reference state for the byte-identity gate.
fn final_state(shards: usize, stations: usize, batches: usize) -> (Arc<Engine>, Vec<u8>) {
    let engine = build_engine(shards, stations);
    for b in 0..batches {
        engine
            .mutate_batch(writer_batch(b, stations))
            .expect("batch");
    }
    let bytes = engine.state_bytes();
    (engine, bytes)
}

struct Measured {
    shards: usize,
    reads: usize,
    commits: usize,
    reads_per_sec: f64,
    commits_per_sec: f64,
}

/// A fixed wall-clock window: one writer commits batches back to back
/// for the whole window while `readers` pinned-reader threads count
/// completed corpus queries, each holding a snapshot pin across
/// [`PIN_HOLD_QUERIES`] queries at a time (on single-shard engines
/// there is no snapshot plane to pin and they just query). The window,
/// not the writer, bounds the run, so shard counts with different
/// commit costs are compared on equal footing.
fn measure(shards: usize, stations: usize, window_ms: u64, readers: usize) -> Measured {
    let engine = build_engine(shards, stations);
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) {
                    let pin = engine.pin_snapshot();
                    for _ in 0..PIN_HOLD_QUERIES {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        let q = QUERIES[(r + reads) % QUERIES.len()];
                        engine.query(q).expect("corpus query");
                        reads += 1;
                    }
                    drop(pin);
                }
                reads
            })
        })
        .collect();
    let writer = {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut commits = 0usize;
            while !done.load(Ordering::Acquire) {
                engine
                    .mutate_batch(writer_batch(commits, stations))
                    .expect("batch");
                commits += 1;
            }
            commits
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(window_ms));
    done.store(true, Ordering::Release);
    let commits = writer.join().unwrap();
    let reads: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let secs = window_ms as f64 / 1000.0;
    Measured {
        shards,
        reads,
        commits,
        reads_per_sec: reads as f64 / secs,
        commits_per_sec: commits as f64 / secs,
    }
}

/// One snapshot implementation's full timing sweep.
fn sweep(
    label: &str,
    shard_counts: &[usize],
    stations: usize,
    window_ms: u64,
    readers: usize,
) -> Vec<Measured> {
    println!(
        "\n[{label}] {:>7} {:>10} {:>10} {:>14} {:>14}",
        "shards", "reads", "commits", "reads/sec", "commits/sec"
    );
    shard_counts
        .iter()
        .map(|&n| {
            let m = measure(n, stations, window_ms, readers);
            println!(
                "[{label}] {:>7} {:>10} {:>10} {:>14.0} {:>14.1}",
                m.shards, m.reads, m.commits, m.reads_per_sec, m.commits_per_sec
            );
            m
        })
        .collect()
}

fn json_rows(rows: &[Measured]) -> String {
    rows.iter()
        .map(|m| {
            format!(
                "{{\"shards\": {}, \"reads\": {}, \"commits\": {}, \
                 \"reads_per_sec\": {:.2}, \"commits_per_sec\": {:.2}}}",
                m.shards, m.reads, m.commits, m.reads_per_sec, m.commits_per_sec
            )
        })
        .collect::<Vec<_>>()
        .join(",\n  ")
}

fn main() {
    let scale = Scale::from_args();
    // Scale grows the *graph width* (station count), not just the
    // window: commit cost under copy-on-write is O(graph), so the
    // publication tax the persistent maps remove only becomes visible
    // once the interior maps dwarf the per-batch touch set.
    // Short windows with few readers make the multi-vs-single read
    // comparison a coin flip on small hosts, so every scale keeps the
    // 3-reader / 2 s measurement geometry and scales the equivalence
    // prework (batches) and, at large, the fleet and window.
    let (stations, batches, window_ms, readers) = match scale {
        Scale::Small => (1_024, 10, 2_000u64, 3),
        Scale::Medium => (1_024, 40, 2_000u64, 3),
        Scale::Large => (4_096, 60, 4_000u64, 4),
    };
    let shard_counts = [1usize, 2, 4, 8];
    println!(
        "shard-scaling benchmark — {stations} stations, {window_ms} ms windows, \
         {readers} pinned readers, shard counts {shard_counts:?}"
    );

    // ---- equivalence gates -------------------------------------------
    // every shard count byte-identical to single-shard, and the corpus
    // answers identically — under the default (pmap) implementation
    SnapshotImpl::Pmap.install();
    let (single, single_bytes) = final_state(1, stations, batches);
    for &n in &shard_counts[1..] {
        let (engine, bytes) = final_state(n, stations, batches);
        assert_eq!(
            bytes, single_bytes,
            "{n}-shard final state is not byte-identical to single-shard"
        );
        for q in QUERIES {
            let got = engine.query(q).expect("sharded query");
            let want = single.query(q).expect("single-shard query");
            assert_eq!(got, want, "query diverges at {n} shards: {q}");
        }
    }
    // the legacy copy-on-write implementation must produce the same
    // canonical bytes — checkpoints are interchangeable between impls
    SnapshotImpl::Cow.install();
    let (_, cow_bytes) = final_state(1, stations, batches);
    assert_eq!(
        cow_bytes, single_bytes,
        "cow- and pmap-built states must encode byte-identically"
    );
    println!(
        "equivalence gates passed: {} shard counts byte-identical, {} queries agree, \
         cow == pmap encodings",
        shard_counts.len() - 1,
        QUERIES.len()
    );

    // ---- timing ------------------------------------------------------
    let cow = sweep("cow ", &shard_counts, stations, window_ms, readers);
    SnapshotImpl::Pmap.install();
    let pmap = sweep("pmap", &shard_counts, stations, window_ms, readers);
    SnapshotImpl::clear_install();

    let best_multi = |rows: &[Measured]| -> (usize, f64) {
        rows[1..]
            .iter()
            .max_by(|a, b| a.reads_per_sec.total_cmp(&b.reads_per_sec))
            .map(|m| (m.shards, m.reads_per_sec))
            .expect("multi-shard rows")
    };

    // PR 9's architecture gate, in the configuration PR 9 shipped and
    // gated (the cow collections): under a concurrent writer, snapshot
    // readers must at least hold the single-shard read rate — they no
    // longer queue behind the commit lock.
    let (cow_best_shards, cow_best_reads) = best_multi(&cow);
    println!(
        "\nbest multi-shard reads [cow ]: {cow_best_shards} shards at {cow_best_reads:.0} \
         reads/sec ({:.2}x single-shard)",
        cow_best_reads / cow[0].reads_per_sec
    );
    assert!(
        cow_best_reads >= cow[0].reads_per_sec,
        "sharded snapshot reads fell below the single-shard rate: \
         {cow_best_reads:.0} < {:.0} reads/sec",
        cow[0].reads_per_sec
    );

    // The shipped default (pmap) gets a wide parity band rather than
    // the strict bar: persistent-map scans are pointer-chasing where
    // the cow BTreeMaps are cache-dense, and on a host with no spare
    // core the writer's path-copy allocation churn shares every cache
    // level with the readers — observed single-core ratios swing
    // 0.8–1.0x run to run. The 0.7 floor is a regression tripwire (a
    // broken trie craters this to ~0.2x), not a performance claim; the
    // cross-impl read tax is reported for the JSON but not gated.
    let (pmap_best_shards, pmap_best_reads) = best_multi(&pmap);
    println!(
        "best multi-shard reads [pmap]: {pmap_best_shards} shards at {pmap_best_reads:.0} \
         reads/sec ({:.2}x single-shard, {:.2}x cow reads)",
        pmap_best_reads / pmap[0].reads_per_sec,
        pmap_best_reads / cow_best_reads
    );
    assert!(
        pmap_best_reads >= 0.7 * pmap[0].reads_per_sec,
        "pmap snapshot reads fell below the single-shard parity band: \
         {pmap_best_reads:.0} < 0.7x {:.0} reads/sec",
        pmap[0].reads_per_sec
    );

    // PR 10's gate: structural sharing must make snapshot publication
    // cheap enough that the 8-shard engine commits at ≥ 0.75x the
    // single-shard rate under pinned readers — the cow implementation
    // pays an O(graph) map clone per publication and sits far below
    // that, which is the second assertion: pmap at least doubles cow's
    // 8-shard commit rate.
    let single_commit_rate = pmap[0].commits_per_sec;
    let eight = pmap.iter().find(|m| m.shards == 8).expect("8-shard row");
    let cow_eight = cow.iter().find(|m| m.shards == 8).expect("8-shard row");
    println!(
        "8-shard commit throughput under {readers} pinned readers: \
         pmap {:.1}/sec ({:.2}x single-shard), cow {:.1}/sec ({:.2}x)",
        eight.commits_per_sec,
        eight.commits_per_sec / single_commit_rate,
        cow_eight.commits_per_sec,
        cow_eight.commits_per_sec / single_commit_rate
    );
    assert!(
        eight.commits_per_sec >= 0.75 * single_commit_rate,
        "structural sharing failed the commit-cost gate: 8-shard commits at \
         {:.1}/sec < 0.75x single-shard {:.1}/sec",
        eight.commits_per_sec,
        single_commit_rate
    );
    assert!(
        eight.commits_per_sec >= 2.0 * cow_eight.commits_per_sec,
        "structural sharing failed the publication-tax gate: pmap 8-shard \
         commits at {:.1}/sec < 2x cow {:.1}/sec",
        eight.commits_per_sec,
        cow_eight.commits_per_sec
    );

    let json = format!(
        "{{\n\"bench\": \"shard_scaling\",\n\"scale\": \"{scale:?}\",\n\"stations\": {stations},\n\
         \"window_ms\": {window_ms},\n\"readers\": {readers},\n\
         \"pin_hold_queries\": {PIN_HOLD_QUERIES},\n\
         \"rows_cow\": [\n  {}\n],\n\"rows_pmap\": [\n  {}\n]\n}}\n",
        json_rows(&cow),
        json_rows(&pmap),
    );
    let path = std::env::var("BENCH_PR10_JSON").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
