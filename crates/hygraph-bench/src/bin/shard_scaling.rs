//! Shard-scaling benchmark: read throughput under a concurrent writer
//! as a function of the engine's shard count.
//!
//! The single-shard engine serialises readers behind the writer's lock
//! — every commit stalls every query for the commit's duration. The
//! sharded engine publishes an immutable snapshot per commit and
//! readers pin the latest epoch without touching the write path, so
//! read throughput should hold (and scale) while the writer streams
//! batches. This harness measures exactly that: for each shard count
//! it replays the same seed, starts one writer pushing fixed-size
//! append/vertex batches, and counts how many queries N reader threads
//! complete before the writer finishes.
//!
//! Correctness is gated first: at every shard count the engine's final
//! state must be **byte identical** to the single-shard engine's, and
//! a query corpus must answer byte-for-byte the same on both.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin shard_scaling
//! [--scale small|medium|large]`
//!
//! Emits `BENCH_PR9.json` in the working directory (override with
//! `BENCH_PR9_JSON=<path>`) so CI and later PRs can diff the numbers.

use hygraph_bench::Scale;
use hygraph_persist::HgMutation;
use hygraph_server::{Backend, Engine};
use hygraph_types::{props, Interval, Label, SeriesId, Timestamp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "MATCH (s:Station) RETURN COUNT(s) AS n",
    "MATCH (s:Station) RETURN MEAN(DELTA(s) IN [0, 600000)) AS avail ORDER BY avail DESC LIMIT 5",
    "MATCH (d:Dock) WHERE d.docks > 25 RETURN d.name AS name ORDER BY name LIMIT 10",
    "MATCH (s:Station) RETURN MAX(DELTA(s) IN [0, 300000)) AS peak ORDER BY peak LIMIT 3",
];

/// The seed: `stations` ts-stations (one series each) plus a pg dock
/// twin per station.
fn seed(stations: usize) -> Vec<HgMutation> {
    let mut ms = Vec::with_capacity(3 * stations);
    for i in 0..stations {
        ms.push(HgMutation::AddSeries {
            names: vec![format!("avail-{i}")],
            rows: vec![],
        });
        ms.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Station"), Label::new(format!("Zone{}", i % 8))],
            series: SeriesId::new(i as u64),
        });
        ms.push(HgMutation::AddPgVertex {
            labels: vec![Label::new("Dock")],
            props: props! {"name" => format!("dock-{i}"), "docks" => (20 + (i % 15)) as i64},
            validity: Interval::ALL,
        });
    }
    ms
}

/// How many points each station receives per writer batch — sized so
/// a commit holds the single-shard write lock long enough to stall its
/// readers measurably (the contention the snapshot path removes).
const POINTS_PER_BATCH: usize = 50;

/// Writer batch `b`: a burst of availability appends per station
/// (cross-shard by construction — series ids are dense) plus a fresh
/// dock vertex.
fn writer_batch(b: usize, stations: usize) -> Vec<HgMutation> {
    let mut ms: Vec<HgMutation> = Vec::with_capacity(stations * POINTS_PER_BATCH + 1);
    for i in 0..stations {
        for p in 0..POINTS_PER_BATCH {
            ms.push(HgMutation::Append {
                series: SeriesId::new(i as u64),
                t: Timestamp::from_millis(((b * POINTS_PER_BATCH + p) as i64 + 1) * 1_000),
                row: vec![((b * 31 + i * 7 + p) % 40) as f64],
            });
        }
    }
    ms.push(HgMutation::AddPgVertex {
        labels: vec![Label::new("Dock")],
        props: props! {"name" => format!("dock-w{b}"), "docks" => (20 + (b % 15)) as i64},
        validity: Interval::ALL,
    });
    ms
}

fn build_engine(shards: usize, stations: usize) -> Arc<Engine> {
    let engine = Engine::new(Backend::memory(hygraph_core::HyGraph::new())).with_shards(shards);
    engine.mutate_batch(seed(stations)).expect("seed commits");
    Arc::new(engine)
}

/// Applies the full writer workload without concurrency — the
/// reference state for the byte-identity gate.
fn final_state(shards: usize, stations: usize, batches: usize) -> (Arc<Engine>, Vec<u8>) {
    let engine = build_engine(shards, stations);
    for b in 0..batches {
        engine
            .mutate_batch(writer_batch(b, stations))
            .expect("batch");
    }
    let bytes = engine.state_bytes();
    (engine, bytes)
}

struct Measured {
    shards: usize,
    reads: usize,
    commits: usize,
    reads_per_sec: f64,
}

/// A fixed wall-clock window: one writer commits batches back to back
/// for the whole window while `readers` threads count completed corpus
/// queries. The window, not the writer, bounds the run, so shard
/// counts with different commit costs are compared on equal footing.
fn measure(shards: usize, stations: usize, window_ms: u64, readers: usize) -> Measured {
    let engine = build_engine(shards, stations);
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) {
                    let q = QUERIES[(r + reads) % QUERIES.len()];
                    engine.query(q).expect("corpus query");
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    let writer = {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut commits = 0usize;
            while !done.load(Ordering::Acquire) {
                engine
                    .mutate_batch(writer_batch(commits, stations))
                    .expect("batch");
                commits += 1;
            }
            commits
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(window_ms));
    done.store(true, Ordering::Release);
    let commits = writer.join().unwrap();
    let reads: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    Measured {
        shards,
        reads,
        commits,
        reads_per_sec: reads as f64 / (window_ms as f64 / 1000.0),
    }
}

fn main() {
    let scale = Scale::from_args();
    let (stations, batches, window_ms, readers) = match scale {
        Scale::Small => (64, 20, 800u64, 2),
        Scale::Medium => (128, 40, 2_000u64, 3),
        Scale::Large => (256, 60, 4_000u64, 4),
    };
    let shard_counts = [1usize, 2, 4, 8];
    println!(
        "shard-scaling benchmark — {stations} stations, {window_ms} ms windows, \
         {readers} readers, shard counts {shard_counts:?}"
    );

    // ---- equivalence gate --------------------------------------------
    let (single, single_bytes) = final_state(1, stations, batches);
    for &n in &shard_counts[1..] {
        let (engine, bytes) = final_state(n, stations, batches);
        assert_eq!(
            bytes, single_bytes,
            "{n}-shard final state is not byte-identical to single-shard"
        );
        for q in QUERIES {
            let got = engine.query(q).expect("sharded query");
            let want = single.query(q).expect("single-shard query");
            assert_eq!(got, want, "query diverges at {n} shards: {q}");
        }
    }
    println!(
        "equivalence gate passed: {} shard counts byte-identical, {} queries agree\n",
        shard_counts.len() - 1,
        QUERIES.len()
    );

    // ---- timing ------------------------------------------------------
    println!(
        "{:>7} {:>10} {:>10} {:>14}",
        "shards", "reads", "commits", "reads/sec"
    );
    let record: Vec<Measured> = shard_counts
        .iter()
        .map(|&n| {
            let m = measure(n, stations, window_ms, readers);
            println!(
                "{:>7} {:>10} {:>10} {:>14.0}",
                m.shards, m.reads, m.commits, m.reads_per_sec
            );
            m
        })
        .collect();

    // the point of the refactor: under a concurrent writer, snapshot
    // readers must at least hold the single-shard read rate (they no
    // longer queue behind the commit lock)
    let single_rate = record[0].reads_per_sec;
    let best = record[1..]
        .iter()
        .max_by(|a, b| a.reads_per_sec.total_cmp(&b.reads_per_sec))
        .expect("multi-shard rows");
    println!(
        "\nbest multi-shard: {} shards at {:.0} reads/sec ({:.2}x single-shard)",
        best.shards,
        best.reads_per_sec,
        best.reads_per_sec / single_rate
    );
    assert!(
        best.reads_per_sec >= single_rate,
        "sharded snapshot reads fell below the single-shard rate: {:.0} < {:.0} reads/sec",
        best.reads_per_sec,
        single_rate
    );

    let rows = record
        .iter()
        .map(|m| {
            format!(
                "{{\"shards\": {}, \"reads\": {}, \"commits\": {}, \"reads_per_sec\": {:.2}}}",
                m.shards, m.reads, m.commits, m.reads_per_sec
            )
        })
        .collect::<Vec<_>>()
        .join(",\n  ");
    let json = format!(
        "{{\n\"bench\": \"shard_scaling\",\n\"scale\": \"{scale:?}\",\n\"stations\": {stations},\n\
         \"window_ms\": {window_ms},\n\"readers\": {readers},\n\"rows\": [\n  {rows}\n]\n}}\n"
    );
    let path = std::env::var("BENCH_PR9_JSON").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
