//! Standing-query maintenance benchmark: the `hygraph-sub` registry's
//! routed incremental delta push against the naive standing-query
//! server — re-execute every registered query after every commit and
//! diff.
//!
//! The corpus is a User/Card population with one spend series per card;
//! the registered standing queries are a mix of incremental-mode
//! threshold filters over `User`, never-routed `Station` queries (the
//! inverted label index should make these free), and a couple of
//! rerun-mode aggregates. The mutation stream interleaves vertex adds,
//! edge adds, and series appends — one commit each, the worst case for
//! a per-commit maintenance cost.
//!
//! Every run is equivalence-gated before timing: the delta-maintained
//! snapshot of every subscription must be byte-identical to the
//! re-execute-and-diff baseline after **every** commit in the stream.
//!
//! Emits `BENCH_PR7.json` (override with `BENCH_PR7_JSON=<path>`); the
//! ≥5x speedup gate is enforced at medium scale and above.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin sub_push [--scale small|medium|large]`

use hygraph_bench::Scale;
use hygraph_core::{HyGraph, HyGraphBuilder};
use hygraph_persist::{Durable, HgMutation};
use hygraph_query::incremental::{apply_delta, diff_rows, Delta};
use hygraph_query::{execute_planned, plan_query, QueryResult};
use hygraph_sub::{DeltaSink, SubConfig, SubscriptionRegistry};
use hygraph_ts::TimeSeries;
use hygraph_types::bytes::ByteWriter;
use hygraph_types::parallel::ExecMode;
use hygraph_types::{props, Duration, Interval, Label, SeriesId, Timestamp, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A sink that only counts: the cheapest possible consumer, so timing
/// measures maintenance cost, not delivery.
#[derive(Default)]
struct CountingSink {
    pushed: AtomicU64,
}

impl DeltaSink for CountingSink {
    fn push_delta(&self, _sub_id: u64, _delta: &Delta) -> bool {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        true
    }
    fn close(&self, sub_id: u64, reason: &str) {
        panic!("no subscription may be dropped in this workload: {sub_id} {reason}");
    }
}

/// A sink that records deltas for the equivalence gate.
#[derive(Default)]
struct CollectingSink {
    deltas: Mutex<Vec<(u64, Delta)>>,
}

impl DeltaSink for CollectingSink {
    fn push_delta(&self, sub_id: u64, delta: &Delta) -> bool {
        self.deltas.lock().unwrap().push((sub_id, delta.clone()));
        true
    }
    fn close(&self, sub_id: u64, reason: &str) {
        panic!("no subscription may be dropped in this workload: {sub_id} {reason}");
    }
}

/// `users` User vertices (each with a Card bound to its own spend
/// series and a USES edge), plus a handful of Stations no query in the
/// mutation stream ever touches.
fn corpus(users: usize) -> HyGraph {
    let spend = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 24, |i| {
        (i % 13) as f64
    });
    let mut b = HyGraphBuilder::new();
    for u in 0..users {
        let series = format!("spend-{u}");
        b = b
            .univariate(&series, &spend)
            .pg_vertex(
                &format!("u{u}"),
                ["User"],
                props! {"name" => format!("user-{u}"), "age" => (u % 77) as i64},
            )
            .ts_vertex(&format!("c{u}"), ["Card"], &series)
            .pg_edge(
                None,
                &format!("u{u}"),
                &format!("c{u}"),
                ["USES"],
                props! {},
            );
    }
    for s in 0..8 {
        b = b.pg_vertex(
            &format!("s{s}"),
            ["Station"],
            props! {"name" => format!("dock-{s}")},
        );
    }
    b.build().unwrap().hygraph
}

/// The registered standing queries: `subs` of them, round-robin over
/// incremental User filters (distinct thresholds → distinct plan
/// fingerprints), never-routed Station lookups, and rerun-mode
/// aggregates.
fn standing_queries(subs: usize) -> Vec<String> {
    (0..subs)
        .map(|i| match i % 4 {
            0 | 1 => format!(
                "MATCH (u:User) WHERE u.age > {} RETURN u.name AS name",
                (i * 7) % 70
            ),
            2 => "MATCH (s:Station) RETURN s.name AS name".to_string(),
            _ => format!(
                "MATCH (u:User) WHERE u.age > {} RETURN COUNT(u) AS n",
                (i * 5) % 60
            ),
        })
        .collect()
}

/// The commit stream: interleaved single-mutation commits (vertex add /
/// edge add / append), the per-commit worst case. `base_users` sizes
/// the pre-existing id space.
fn mutation_stream(commits: usize, base_users: usize) -> Vec<HgMutation> {
    (0..commits)
        .map(|i| match i % 3 {
            0 => HgMutation::AddPgVertex {
                labels: vec![Label::new("User")],
                props: props! {
                    "name" => format!("new-{i}"),
                    "age" => ((i * 11) % 77) as i64
                },
                validity: Interval::ALL,
            },
            1 => HgMutation::AddPgEdge {
                // src: one of the seeded users; dst: its card
                src: VertexId::from(((i * 3) % base_users) * 2),
                dst: VertexId::from(((i * 3) % base_users) * 2 + 1),
                labels: vec![Label::new("KNOWS")],
                props: props! {},
                validity: Interval::ALL,
            },
            _ => HgMutation::Append {
                series: SeriesId::new(((i * 5) % base_users) as u64),
                t: Timestamp::from_millis(1_000 + i as i64),
                row: vec![(i % 9) as f64],
            },
        })
        .collect()
}

fn encoded(r: &QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

fn apply_one(hg: &mut HyGraph, m: &HgMutation) -> bool {
    hg.apply(m).is_err()
}

/// Runs the registry path over the stream; returns elapsed ms.
fn run_delta_path(
    base: &HyGraph,
    queries: &[String],
    stream: &[HgMutation],
    sink: Arc<dyn DeltaSink>,
) -> (SubscriptionRegistry, f64) {
    let mut hg = base.clone();
    let reg = SubscriptionRegistry::new(SubConfig::default().max_subscriptions(queries.len()));
    for q in queries {
        reg.subscribe(&hg, q, 1, sink.clone()).expect("subscribe");
    }
    let t0 = Instant::now();
    for m in stream {
        let pre_v = hg.topology().vertex_capacity();
        let pre_e = hg.topology().edge_capacity();
        let failed = apply_one(&mut hg, m);
        reg.on_commit(&hg, std::slice::from_ref(m), pre_v, pre_e, failed);
    }
    (reg, t0.elapsed().as_secs_f64() * 1e3)
}

/// The naive baseline: after every commit, re-execute every standing
/// query and diff against its previous rows. Returns the final rows
/// per query and elapsed ms.
fn run_rerun_path(
    base: &HyGraph,
    queries: &[String],
    stream: &[HgMutation],
) -> (Vec<QueryResult>, f64, u64) {
    let mut hg = base.clone();
    let planned: Vec<_> = queries
        .iter()
        .map(|q| {
            let parsed = hygraph_query::parser::parse(q).expect("parse");
            plan_query(&parsed).expect("plan")
        })
        .collect();
    let mut rows: Vec<QueryResult> = planned
        .iter()
        .map(|p| execute_planned(&hg, p, ExecMode::Auto).expect("execute"))
        .collect();
    let mut pushed = 0u64;
    let t0 = Instant::now();
    for m in stream {
        apply_one(&mut hg, m);
        for (p, prev) in planned.iter().zip(rows.iter_mut()) {
            let next = execute_planned(&hg, p, ExecMode::Auto).expect("execute");
            let delta = diff_rows(&prev.rows, &next.rows);
            if !delta.is_empty() {
                pushed += 1;
            }
            *prev = next;
        }
    }
    (rows, t0.elapsed().as_secs_f64() * 1e3, pushed)
}

fn main() {
    let scale = Scale::from_args();
    let (users, subs, commits, runs) = match scale {
        Scale::Small => (150, 16, 60, 3),
        Scale::Medium => (1_500, 64, 300, 5),
        Scale::Large => (6_000, 128, 600, 5),
    };
    println!(
        "sub_push benchmark — {users} users, {subs} standing queries, \
         {commits} single-mutation commits, {runs} runs/path\n"
    );

    let base = corpus(users);
    let queries = standing_queries(subs);
    let stream = mutation_stream(commits, users);

    // ---- equivalence gate: delta-maintained snapshots must equal the
    // re-execute-and-diff baseline after every single commit ----------
    {
        let mut hg = base.clone();
        let sink = Arc::new(CollectingSink::default());
        let reg = SubscriptionRegistry::new(SubConfig::default().max_subscriptions(subs));
        let mut subs_state: Vec<(u64, QueryResult)> = queries
            .iter()
            .map(|q| {
                let (id, snap) = reg.subscribe(&hg, q, 1, sink.clone()).expect("subscribe");
                (id, snap)
            })
            .collect();
        let planned: Vec<_> = queries
            .iter()
            .map(|q| plan_query(&hygraph_query::parser::parse(q).expect("parse")).expect("plan"))
            .collect();
        for (i, m) in stream.iter().enumerate() {
            let pre_v = hg.topology().vertex_capacity();
            let pre_e = hg.topology().edge_capacity();
            let failed = apply_one(&mut hg, m);
            reg.on_commit(&hg, std::slice::from_ref(m), pre_v, pre_e, failed);
            for (sub_id, delta) in sink.deltas.lock().unwrap().drain(..) {
                let (_, snap) = subs_state
                    .iter_mut()
                    .find(|(id, _)| *id == sub_id)
                    .expect("unknown sub");
                apply_delta(snap, &delta).expect("apply_delta");
            }
            for ((_, snap), p) in subs_state.iter().zip(planned.iter()) {
                let fresh = execute_planned(&hg, p, ExecMode::Auto).expect("execute");
                assert_eq!(
                    encoded(snap),
                    encoded(&fresh),
                    "delta-maintained snapshot diverged at commit {i}"
                );
            }
        }
        println!(
            "equivalence gate passed: {subs} subscriptions byte-identical to \
             re-execution after each of {commits} commits\n"
        );
    }

    // ---- timing ------------------------------------------------------
    let mut delta_samples = Vec::new();
    let mut rerun_samples = Vec::new();
    let mut deltas_pushed = 0u64;
    let mut baseline_pushed = 0u64;
    for _ in 0..runs {
        let sink = Arc::new(CountingSink::default());
        let (_reg, ms) = run_delta_path(&base, &queries, &stream, sink.clone());
        deltas_pushed = sink.pushed.load(Ordering::Relaxed);
        delta_samples.push(ms);

        let (_rows, ms, pushed) = run_rerun_path(&base, &queries, &stream);
        baseline_pushed = pushed;
        rerun_samples.push(ms);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (delta_ms, rerun_ms) = (mean(&delta_samples), mean(&rerun_samples));
    let speedup = rerun_ms / delta_ms.max(1e-9);
    let per_commit_us = delta_ms * 1e3 / commits as f64;
    println!("{:<22} {:>12} {:>16}", "path", "total ms", "per-commit µs");
    println!(
        "{:<22} {:>12.2} {:>16.2}",
        "delta push", delta_ms, per_commit_us
    );
    println!(
        "{:<22} {:>12.2} {:>16.2}",
        "re-execute + diff",
        rerun_ms,
        rerun_ms * 1e3 / commits as f64
    );
    println!(
        "\nspeedup {speedup:.2}x  ({deltas_pushed} deltas pushed vs {baseline_pushed} \
         non-empty diffs in the baseline)"
    );

    if matches!(scale, Scale::Small) {
        if speedup < 5.0 {
            eprintln!(
                "warning: {speedup:.2}x below the 5x gate at smoke scale \
                 (expected — the corpus is tiny); the gate is enforced at medium+"
            );
        }
    } else {
        assert!(
            speedup >= 5.0,
            "incrementality gate: expected >= 5x over re-execute-per-commit, got {speedup:.2}x"
        );
    }

    let json = format!(
        "{{\n\"bench\": \"sub_push\",\n\"scale\": \"{scale:?}\",\n\"runs\": {runs},\n\
         \"users\": {users},\n\"subscriptions\": {subs},\n\"commits\": {commits},\n\
         \"delta_ms\": {delta_ms:.4},\n\"delta_per_commit_us\": {per_commit_us:.4},\n\
         \"rerun_ms\": {rerun_ms:.4},\n\"speedup\": {speedup:.3},\n\
         \"deltas_pushed\": {deltas_pushed},\n\"baseline_nonempty_diffs\": {baseline_pushed}\n}}\n"
    );
    let path = std::env::var("BENCH_PR7_JSON").unwrap_or_else(|_| "BENCH_PR7.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
