//! Columnar-compression + rollup-pyramid benchmark for the chunked TS
//! store.
//!
//! Builds the Table-1 bike corpus twice — once with `HYGRAPH_TS_COMPRESS`
//! semantics on (cold chunks sealed into delta-of-delta / Gorilla-XOR
//! blocks) and once fully plain — then runs the TS-aggregate query class
//! through three access paths per store:
//!
//! * **scan** — fold every raw value in range (the pre-chunk-summary
//!   baseline, what the all-in-graph layout is stuck with);
//! * **chunksum** — [`TsStore::summarize_naive`]: per-chunk precomputed
//!   summaries, boundary chunks scanned (the pre-pyramid path);
//! * **pyramid** — [`TsStore::summarize`]: O(F·log n) rollup-pyramid
//!   node merges plus at most two boundary-chunk decodes.
//!
//! Every query is equivalence-gated before timing: all paths on both
//! stores must agree (count/min/max exactly, sum to 1e-9 relative;
//! compressed vs plain bit-identical). Emits `BENCH_PR6.json`
//! (override with `BENCH_PR6_JSON=<path>`) including the compression
//! ratio on the datagen corpus.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin ts_compress [--scale small|medium|large]`

use hygraph_bench::{time_stats, Scale};
use hygraph_datagen::bike::{generate, BikeConfig};
use hygraph_ts::store::Summary;
use hygraph_ts::{TsOptions, TsStore};
use hygraph_types::{Duration, Interval, SeriesId, Timestamp};

/// Builds one store over the whole corpus; `compress` selects the
/// storage option, and compressing stores get the bulk-load epilogue
/// (`seal_all`) exactly like `PolyglotStore::load`.
fn build_store(avail: &[hygraph_ts::TimeSeries], compress: bool) -> TsStore {
    let mut st = TsStore::with_options(
        Duration::from_days(1),
        TsOptions::default().compress(compress),
    );
    for (i, s) in avail.iter().enumerate() {
        st.insert_series(SeriesId::new(i as u64), s);
    }
    st.seal_all();
    st
}

/// The raw-value fold baseline.
fn scan_summary(st: &TsStore, id: SeriesId, iv: &Interval) -> Summary {
    let mut acc = Summary::new();
    st.scan(id, iv, |_, v| acc.add(v));
    acc
}

fn assert_close(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.count, b.count, "{what}: count");
    if a.count > 0 {
        assert_eq!(a.min, b.min, "{what}: min");
        assert_eq!(a.max, b.max, "{what}: max");
        let scale = b.sum.abs().max(1.0);
        assert!(
            ((a.sum - b.sum) / scale).abs() < 1e-9,
            "{what}: sum {} vs {}",
            a.sum,
            b.sum
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let (stations, days, tick_mins, runs) = match scale {
        Scale::Small => (24, 14, 15, 8),
        Scale::Medium => (120, 60, 5, 20),
        Scale::Large => (300, 120, 5, 12),
    };
    let dataset = generate(BikeConfig {
        stations,
        days,
        tick: Duration::from_mins(tick_mins),
        avg_degree: 4,
        seed: 47,
    });
    let points: usize = dataset.availability.iter().map(|s| s.len()).sum();
    println!(
        "ts_compress benchmark — bike corpus: {stations} stations × {days} days @ {tick_mins}min \
         = {points} points; {runs} runs/query\n"
    );

    let compressed = build_store(&dataset.availability, true);
    let plain = build_store(&dataset.availability, false);
    let ids: Vec<SeriesId> = (0..stations as u64).map(SeriesId::new).collect();

    let stats = compressed.compression_stats();
    let ratio = stats.ratio();
    println!(
        "compression: {} sealed chunks, {} -> {} bytes ({ratio:.2}x)",
        stats.sealed_chunks, stats.raw_bytes, stats.compressed_bytes
    );
    assert!(
        ratio >= 2.0,
        "compression ratio gate: expected >= 2x on the datagen corpus, got {ratio:.2}x"
    );
    assert_eq!(plain.compression_stats().sealed_chunks, 0);

    // the TS-aggregate query class: wide windows where precomputed
    // summaries can shine; misaligned ones force boundary decodes
    let day = Duration::from_days(1);
    let (start, end) = (dataset.start, dataset.end);
    let windows: Vec<(&str, Interval)> = vec![
        ("full_history", Interval::new(start, end)),
        (
            "aligned_span",
            Interval::new(start + day, end - day), // chunk-aligned both sides
        ),
        (
            "misaligned_wide",
            // cuts through sealed chunks on both sides
            Interval::new(
                start + Duration::from_hours(5),
                end - Duration::from_hours(7),
            ),
        ),
        (
            "recent_half",
            Interval::new(
                Timestamp::from_millis((start.millis() + end.millis()) / 2 + 3_600_123),
                end,
            ),
        ),
    ];

    // equivalence gate: every path on both stores agrees per (series, window)
    for (name, iv) in &windows {
        for &id in &ids {
            let reference = scan_summary(&plain, id, iv);
            assert_close(&plain.summarize_naive(id, iv), &reference, name);
            assert_close(&plain.summarize(id, iv), &reference, name);
            assert_close(&compressed.summarize_naive(id, iv), &reference, name);
            let (c, p) = (compressed.summarize(id, iv), plain.summarize(id, iv));
            assert_close(&c, &reference, name);
            assert_eq!(
                c.sum.to_bits(),
                p.sum.to_bits(),
                "{name}: compressed and plain stores must agree bit-for-bit"
            );
        }
    }
    println!("equivalence gate passed: all paths agree on every (series, window)\n");

    println!(
        "{:<16} {:>11} {:>12} {:>11} {:>10} {:>10}",
        "window", "scan ms", "chunksum ms", "pyramid ms", "vs scan", "vs chunks"
    );
    let mut entries = Vec::new();
    let mut speedups_vs_scan = Vec::new();
    for (name, iv) in &windows {
        let warmup = (runs / 4).max(2);
        for _ in 0..warmup {
            std::hint::black_box(
                ids.iter()
                    .map(|&id| compressed.summarize(id, iv).count)
                    .sum::<u64>(),
            );
        }
        // scan and chunksum run on the plain store (scan on compressed
        // would charge decompression to the baseline); pyramid runs on
        // the compressed store — the shipped configuration
        let (scan_ms, scan_cv) = time_stats(runs, || {
            ids.iter()
                .map(|&id| scan_summary(&plain, id, iv).sum)
                .sum::<f64>()
        });
        let (chunk_ms, _) = time_stats(runs, || {
            ids.iter()
                .map(|&id| plain.summarize_naive(id, iv).sum)
                .sum::<f64>()
        });
        let (pyr_ms, pyr_cv) = time_stats(runs, || {
            ids.iter()
                .map(|&id| compressed.summarize(id, iv).sum)
                .sum::<f64>()
        });
        let vs_scan = scan_ms / pyr_ms.max(1e-9);
        let vs_chunk = chunk_ms / pyr_ms.max(1e-9);
        speedups_vs_scan.push(vs_scan);
        println!(
            "{name:<16} {scan_ms:>11.3} {chunk_ms:>12.3} {pyr_ms:>11.3} {vs_scan:>9.2}x {vs_chunk:>9.2}x"
        );
        entries.push(format!(
            "  {{\"window\": \"{name}\", \"scan_ms\": {scan_ms:.4}, \"scan_cv_pct\": {scan_cv:.1}, \
             \"chunksum_ms\": {chunk_ms:.4}, \"pyramid_ms\": {pyr_ms:.4}, \
             \"pyramid_cv_pct\": {pyr_cv:.1}, \"speedup_vs_scan\": {vs_scan:.3}, \
             \"speedup_vs_chunksum\": {vs_chunk:.3}}}"
        ));
    }

    let geo_mean = (speedups_vs_scan.iter().map(|s| s.ln()).sum::<f64>()
        / speedups_vs_scan.len().max(1) as f64)
        .exp();
    println!("\nTS-aggregate class: geometric-mean speedup (pyramid vs scan) {geo_mean:.2}x");
    if matches!(scale, Scale::Small) {
        if geo_mean < 3.0 {
            eprintln!(
                "warning: geo-mean {geo_mean:.2}x below the 3x gate at smoke scale \
                 (expected — windows are tiny); the gate is enforced at medium+"
            );
        }
    } else {
        assert!(
            geo_mean >= 3.0,
            "speedup gate: expected >= 3x geo-mean over the scan path, got {geo_mean:.2}x"
        );
    }

    let json = format!(
        "{{\n\"bench\": \"ts_compress\",\n\"scale\": \"{scale:?}\",\n\"runs\": {runs},\n\
         \"stations\": {stations},\n\"days\": {days},\n\"points\": {points},\n\
         \"sealed_chunks\": {},\n\"raw_bytes\": {},\n\"compressed_bytes\": {},\n\
         \"compression_ratio\": {ratio:.3},\n\"geo_mean_speedup_vs_scan\": {geo_mean:.3},\n\
         \"windows\": [\n{}\n]\n}}\n",
        stats.sealed_chunks,
        stats.raw_bytes,
        stats.compressed_bytes,
        entries.join(",\n")
    );
    let path = std::env::var("BENCH_PR6_JSON").unwrap_or_else(|_| "BENCH_PR6.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
