//! Time-travel benchmark: `AS OF` snapshot reconstruction latency as a
//! function of history depth, against the live-query baseline.
//!
//! The history design (base snapshot + per-commit deltas) makes a cold
//! `AS OF t` cost O(depth): decode the base once, then replay every
//! commit up to `t`. This harness measures that curve at four depths
//! (25/50/75/100 % of the retained log), the warm path (snapshot-cache
//! hit), and the live bound-free query for scale — after first gating
//! on correctness: every probed reconstruction must be **byte
//! identical** to a fresh replay of the same commit prefix, and the
//! query answered on it must match the replay's answer byte for byte.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin time_travel
//! [--scale small|medium|large]`
//!
//! Emits `BENCH_PR8.json` in the working directory (override with
//! `BENCH_PR8_JSON=<path>`) so CI and later PRs can diff the numbers.

use hygraph_bench::{time_ms, Scale};
use hygraph_core::HyGraph;
use hygraph_persist::{Durable, HgMutation};
use hygraph_query as hq;
use hygraph_temporal::{HistoryConfig, HistoryStore, SnapshotResolution};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::{props, Interval, Label, PropertyValue, SeriesId, Timestamp, Value, VertexId};

/// One commit of the workload: station churn — a new ts-station and its
/// pg-dock twin every commit, an availability append per existing
/// station every commit, and a rolling property rewrite on the previous
/// dock (the version-chain driver). Vertex ids are dense, so commit `i`
/// creates vertices `2i` (ts) and `2i + 1` (pg).
fn commit_batch(i: usize, stations: usize) -> Vec<HgMutation> {
    let mut batch = Vec::with_capacity(stations + 3);
    batch.push(HgMutation::AddSeries {
        names: vec!["availability".into()],
        rows: vec![],
    });
    batch.push(HgMutation::AddTsVertex {
        labels: vec![Label::new("Station"), Label::new(format!("Zone{}", i % 8))],
        series: SeriesId::new(i as u64),
    });
    batch.push(HgMutation::AddPgVertex {
        labels: vec![Label::new("Dock")],
        props: props! {"name" => format!("dock-{i}"), "docks" => 20i64},
        validity: Interval::ALL,
    });
    for k in 0..=i.min(stations - 1) {
        batch.push(HgMutation::Append {
            series: SeriesId::new(k as u64),
            t: Timestamp::from_millis(i as i64 * 300_000),
            row: vec![((i * 31 + k * 7) % 40) as f64],
        });
    }
    if i > 0 {
        batch.push(HgMutation::SetProperty {
            el: hygraph_core::ElementRef::Vertex(VertexId::from(2 * (i - 1) + 1)),
            key: "docks".to_owned(),
            value: PropertyValue::Static(Value::Int((20 + i % 15) as i64)),
        });
    }
    batch
}

fn state_bytes(hg: &HyGraph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    hg.encode_state(&mut w);
    w.into_bytes()
}

fn must_past(r: SnapshotResolution) -> std::sync::Arc<HyGraph> {
    match r {
        SnapshotResolution::Past(g) => g,
        SnapshotResolution::Live => panic!("probe must land in the past"),
    }
}

fn main() {
    let scale = Scale::from_args();
    let (commits, runs) = match scale {
        Scale::Small => (60, 5),
        Scale::Medium => (300, 10),
        Scale::Large => (1000, 10),
    };
    let query = "MATCH (s:Station) RETURN COUNT(s) AS n";

    // ---- build: live store + mirrored history ------------------------
    let mut live = HyGraph::new();
    let mut history = HistoryStore::new(HistoryConfig::default(), &live, 0);
    let mut batches = Vec::with_capacity(commits);
    let ((), build_ms) = time_ms(|| {
        for i in 0..commits {
            let batch = commit_batch(i, commits);
            let ts = history.allocate_ts((i as i64 + 1) * 1_000);
            for m in &batch {
                live.apply(m).expect("workload applies");
            }
            history.record_commit(ts, batch.clone());
            batches.push(batch);
        }
    });
    let timestamps = history.commit_timestamps();
    println!(
        "time-travel benchmark — {} commits, {} retained ({:.1} KiB history), built in {:.1} ms",
        commits,
        timestamps.len(),
        history.approx_bytes() as f64 / 1024.0,
        build_ms
    );

    // probe depths: 25/50/75/100 % of the retained log (the last probe
    // is pinned one commit before the tip so it stays a *past* read)
    let depth_of = |frac: f64| ((commits as f64 * frac) as usize).clamp(1, commits - 2);
    let depths: Vec<usize> = [0.25, 0.50, 0.75].iter().map(|&f| depth_of(f)).collect();
    let depths = {
        let mut d = depths;
        d.push(commits - 2); // "full depth" while still < last commit
        d
    };

    // ---- equivalence gate --------------------------------------------
    for &d in &depths {
        let ts = timestamps[d];
        let snap = must_past(history.snapshot_at(ts).expect("probe within history"));
        let mut replay = HyGraph::new();
        for batch in &batches[..=d] {
            for m in batch {
                replay.apply(m).expect("replay applies");
            }
        }
        assert_eq!(
            state_bytes(&snap),
            state_bytes(&replay),
            "AS OF {ts} is not byte-identical to a fresh replay of {} commits",
            d + 1
        );
        let got = hq::query(&snap, query).expect("as-of query");
        let want = hq::query(&replay, query).expect("replay query");
        assert_eq!(got, want, "query answers diverge at depth {d}");
    }
    println!(
        "equivalence gate passed: {} depths byte-identical to fresh replay\n",
        depths.len()
    );

    // ---- timing ------------------------------------------------------
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "probe", "depth", "cold ms", "warm ms"
    );
    let base_state = state_bytes(&HyGraph::new());
    let record: Vec<(usize, f64, f64)> = depths
        .iter()
        .map(|&d| {
            let ts = timestamps[d];
            let mut cold_ms = 0.0;
            let mut warm_ms = 0.0;
            for _ in 0..runs {
                // fresh store per run: an empty snapshot cache makes the
                // first read pay the full base-decode + replay cost
                let mut h = HistoryStore::from_parts(
                    HistoryConfig::default(),
                    base_state.clone(),
                    0,
                    timestamps
                        .iter()
                        .zip(batches.iter())
                        .map(|(&commit_ts, b)| hygraph_temporal::CommitRecord {
                            commit_ts,
                            mutations: b.clone(),
                        })
                        .collect(),
                );
                let (_, ms) = time_ms(|| must_past(h.snapshot_at(ts).expect("cold probe")));
                cold_ms += ms;
                let (_, ms) = time_ms(|| must_past(h.snapshot_at(ts).expect("warm probe")));
                warm_ms += ms;
            }
            let (cold, warm) = (cold_ms / runs as f64, warm_ms / runs as f64);
            println!(
                "{:<28} {:>10} {:>12.3} {:>12.3}",
                format!("AS OF {}", ts),
                d + 1,
                cold,
                warm
            );
            (d + 1, cold, warm)
        })
        .collect();

    // live baseline: the bound-free query on the current state
    let mut live_ms = 0.0;
    for _ in 0..runs {
        let (_, ms) = time_ms(|| hq::query(&live, query).expect("live query"));
        live_ms += ms;
    }
    let live_ms = live_ms / runs as f64;
    println!("\nlive (bound-free) query: {live_ms:.3} ms");

    // warm reads must not pay the reconstruction cost again
    let deepest = record.last().expect("at least one depth");
    assert!(
        deepest.2 <= deepest.1,
        "warm as-of slower than cold at full depth: {:.3} vs {:.3} ms",
        deepest.2,
        deepest.1
    );

    let rows = record
        .iter()
        .map(|(depth, cold, warm)| {
            format!("{{\"depth\": {depth}, \"cold_ms\": {cold:.4}, \"warm_ms\": {warm:.4}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n  ");
    let json = format!(
        "{{\n\"bench\": \"time_travel\",\n\"scale\": \"{scale:?}\",\n\"runs\": {runs},\n\
         \"commits\": {commits},\n\"history_bytes\": {},\n\"build_ms\": {build_ms:.4},\n\
         \"live_query_ms\": {live_ms:.4},\n\"as_of\": [\n  {rows}\n]\n}}\n",
        history.approx_bytes()
    );
    let path = std::env::var("BENCH_PR8_JSON").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
