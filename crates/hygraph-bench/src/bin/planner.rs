//! Planner-vs-interpreter benchmark for the plan-based HyQL pipeline.
//!
//! Runs a Table-1-shaped query set (pattern matching, pushable property
//! filters, TS aggregates, row aggregates, traversals) over the fraud
//! dataset through three execution paths:
//!
//! * **interpreter** — the legacy one-pass reference
//!   ([`hygraph_query::execute_interpreted`]);
//! * **planner (cold)** — lower → optimize → compile → execute on every
//!   call ([`hygraph_query::execute`]), i.e. what a plan-cache *miss*
//!   costs;
//! * **planner (cached)** — the [`hygraph_query::PlannedQuery`] built
//!   once and re-executed ([`hygraph_query::execute_planned`]), i.e.
//!   what a plan-cache *hit* costs.
//!
//! Every query is first checked **byte-identical** across interpreter
//! and planner — this doubles as the CI smoke test for the equivalence
//! contract. Emits `BENCH_PR5.json` in the working directory (override
//! with `BENCH_PR5_JSON=<path>`).
//!
//! Run with: `cargo run --release -p hygraph-bench --bin planner [--scale small|medium|large]`

use hygraph_bench::{time_stats, Scale};
use hygraph_datagen::fraud::{generate, FraudConfig};
use hygraph_query::{classify, execute, execute_interpreted, execute_planned, parser, plan_query};
use hygraph_types::bytes::ByteWriter;
use hygraph_types::parallel::ExecMode;

/// `(name, is_ts_aggregate, query text)` — the ts-aggregate flag marks
/// the queries the pushdown/memoization work targets.
const QUERIES: &[(&str, bool, &str)] = &[
    (
        "match_filter",
        false,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 \
         RETURN u.name AS who, t.amount AS amt ORDER BY amt DESC, who LIMIT 10",
    ),
    (
        "pushdown_eq",
        false,
        "MATCH (m:Merchant) WHERE m.plaza = 3 RETURN m.name AS name ORDER BY name",
    ),
    (
        "ts_agg_filter",
        true,
        "MATCH (u:User)-[:USES]->(c:CreditCard) \
         WHERE MEAN(DELTA(c) IN [0, 604800000)) > 60 \
         RETURN u.name AS who ORDER BY who",
    ),
    (
        "ts_agg_project",
        true,
        "MATCH (u:User)-[:USES]->(c:CreditCard) \
         RETURN u.name AS who, MAX(DELTA(c) IN [0, 1209600000)) AS peak, \
         SUM(DELTA(c) IN [0, 1209600000)) AS total ORDER BY who",
    ),
    (
        "ts_agg_fanout",
        true,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE MEAN(DELTA(c) IN [0, 604800000)) > 40 AND t.amount > 500 \
         RETURN u.name AS who, COUNT(t) AS txs ORDER BY txs DESC, who LIMIT 20",
    ),
    (
        "row_agg_having",
        false,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         RETURN m.name AS shop, COUNT(t) AS txs, SUM(t.amount) AS total \
         HAVING COUNT(t) > 5 ORDER BY total DESC LIMIT 10",
    ),
    (
        "traverse",
        false,
        "MATCH (u:User)-[*1..2]->(x) RETURN COUNT(x) AS reach",
    ),
];

fn encoded(r: &hygraph_query::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

fn main() {
    let scale = Scale::from_args();
    let (users, merchants, hours, runs) = match scale {
        Scale::Small => (40, 16, 24 * 7, 10),
        Scale::Medium => (200, 60, 24 * 14, 60),
        Scale::Large => (500, 120, 24 * 30, 40),
    };
    println!(
        "planner benchmark — fraud dataset: {users} users, {merchants} merchants, {hours}h of spending; {runs} runs/query\n"
    );
    let dataset = generate(FraudConfig {
        users,
        merchants,
        hours,
        ..Default::default()
    });
    let hg = &dataset.hygraph;

    println!(
        "{:<16} {:>6} {:>13} {:>13} {:>13} {:>9}",
        "query", "class", "interp ms", "plan-cold ms", "plan-hit ms", "speedup"
    );
    let mut entries = Vec::new();
    for &(name, is_ts_agg, text) in QUERIES {
        let q = parser::parse(text).expect("bench query parses");
        let class = format!("{:?}", classify(&q));

        // equivalence gate: the planner must reproduce the interpreter
        // byte-for-byte before its timings mean anything
        let reference = execute_interpreted(hg, &q).expect("interpreter runs");
        let planned_result = execute(hg, &q).expect("planner runs");
        assert_eq!(
            encoded(&reference),
            encoded(&planned_result),
            "planner diverges from interpreter on {name}"
        );

        // a few unmeasured warmup laps per path keep caches/allocator
        // state comparable across the three measurements
        let warmup = (runs / 10).max(2);
        for _ in 0..warmup {
            std::hint::black_box(execute_interpreted(hg, &q).unwrap().rows.len());
        }
        let (interp_ms, interp_cv) = time_stats(runs, || {
            execute_interpreted(hg, &q).unwrap().rows.len() as f64
        });
        // cold: lower + optimize + compile + execute per call
        for _ in 0..warmup {
            std::hint::black_box(execute(hg, &q).unwrap().rows.len());
        }
        let (cold_ms, _) = time_stats(runs, || execute(hg, &q).unwrap().rows.len() as f64);
        // hit: the cached PlannedQuery only pays execution
        let planned = plan_query(&q).expect("plans");
        for _ in 0..warmup {
            std::hint::black_box(
                execute_planned(hg, &planned, ExecMode::Auto)
                    .unwrap()
                    .rows
                    .len(),
            );
        }
        let (hit_ms, _) = time_stats(runs, || {
            execute_planned(hg, &planned, ExecMode::Auto)
                .unwrap()
                .rows
                .len() as f64
        });

        let speedup = interp_ms / hit_ms.max(1e-9);
        println!(
            "{name:<16} {:>6} {interp_ms:>13.3} {cold_ms:>13.3} {hit_ms:>13.3} {speedup:>8.2}x",
            &class[..2.min(class.len())]
        );
        entries.push(format!(
            "  {{\"query\": \"{name}\", \"class\": \"{class}\", \"ts_aggregate\": {is_ts_agg}, \
             \"interpreter_ms\": {interp_ms:.4}, \"interpreter_cv_pct\": {interp_cv:.1}, \
             \"planner_cold_ms\": {cold_ms:.4}, \"planner_cached_ms\": {hit_ms:.4}, \
             \"speedup_cached\": {speedup:.3}}}"
        ));

        // a cache hit can never be dearer than a cold plan by more than
        // noise: the hit path is a strict subset of the cold path
        if cold_ms < hit_ms * 0.5 {
            eprintln!(
                "warning: {name}: cached execution ({hit_ms:.3} ms) much slower than \
                 cold plan+execute ({cold_ms:.3} ms) — timing noise?"
            );
        }
    }

    let ts_agg_speedups: Vec<f64> = entries
        .iter()
        .zip(QUERIES)
        .filter(|(_, &(_, is_ts, _))| is_ts)
        .map(|(e, _)| {
            let pat = "\"speedup_cached\": ";
            let rest = &e[e.find(pat).unwrap() + pat.len()..];
            rest[..rest.find('}').unwrap()].parse().unwrap()
        })
        .collect();
    let geo_mean = (ts_agg_speedups.iter().map(|s| s.ln()).sum::<f64>()
        / ts_agg_speedups.len().max(1) as f64)
        .exp();
    println!("\nTS-aggregate queries: geometric-mean speedup (cached plan vs interpreter) {geo_mean:.2}x");

    let json = format!(
        "{{\n\"bench\": \"planner\",\n\"scale\": \"{scale:?}\",\n\"runs\": {runs},\n\
         \"ts_agg_geo_mean_speedup\": {geo_mean:.3},\n\"queries\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    let path = std::env::var("BENCH_PR5_JSON").unwrap_or_else(|_| "BENCH_PR5.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
