//! Closed-loop load generator for the serving layer.
//!
//! Drives a running [`hygraph_server::Server`] with N concurrent
//! clients, each issuing a configurable mix of HyQL reads and
//! time-series appends and waiting for every reply (closed loop — the
//! offered load adapts to the server, so latency numbers are honest).
//! Three modes isolate where time goes:
//!
//! 1. **local** — in-process [`hygraph_server::LocalClient`]s against
//!    the same engine: the no-socket baseline;
//! 2. **tcp-memory** — real sockets, in-memory backend: adds framing,
//!    queueing, and the worker pool;
//! 3. **tcp-durable** — real sockets over a WAL-backed store: adds
//!    group commit and fsync.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin serving
//! [--scale small|medium|large] [--clients N] [--read-pct P]`
//!
//! Emits `BENCH_PR3.json` in the working directory (override with
//! `BENCH_PR3_JSON=<path>`) so CI and later PRs can diff the numbers.

use hygraph_bench::Scale;
use hygraph_core::HyGraph;
use hygraph_persist::{DurableStore, HgMutation};
use hygraph_server::{Backend, Client, Server};
use hygraph_types::net::ServerConfig;
use hygraph_types::{Label, SeriesId, Timestamp};
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|pair| pair[0] == name)
        .map(|pair| pair[1].clone())
}

/// One station (series + ts-vertex) per client, so concurrent appends
/// never violate per-series append-only ordering.
fn seed(clients: usize) -> Vec<HgMutation> {
    let mut ms = Vec::with_capacity(clients * 2);
    for c in 0..clients {
        ms.push(HgMutation::AddSeries {
            names: vec!["availability".into()],
            rows: vec![],
        });
        ms.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Station"), Label::new(format!("Zone{}", c % 8))],
            series: SeriesId::new(c as u64),
        });
    }
    ms
}

const READ_QUERIES: &[&str] = &[
    "MATCH (s:Station) RETURN COUNT(s) AS n",
    "MATCH (s:Zone0) RETURN COUNT(s) AS n",
];

/// Whether op `i` of the deterministic per-client sequence is a read.
fn is_read(i: usize, read_pct: usize) -> bool {
    (i * 31 + 7) % 100 < read_pct
}

fn append_for(client: usize, i: usize) -> HgMutation {
    HgMutation::Append {
        series: SeriesId::new(client as u64),
        t: Timestamp::from_millis(i as i64 * 1_000),
        row: vec![((i * 13 + client * 5) % 40) as f64],
    }
}

struct ModeStats {
    throughput_ops_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    errors: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish(mut latencies: Vec<f64>, wall_s: f64, errors: usize) -> ModeStats {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ModeStats {
        throughput_ops_s: latencies.len() as f64 / wall_s.max(1e-9),
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
        errors,
    }
}

/// A generous queue and no deadline: the bench measures steady-state
/// latency, not the load-shedding path (the tests cover that).
fn bench_config() -> ServerConfig {
    ServerConfig::new()
        .addr("127.0.0.1:0")
        .queue_depth(4096)
        .req_timeout_ms(0)
}

fn run_tcp(backend: Backend, clients: usize, ops: usize, read_pct: usize) -> ModeStats {
    let server = Server::serve(backend, &bench_config()).expect("serve");
    let addr = server.local_addr();
    let mut seeder = Client::connect(addr).expect("connect seeder");
    seeder.mutate_batch(seed(clients)).expect("seed");

    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(ops);
                    let mut errors = 0usize;
                    for i in 0..ops {
                        let t = Instant::now();
                        let ok = if is_read(i, read_pct) {
                            client.query(READ_QUERIES[i % READ_QUERIES.len()]).is_ok()
                        } else {
                            client.mutate(append_for(c, i)).is_ok()
                        };
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        if !ok {
                            errors += 1;
                        }
                    }
                    (lat, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown().expect("shutdown");

    let mut latencies = Vec::with_capacity(clients * ops);
    let mut errors = 0;
    for (lat, e) in per_client {
        latencies.extend(lat);
        errors += e;
    }
    finish(latencies, wall, errors)
}

fn run_local(clients: usize, ops: usize, read_pct: usize) -> ModeStats {
    let server = Server::serve(Backend::memory(HyGraph::new()), &bench_config()).expect("serve");
    let local = server.local_client();
    local.mutate_batch(seed(clients)).expect("seed");

    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = local.clone();
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(ops);
                    let mut errors = 0usize;
                    for i in 0..ops {
                        let t = Instant::now();
                        let ok = if is_read(i, read_pct) {
                            client.query(READ_QUERIES[i % READ_QUERIES.len()]).is_ok()
                        } else {
                            client.mutate_batch(vec![append_for(c, i)]).is_ok()
                        };
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        if !ok {
                            errors += 1;
                        }
                    }
                    (lat, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown().expect("shutdown");

    let mut latencies = Vec::with_capacity(clients * ops);
    let mut errors = 0;
    for (lat, e) in per_client {
        latencies.extend(lat);
        errors += e;
    }
    finish(latencies, wall, errors)
}

fn print_mode(name: &str, s: &ModeStats) {
    println!(
        "  {name:<12} {:>9.0} ops/s   p50 {:>7.3} ms   p95 {:>7.3} ms   p99 {:>7.3} ms   errors {}",
        s.throughput_ops_s, s.p50_ms, s.p95_ms, s.p99_ms, s.errors
    );
}

fn json_mode(s: &ModeStats) -> String {
    format!(
        "{{\"throughput_ops_s\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"errors\": {}}}",
        s.throughput_ops_s, s.p50_ms, s.p95_ms, s.p99_ms, s.errors
    )
}

fn main() {
    // the serving numbers are metrics-free by default so BENCH_PR3.json
    // stays comparable across PRs; pass --metrics to measure with the
    // full observability layer live
    let with_metrics = std::env::args().any(|a| a == "--metrics");
    hygraph_metrics::install(if with_metrics {
        hygraph_metrics::MetricsConfig::default()
    } else {
        hygraph_metrics::MetricsConfig::disabled()
    });

    let scale = Scale::from_args();
    let (default_clients, ops) = match scale {
        Scale::Small => (4, 200),
        Scale::Medium => (8, 1_000),
        Scale::Large => (16, 2_500),
    };
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default_clients);
    let read_pct: usize = arg_value("--read-pct")
        .and_then(|v| v.parse().ok())
        .filter(|&p| p <= 100)
        .unwrap_or(70);

    println!("serving benchmark — {clients} closed-loop clients × {ops} ops, {read_pct}% reads");

    let local = run_local(clients, ops, read_pct);
    print_mode("local", &local);

    let tcp_memory = run_tcp(Backend::memory(HyGraph::new()), clients, ops, read_pct);
    print_mode("tcp-memory", &tcp_memory);

    let dir = std::env::temp_dir().join(format!("hygraph-bench-serving-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store: DurableStore<HyGraph> = DurableStore::open(&dir).expect("open store");
    let tcp_durable = run_tcp(Backend::durable(store), clients, ops, read_pct);
    print_mode("tcp-durable", &tcp_durable);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        (local.errors, tcp_memory.errors, tcp_durable.errors),
        (0, 0, 0),
        "the bench workload must complete without rejections"
    );

    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    };
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"scale\": \"{scale_name}\",\n  \"clients\": {clients},\n  \
         \"ops_per_client\": {ops},\n  \"read_pct\": {read_pct},\n  \"modes\": {{\n    \
         \"local\": {},\n    \"tcp_memory\": {},\n    \"tcp_durable\": {}\n  }}\n}}\n",
        json_mode(&local),
        json_mode(&tcp_memory),
        json_mode(&tcp_durable)
    );
    let path = std::env::var("BENCH_PR3_JSON").unwrap_or_else(|_| "BENCH_PR3.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("\nwrote {path}");
}
