//! Regenerates **Figure 2** of the paper: the fraud-detection running
//! example analysed the graph-only way (Listing 1) and the
//! time-series-only way (Listing 2), showing what each method sees —
//! and misses — on the exact micro-instance.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin figure2`

use hygraph_datagen::fraud;
use hygraph_query::query;
use hygraph_ts::ops::anomaly;

fn main() {
    let data = fraud::figure2_instance();
    let hg = &data.hygraph;
    println!("Figure 2 micro-instance:");
    println!(
        "  {} users, {} credit cards (ts-vertices), {} merchants, {} TX edges\n",
        data.users.len(),
        data.cards.len(),
        data.merchants.len(),
        hg.edge_count() - data.users.len() // minus USES edges
    );

    // ---- the graph-based way (Listing 1) --------------------------------
    // structural core: high-amount transactions; the full Listing-1
    // co-location/time-window logic lives in the pipeline (figure4 bin)
    // Listing-1 core in HyQL: users with >1000 transactions to at least
    // three distinct merchants (the paper's length(mrs) > 2); the
    // co-location/time-window constraint is applied by the pipeline
    let r = query(
        hg,
        "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
         WHERE t.amount > 1000 \
         RETURN u.name AS suspiciousUser, COUNT(DISTINCT m.name) AS merchants \
         HAVING COUNT(DISTINCT m.name) > 2 ORDER BY suspiciousUser",
    )
    .expect("listing 1 runs");
    println!("Listing 1 — the graph-based way:");
    print!("{}", r.render());
    println!("  → flags User 1 (real fraud) AND User 3 (bulk shopper, false positive)\n");

    // ---- the time-series way (Listing 2) ---------------------------------
    println!("Listing 2 — the time-series way (z-score outliers):");
    let mut flagged = Vec::new();
    for (i, &sid) in data.spending.iter().enumerate() {
        let s = hg
            .series(sid)
            .expect("series exists")
            .to_univariate("spending")
            .expect("spending column");
        let hits = anomaly::zscore(&s, 3.0);
        println!(
            "  User {}: {} significant peaks{}",
            i + 1,
            hits.len(),
            hits.first()
                .map(|a| format!(" (first at {}, z = {:.1})", a.time, a.score))
                .unwrap_or_default()
        );
        if !hits.is_empty() {
            flagged.push(i + 1);
        }
    }
    println!("  → flags {flagged:?}: the burst in [t5, t6) of the figure\n");

    println!(
        "isolation loses information: the graph view cannot tell User 3's routine\n\
         from fraud; the series view cannot see User 1's merchant co-location.\n\
         Run `--bin figure4` for the HyGraph pipeline that combines both."
    );
}
