//! Regenerates **Figure 3** of the paper: the state-of-the-art data
//! models (top) and the HyGraph layer (bottom), exercised as one concrete
//! operation per numbered arrow. Each line of output certifies the
//! corresponding capability exists in this implementation.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin figure3`

use hygraph_core::interfaces::{export, import};
use hygraph_core::view::HyGraphView;
use hygraph_core::{ElementRef, HyGraph};
use hygraph_datagen::random;
use hygraph_graph::{pattern::Pattern, snapshot, Direction};
use hygraph_query::hybrid;
use hygraph_ts::ops;
use hygraph_types::{props, Duration, Interval, Timestamp};

fn main() {
    let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(100_000));
    let graph = random::random_graph(300, 900, &["User", "Item"], horizon, 7);
    let series = random::seasonal(5_000, 250, 10.0, 0.0, 1.0, 7);

    // (1)/(2) operations on LG/LPG
    let mut p = Pattern::new();
    let a = p.vertex("a", ["User"]);
    let b = p.vertex("b", ["Item"]);
    p.edge(None, a, b, ["E"], Direction::Out);
    println!(
        "(1,2) LPG subgraph matching: {} (User)->(Item) edges",
        p.find_all(&graph).len()
    );

    // (3) operations on TPGs
    let snap = snapshot::snapshot(&graph, Timestamp::from_millis(50_000));
    println!(
        "(3)   TPG snapshot retrieval: {} vertices alive at t=50s",
        snap.vertex_count()
    );

    // (4) data-series operations
    let down = ops::downsample::lttb(&series, 500);
    println!(
        "(4)   series sampling: {} -> {} points (LTTB)",
        series.len(),
        down.len()
    );

    // (5) time-series operations
    let segs = ops::segment::pelt(
        &ops::downsample::bucket_mean(&series, Duration::from_secs(60)),
        None,
    );
    println!("(5)   series segmentation: {} regimes (PELT)", segs.len());

    // (6) time series -> graph
    let sensors: Vec<(String, hygraph_ts::TimeSeries)> = (0..6)
        .map(|i| {
            (
                format!("s{i}"),
                random::seasonal(400, 50, 5.0, 0.0, if i < 3 { 0.1 } else { 3.0 }, i as u64),
            )
        })
        .collect();
    let (ts_hg, _) = import::series_to_hygraph(
        &sensors,
        "Sensor",
        Some(import::SimilarityConfig {
            step: Duration::from_secs(60),
            threshold: 0.9,
            window: 10,
        }),
    )
    .expect("import runs");
    println!(
        "(6)   series-to-graph: {} sensors linked by {} similarity ts-edges",
        ts_hg.vertex_count(),
        ts_hg.edge_count()
    );

    // (7) LPG -> data series
    let hg = import::graph_to_hygraph(&graph);
    let mut p7 = Pattern::new();
    let x = p7.vertex("x", ["User"]);
    let y = p7.vertex("y", Vec::<&str>::new());
    p7.edge(Some("e"), x, y, ["E"], Direction::Out);
    let ws = export::pattern_value_series(&hg, &p7, "e", "w");
    println!(
        "(7)   LPG-to-series: pattern query emitted {} weights as a time series",
        ws.len()
    );

    // (8) LPG + time series as properties
    let mut hg8 = HyGraph::new();
    let v = hg8.add_pg_vertex(["Station"], props! {"name" => "st"});
    let sid = hg8.add_univariate_series("load", &series);
    hg8.set_property(ElementRef::Vertex(v), "load", sid)
        .expect("property set");
    println!(
        "(8)   series-as-property: station carries a {}-point load series",
        hg8.series(sid).expect("series exists").len()
    );

    // (9) operations using both models
    let reach = hybrid::correlation_reachability(
        &ts_hg,
        ts_hg.topology().vertex_ids().next().unwrap(),
        Duration::from_secs(60),
        0.7,
    );
    println!(
        "(9)   hybrid op: correlation-constrained reachability touches {} vertices",
        reach.len()
    );

    // (10) the HyGraph model: unified instance, views, validation
    let view = HyGraphView::new(&hg).with_label("User");
    println!(
        "(10)  HyGraph layer: unified instance ({} V, {} E, {} TS) with logical views ({} User vertices)",
        hg.vertex_count(),
        hg.edge_count(),
        hg.series_count(),
        view.vertex_count()
    );
    hg.validate().expect("valid");
    println!("\nall ten arrows of Figure 3 exercised ✓");
}
