//! Regenerates **Table 2** of the paper: the operator taxonomy
//! ("Time Series vs Graphs: Querying, Analysis, and ML"). For every row
//! we run *both* columns — the time-series operator and the graph
//! operator — on standard workloads, print timings, and run the hybrid
//! combination the roadmap derives from the row.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin table2 [--scale small|medium|large]`

use hygraph_bench::{time_ms, Scale};
use hygraph_core::interfaces::import::graph_to_hygraph;
use hygraph_datagen::random;
use hygraph_graph::algorithms::{community, metrics, motifs};
use hygraph_graph::pattern::{CmpOp, PropPredicate};
use hygraph_graph::{aggregate, snapshot, traverse, Direction, Pattern};
use hygraph_query::hybrid;
use hygraph_ts::ops;
use hygraph_types::{Duration, Interval, Timestamp};

fn main() {
    let scale = Scale::from_args();
    let (series_len, graph_n, graph_m) = match scale {
        Scale::Small => (20_000, 2_000, 8_000),
        Scale::Medium => (200_000, 20_000, 80_000),
        Scale::Large => (1_000_000, 50_000, 200_000),
    };
    println!(
        "Table 2 reproduction — workloads: series of {series_len} points, graph of {graph_n} vertices / {graph_m} edges\n"
    );

    let series = random::seasonal(series_len, 288, 20.0, 0.0, 2.0, 42);
    let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(1_000_000));
    let graph = random::random_graph(graph_n, graph_m, &["A", "B", "C"], horizon, 42);
    let hg = graph_to_hygraph(&graph);

    let row = |name: &str, ts_name: &str, ts_ms: f64, g_name: &str, g_ms: f64| {
        println!(
            "{:<4} {:<28} {:>10.2} ms   {:<30} {:>10.2} ms",
            name, ts_name, ts_ms, g_name, g_ms
        );
    };
    println!(
        "{:<4} {:<28} {:>13}   {:<30} {:>13}",
        "row", "time-series operator", "time", "graph operator", "time"
    );

    // Q1: subsequence matching vs subgraph matching
    let query_shape: Vec<f64> = series.values()[1000..1100].to_vec();
    let (m1, t_ts) = time_ms(|| ops::subsequence::top_k_matches(&series, &query_shape, 3));
    let (m2, t_g) = time_ms(|| {
        let mut p = Pattern::new();
        let a = p.vertex("a", ["A"]);
        let b = p.vertex("b", ["B"]);
        p.edge(Some("e"), a, b, ["E"], Direction::Out);
        p.edge_pred(0, PropPredicate::new("w", CmpOp::Gt, 5.0));
        p.find_all(&graph).len()
    });
    row("Q1", "subsequence matching", t_ts, "subgraph matching", t_g);
    std::hint::black_box((m1.len(), m2));

    // Q2: downsampling vs graph aggregation
    let (d1, t_ts) = time_ms(|| ops::downsample::lttb(&series, 1_000));
    let (d2, t_g) = time_ms(|| aggregate::group_by(&graph, aggregate::GroupBy::Labels, &["w"]));
    row(
        "Q2",
        "downsampling (LTTB)",
        t_ts,
        "graph aggregation (grouping)",
        t_g,
    );
    std::hint::black_box((d1.len(), d2.summary.vertex_count()));

    // Q3: correlation vs reachability
    let other = random::seasonal(series_len, 288, 15.0, 0.001, 3.0, 43);
    let (c1, t_ts) = time_ms(|| ops::correlate::pearson(series.values(), other.values()));
    let start = graph.vertex_ids().next().expect("non-empty graph");
    let (c2, t_g) = time_ms(|| traverse::bfs(&graph, start, traverse::Follow::Out).len());
    row(
        "Q3",
        "correlation (Pearson)",
        t_ts,
        "reachability (BFS)",
        t_g,
    );
    std::hint::black_box((c1, c2));

    // Q4: segmentation vs snapshot
    let coarse = ops::downsample::bucket_mean(&series, Duration::from_millis(60_000));
    let (s1, t_ts) = time_ms(|| ops::segment::pelt(&coarse, None).len());
    let (s2, t_g) =
        time_ms(|| snapshot::snapshot(&graph, Timestamp::from_millis(500_000)).vertex_count());
    row("Q4", "segmentation (PELT)", t_ts, "snapshot retrieval", t_g);
    std::hint::black_box((s1, s2));

    // D: anomalies vs communities
    let (a1, t_ts) = time_ms(|| {
        ops::anomaly::sliding_window(&series, Duration::from_millis(5_000), 4.0, 10).len()
    });
    let (a2, t_g) = time_ms(|| community::louvain(&graph, 10).count);
    row(
        "D",
        "anomaly detection",
        t_ts,
        "community detection (Louvain)",
        t_g,
    );
    std::hint::black_box((a1, a2));

    // PM: sequence/motif mining vs subgraph motifs
    let motif_input = ops::downsample::stride(&series, (series_len / 5_000).max(1));
    let (p1, t_ts) = time_ms(|| ops::motif::motifs(&motif_input, 50, 2).len());
    let (p2, t_g) = time_ms(|| motifs::triad_census(&graph));
    row(
        "PM",
        "motif discovery (matrix profile)",
        t_ts,
        "triangle/motif census",
        t_g,
    );
    std::hint::black_box((p1, p2.triangles));

    // E: embeddings
    let (e1, t_ts) = time_ms(|| {
        let windows: Vec<Vec<f64>> = series
            .values()
            .chunks_exact(288)
            .take(500)
            .map(<[f64]>::to_vec)
            .collect();
        ops::pca::Pca::fit(&windows, 4).map(|p| p.k())
    });
    let (e2, t_g) = time_ms(|| {
        hygraph_analytics::embedding::fastrp(
            &hg,
            hygraph_analytics::embedding::FastRpConfig {
                dim: 32,
                ..Default::default()
            },
        )
        .len()
    });
    row(
        "E",
        "PCA series embedding",
        t_ts,
        "FastRP vertex embedding",
        t_g,
    );
    std::hint::black_box((e1, e2));

    // C1: classification features
    let (f1, t_ts) = time_ms(|| ops::features::feature_vector(&series));
    let (f2, t_g) = time_ms(|| metrics::degree_histogram(&graph).len());
    row(
        "C1",
        "temporal features (FAT/trend)",
        t_ts,
        "label/degree features",
        t_g,
    );
    std::hint::black_box((f1[0], f2));

    // C2: clustering inputs
    let (k1, t_ts) = time_ms(|| {
        let words = ops::sax::frequent_words(&series, 288, 6, 4, 2).expect("valid SAX params");
        words.len()
    });
    let (k2, t_g) = time_ms(|| community::label_propagation(&graph, 10).count);
    row(
        "C2",
        "temporal-proximity grouping (SAX)",
        t_ts,
        "connectivity clustering (LPA)",
        t_g,
    );
    std::hint::black_box((k1, k2));

    // the hybrid combinations derived from the rows
    println!("\nhybrid operators (roadmap §6):");
    let fraud = hygraph_datagen::fraud::generate(hygraph_datagen::fraud::FraudConfig {
        users: 100,
        merchants: 40,
        hours: 24 * 7,
        ..Default::default()
    });
    let fh = &fraud.hygraph;
    // a fraud-burst shape: flat, 4-hour spike, flat
    let shape: Vec<f64> = (0..12)
        .map(|i| if (4..8).contains(&i) { 1500.0 } else { 40.0 })
        .collect();
    let (h1, t) = time_ms(|| {
        let mut p = Pattern::new();
        let u = p.vertex("u", ["User"]);
        let c = p.vertex("c", ["CreditCard"]);
        p.edge(None, u, c, ["USES"], Direction::Out);
        hybrid::hybrid_match(
            fh,
            &hybrid::HybridMatchSpec {
                pattern: p,
                series_var: "c".into(),
                shape,
                max_dist: 2.0,
            },
        )
        .len()
    });
    println!("  Q1 hybrid_match: {h1} structural+temporal matches in {t:.1} ms");
    let (h2, t) = time_ms(|| {
        hybrid::hybrid_aggregate(fh, Duration::from_hours(6))
            .group_series
            .len()
    });
    println!("  Q2 hybrid_aggregate: {h2} label groups with 6h series in {t:.1} ms");
    let (h3, t) = time_ms(|| {
        hybrid::correlation_reachability(fh, fraud.cards[0], Duration::from_hours(1), 0.5).len()
    });
    println!("  Q3 correlation_reachability: {h3} correlated-regime vertices in {t:.1} ms");
    let driver = fh
        .series(fraud.spending[0])
        .expect("series exists")
        .to_univariate("spending")
        .expect("column");
    let (h4, t) = time_ms(|| hybrid::segmentation_snapshots(fh, &driver, None).map(|s| s.len()));
    println!(
        "  Q4 segmentation_snapshots: {:?} regime snapshots in {t:.1} ms",
        h4.expect("runs")
    );
}
