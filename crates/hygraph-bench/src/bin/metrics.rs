//! Observability-overhead benchmark: what does instrumentation cost on
//! the hot paths, enabled and disabled?
//!
//! The metrics registry is process-global and initialise-once, so one
//! process cannot honestly measure both states. The parent re-executes
//! itself twice — `--child disabled` and `--child enabled` — and each
//! child installs its configuration before touching any instrumented
//! code, runs the measurement loops, and prints one JSON line. The
//! parent aggregates both into `BENCH_PR4.json` (override the path with
//! `BENCH_PR4_JSON=<path>`).
//!
//! Three probes, each reported as ns/op:
//!
//! * **probe** — `hygraph_metrics::get().is_some()` in a tight loop:
//!   the raw cost of the disabled-path guard (the "one branch" claim);
//! * **ts_insert** — [`hygraph_ts::TsStore::insert`], the hottest
//!   instrumented write path;
//! * **query** — a full HyQL round trip through the instrumented
//!   parse → classify → execute → slow-log pipeline.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin metrics`

use hygraph_core::HyGraph;
use hygraph_metrics::MetricsConfig;
use hygraph_ts::TsStore;
use hygraph_types::{SeriesId, Timestamp};
use std::hint::black_box;
use std::time::Instant;

const PROBE_ITERS: u64 = 50_000_000;
const INSERT_ITERS: u64 = 2_000_000;
const QUERY_ITERS: u64 = 20_000;

fn ns_per_op(total: std::time::Duration, iters: u64) -> f64 {
    total.as_nanos() as f64 / iters as f64
}

fn bench_probe() -> f64 {
    let t0 = Instant::now();
    let mut live = 0u64;
    for _ in 0..PROBE_ITERS {
        if black_box(hygraph_metrics::get().is_some()) {
            live += 1;
        }
    }
    black_box(live);
    ns_per_op(t0.elapsed(), PROBE_ITERS)
}

fn bench_ts_insert() -> f64 {
    let mut store = TsStore::new();
    let id = SeriesId::new(0);
    let t0 = Instant::now();
    for i in 0..INSERT_ITERS {
        store.insert(id, Timestamp::from_millis(i as i64), i as f64);
    }
    black_box(store.len(id));
    ns_per_op(t0.elapsed(), INSERT_ITERS)
}

fn bench_query() -> f64 {
    let mut hg = HyGraph::new();
    for _ in 0..64 {
        hg.add_pg_vertex(["Station"], hygraph_types::props! {});
    }
    let t0 = Instant::now();
    for _ in 0..QUERY_ITERS {
        let r = hygraph_query::query(&hg, "MATCH (s:Station) RETURN COUNT(s) AS n")
            .expect("bench query");
        black_box(r.rows.len());
    }
    ns_per_op(t0.elapsed(), QUERY_ITERS)
}

fn run_child(mode: &str) {
    let config = match mode {
        "disabled" => MetricsConfig::disabled(),
        "enabled" => MetricsConfig::default(),
        other => panic!("unknown --child mode {other:?}"),
    };
    assert!(
        hygraph_metrics::install(config),
        "the child must win the registry initialisation"
    );
    assert_eq!(hygraph_metrics::enabled(), mode == "enabled");
    let probe = bench_probe();
    let ts_insert = bench_ts_insert();
    let query = bench_query();
    println!(
        "{{\"mode\": \"{mode}\", \"probe_ns\": {probe:.3}, \"ts_insert_ns\": {ts_insert:.2}, \"query_ns\": {query:.1}}}"
    );
}

fn spawn_child(mode: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(["--child", mode])
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "child {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf8");
    stdout
        .lines()
        .last()
        .expect("child printed a JSON line")
        .to_owned()
}

/// Pulls `"key": <number>` out of a child's one-line JSON.
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let rest = &json[json.find(&pat).expect("field present") + pat.len()..];
    let end = rest.find([',', '}']).expect("field delimited");
    rest[..end].trim().parse().expect("numeric field")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--child") {
        run_child(&args[i + 1]);
        return;
    }

    println!("metrics overhead benchmark — disabled vs enabled (separate processes)");
    let disabled = spawn_child("disabled");
    println!("  disabled: {disabled}");
    let enabled = spawn_child("enabled");
    println!("  enabled:  {enabled}");

    let probe_disabled = field(&disabled, "probe_ns");
    let query_disabled = field(&disabled, "query_ns");
    let query_enabled = field(&enabled, "query_ns");
    let query_overhead_pct = (query_enabled - query_disabled) / query_disabled * 100.0;
    println!(
        "  disabled-path probe: {probe_disabled:.3} ns/op; query overhead when enabled: {query_overhead_pct:+.1}%"
    );
    // the "one branch" claim: the disabled probe is an atomic load plus
    // a branch — single-digit nanoseconds on any machine this runs on
    assert!(
        probe_disabled < 10.0,
        "disabled metrics probe must stay branch-cheap, measured {probe_disabled:.3} ns"
    );

    let json = format!(
        "{{\n  \"bench\": \"metrics\",\n  \"modes\": {{\n    \"disabled\": {disabled},\n    \"enabled\": {enabled}\n  }},\n  \"query_overhead_pct\": {query_overhead_pct:.2}\n}}\n"
    );
    let path = std::env::var("BENCH_PR4_JSON").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("\nwrote {path}");
}
