//! Cold-start recovery benchmark for the durable storage engine.
//!
//! Compares three ways of bringing a HyGraph instance back from disk:
//!
//! 1. **checkpoint-only** — the log was checkpointed at the tip, so
//!    recovery is one binary snapshot load;
//! 2. **checkpoint + WAL replay** — the checkpoint sits at half the
//!    workload and the tail is replayed frame by frame;
//! 3. **text reload** — the pre-persist baseline: parse the
//!    human-readable text format from scratch.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin recovery
//! [--scale small|medium|large]`
//!
//! Emits `BENCH_PR2.json` in the working directory (override with
//! `BENCH_PR2_JSON=<path>`) so CI and later PRs can diff the numbers.

use hygraph_bench::{time_ms, time_stats, Scale};
use hygraph_core::{io as textio, HyGraph};
use hygraph_persist::{DurableStore, HgMutation, PersistConfig};
use hygraph_types::{Label, SeriesId, Timestamp};

/// The ingest workload: one series + ts-vertex per station, then
/// round-robin appends — the R3 continuous-ingest shape.
fn workload(stations: usize, points: usize) -> Vec<HgMutation> {
    let mut ops = Vec::with_capacity(stations * (2 + points));
    for k in 0..stations {
        ops.push(HgMutation::AddSeries {
            names: vec!["availability".into()],
            rows: vec![],
        });
        ops.push(HgMutation::AddTsVertex {
            labels: vec![Label::new("Station"), Label::new(format!("Zone{}", k % 8))],
            series: SeriesId::new(k as u64),
        });
    }
    for p in 0..points {
        for k in 0..stations {
            ops.push(HgMutation::Append {
                series: SeriesId::new(k as u64),
                t: Timestamp::from_millis(p as i64 * 300_000),
                row: vec![((p * 31 + k * 7) % 40) as f64],
            });
        }
    }
    ops
}

fn dir_bytes(dir: &std::path::Path, ext: &str) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == ext))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let scale = Scale::from_args();
    let (stations, points, runs) = match scale {
        Scale::Small => (10, 50, 5),
        Scale::Medium => (50, 200, 10),
        Scale::Large => (200, 500, 10),
    };
    // manual checkpoints only — the scenarios place them deliberately
    PersistConfig::new().checkpoint_every(0).install();

    let ops = workload(stations, points);
    println!(
        "recovery benchmark — {} stations × {} points = {} logged mutations",
        stations,
        points,
        ops.len()
    );

    let base = std::env::temp_dir().join(format!("hygraph-bench-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("scratch dir");
    let ckpt_dir = base.join("checkpoint-only");
    let replay_dir = base.join("checkpoint-replay");
    let text_path = base.join("instance.hyg");

    // -- populate: checkpoint-at-tip log ---------------------------------
    let (_, ms) = time_ms(|| {
        let mut store: DurableStore<HyGraph> = DurableStore::open(&ckpt_dir).expect("open");
        store.commit_batch(ops.clone()).expect("ingest");
        store.checkpoint().expect("checkpoint");
        store.close().expect("close");
    });
    println!("ingested checkpoint-only log in {ms:.0} ms");

    // -- populate: checkpoint-at-half log, tail lives in the WAL ---------
    let half = ops.len() / 2;
    let replayed = ops.len() - half;
    let (_, ms) = time_ms(|| {
        let mut store: DurableStore<HyGraph> = DurableStore::open(&replay_dir).expect("open");
        store.commit_batch(ops[..half].to_vec()).expect("ingest");
        store.checkpoint().expect("checkpoint");
        store.commit_batch(ops[half..].to_vec()).expect("ingest");
        store.close().expect("close");
    });
    println!("ingested checkpoint+WAL log in {ms:.0} ms ({replayed} frames left to replay)");

    // -- populate: text file (the pre-persist baseline) ------------------
    let golden = {
        let store: DurableStore<HyGraph> = DurableStore::open(&ckpt_dir).expect("open");
        textio::write_file(store.get(), &text_path).expect("write text");
        store.state_bytes()
    };

    // -- measure ---------------------------------------------------------
    let (ckpt_ms, ckpt_cv) = time_stats(runs, || {
        let store: DurableStore<HyGraph> = DurableStore::open(&ckpt_dir).expect("recover");
        store.get().vertex_count() as f64
    });
    let (replay_ms, replay_cv) = time_stats(runs, || {
        let store: DurableStore<HyGraph> = DurableStore::open(&replay_dir).expect("recover");
        store.get().vertex_count() as f64
    });
    let (text_ms, text_cv) = time_stats(runs, || {
        let hg = textio::read_file(&text_path).expect("parse text");
        hg.vertex_count() as f64
    });

    // correctness guard: all three roads lead to the same committed state
    {
        let a: DurableStore<HyGraph> = DurableStore::open(&ckpt_dir).expect("recover");
        let b: DurableStore<HyGraph> = DurableStore::open(&replay_dir).expect("recover");
        assert_eq!(a.state_bytes(), golden, "checkpoint-only state diverged");
        assert_eq!(b.state_bytes(), golden, "replayed state diverged");
        let t = textio::read_file(&text_path).expect("parse text");
        assert_eq!(t.vertex_count(), a.get().vertex_count());
        assert_eq!(t.series_count(), a.get().series_count());
    }

    let ckpt_bytes = dir_bytes(&ckpt_dir, "ck");
    let wal_bytes = dir_bytes(&replay_dir, "seg") + dir_bytes(&replay_dir, "ck");
    let text_bytes = std::fs::metadata(&text_path).map(|m| m.len()).unwrap_or(0);

    println!("\ncold-start recovery, mean of {runs} runs:");
    println!("  checkpoint only      {ckpt_ms:9.2} ms  (cv {ckpt_cv:4.1}%)  [{ckpt_bytes} bytes]");
    println!("  checkpoint + replay  {replay_ms:9.2} ms  (cv {replay_cv:4.1}%)  [{wal_bytes} bytes, {replayed} frames]");
    println!("  text reload          {text_ms:9.2} ms  (cv {text_cv:4.1}%)  [{text_bytes} bytes]");

    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    };
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"scale\": \"{scale_name}\",\n  \"mutations\": {},\n  \
         \"checkpoint_only\": {{\"mean_ms\": {ckpt_ms:.3}, \"cv_pct\": {ckpt_cv:.1}, \"bytes\": {ckpt_bytes}}},\n  \
         \"checkpoint_wal_replay\": {{\"mean_ms\": {replay_ms:.3}, \"cv_pct\": {replay_cv:.1}, \"bytes\": {wal_bytes}, \"replayed_frames\": {replayed}}},\n  \
         \"text_reload\": {{\"mean_ms\": {text_ms:.3}, \"cv_pct\": {text_cv:.1}, \"bytes\": {text_bytes}}}\n}}\n",
        ops.len()
    );
    let path = std::env::var("BENCH_PR2_JSON").unwrap_or_else(|_| "BENCH_PR2.json".to_string());
    std::fs::write(&path, json).expect("write bench json");
    println!("\nwrote {path}");

    std::fs::remove_dir_all(&base).ok();
}
