//! Regenerates **Table 1** of the paper: mean response time (MRS) and
//! coefficient of variation (CV) of the eight benchmark queries on the
//! all-in-graph baseline (the paper's Neo4j configuration) vs the
//! polyglot-persistence backend (the paper's TimeTravelDB).
//!
//! Run with: `cargo run --release -p hygraph-bench --bin table1 [--scale small|medium|large] [--parallel] [--persist]`
//!
//! `--parallel` (or `HYGRAPH_PAR_HARNESS=1`) fans the eight query
//! trials across the configured thread pool (`HYGRAPH_THREADS`) — same
//! answers, faster suite, noisier per-query timings.
//!
//! `--persist` additionally routes the polyglot ingest through the
//! durable storage engine (WAL + checkpoint) and reports the durable
//! write overhead and the cold-start recovery time next to the query
//! table.

use hygraph_bench::{time_ms, Scale};
use hygraph_datagen::bike::{self, BikeConfig};
use hygraph_persist::{DurableStore, PersistConfig, StoreMutation};
use hygraph_storage::harness::{measure_all, measure_all_parallel, render_table, Workload};
use hygraph_storage::{AllInGraphStore, PolyglotStore};
use hygraph_types::Duration;

/// `--persist`: replays the dataset's observations through the durable
/// engine (group-committed batches) and times cold-start recovery, so
/// the WAL's write amplification is visible next to the query numbers.
fn durable_ingest_report(dataset: &bike::BikeDataset, volatile_load_ms: f64) {
    PersistConfig::new().checkpoint_every(0).install();
    let dir = std::env::temp_dir().join(format!("hygraph-table1-persist-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let (_, ingest_ms) = time_ms(|| {
        let mut store: DurableStore<PolyglotStore> =
            DurableStore::open(&dir).expect("open durable store");
        for (i, &_station) in dataset.stations.iter().enumerate() {
            store
                .commit(StoreMutation::AddStation {
                    labels: vec!["Station".into()],
                    props: hygraph_types::PropertyMap::new(),
                })
                .expect("add station");
            let v = *store.get().stations().last().expect("just added");
            let batch: Vec<StoreMutation> = dataset.availability[i]
                .iter()
                .map(|(t, value)| StoreMutation::Observe {
                    station: v,
                    t,
                    value,
                })
                .collect();
            store.commit_batch(batch).expect("observe batch");
        }
        store.checkpoint().expect("checkpoint");
        store.close().expect("close");
    });
    let (recover_ms, recovered_points) = {
        let (store, ms) =
            time_ms(|| DurableStore::<PolyglotStore>::open(&dir).expect("cold-start recovery"));
        let pts: usize = {
            let inner = store.get();
            inner
                .stations()
                .iter()
                .enumerate()
                .map(|(i, _)| dataset.availability[i].len())
                .sum()
        };
        (ms, pts)
    };
    println!(
        "durable ingest (WAL + checkpoint): {ingest_ms:.0} ms vs {volatile_load_ms:.0} ms volatile \
         ({:.1}x write overhead); cold-start recovery {recover_ms:.0} ms for {recovered_points} observations\n",
        ingest_ms / volatile_load_ms.max(0.001)
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let scale = Scale::from_args();
    let (cfg, warmup, runs) = match scale {
        Scale::Small => (
            BikeConfig {
                stations: 30,
                days: 7,
                tick: Duration::from_mins(15),
                avg_degree: 5,
                seed: 42,
            },
            1,
            5,
        ),
        Scale::Medium => (
            BikeConfig {
                stations: 200,
                days: 30,
                tick: Duration::from_mins(5),
                avg_degree: 6,
                seed: 42,
            },
            2,
            10,
        ),
        Scale::Large => (
            BikeConfig {
                stations: 500,
                days: 60,
                tick: Duration::from_mins(5),
                avg_degree: 6,
                seed: 42,
            },
            2,
            10,
        ),
    };

    println!(
        "Table 1 reproduction — bike-sharing dataset: {} stations, {} days @ {} ticks",
        cfg.stations, cfg.days, cfg.tick
    );
    let (dataset, gen_ms) = time_ms(|| bike::generate(cfg));
    let points = dataset.points_per_station() * cfg.stations;
    println!(
        "generated {points} observations in {gen_ms:.0} ms ({} per station)",
        dataset.points_per_station()
    );

    let (aig, load_aig_ms) = time_ms(|| AllInGraphStore::load(&dataset));
    println!(
        "loaded all-in-graph store in {load_aig_ms:.0} ms ({} observation properties) — the paper's 'high write overhead'",
        aig.observation_property_count()
    );
    let (poly, load_poly_ms) = time_ms(|| PolyglotStore::load(&dataset));
    println!("loaded polyglot store in {load_poly_ms:.0} ms (chunked, 1-day partitions)\n");

    if std::env::args().any(|a| a == "--persist") {
        durable_ingest_report(&dataset, load_poly_ms);
    }

    let parallel_harness = std::env::args().any(|a| a == "--parallel")
        || std::env::var("HYGRAPH_PAR_HARNESS").is_ok_and(|v| v != "0" && !v.is_empty());
    let w = Workload::for_dataset(&dataset);
    let (stats_aig, stats_poly) = if parallel_harness {
        println!(
            "parallel harness: query trials fan out over {} thread(s)\n",
            hygraph_types::parallel::configured_threads()
        );
        (
            measure_all_parallel(&aig, &w, warmup, runs),
            measure_all_parallel(&poly, &w, warmup, runs),
        )
    } else {
        (
            measure_all(&aig, &w, warmup, runs),
            measure_all(&poly, &w, warmup, runs),
        )
    };

    // correctness guard: identical answers
    for (a, p) in stats_aig.iter().zip(&stats_poly) {
        assert!(
            (a.checksum - p.checksum).abs() < 1e-6 * a.checksum.abs().max(1.0),
            "{}: backends disagree ({} vs {})",
            a.query.name(),
            a.checksum,
            p.checksum
        );
    }

    println!("{}", render_table(&stats_aig, &stats_poly));
    println!(
        "paper reference (Neo4j vs TTDB, ms): Q1 3.4/4.3 · Q2 41/7 · Q3 56/20 · \
         Q4 31109/72 · Q5 73815/63 · Q6 73447/65 · Q7 48299/48 · Q8 54494/49"
    );
    println!(
        "expected shape: near-parity on the point-range Q1, growing wins for the \
         polyglot store on filtered/aggregate queries, and orders of magnitude on \
         the all-station aggregates Q4–Q8."
    );
}
