//! Ablation study of the polyglot store's design choices:
//!
//! 1. **chunk width** — sweep from minutes to weeks, measuring the
//!    range-fetch and aggregate queries (the partitioning granularity
//!    trade-off TimescaleDB documents);
//! 2. **per-chunk sparse aggregates** — the aggregate path with chunk
//!    summaries (O(#chunks)) vs forced full scans (O(#points));
//! 3. **query-window scaling** — how both backends degrade as the
//!    queried range grows (the crossover structure behind Table 1).
//!
//! Run with: `cargo run --release -p hygraph-bench --bin ablation [--scale small|medium|large]`

use hygraph_bench::{time_stats, Scale};
use hygraph_datagen::bike::{self, BikeConfig};
use hygraph_storage::harness::Workload;
use hygraph_storage::{AllInGraphStore, PolyglotStore, StorageBackend};
use hygraph_ts::store::{AggKind, Summary, TsStore};
use hygraph_types::{Duration, Interval, SeriesId};

fn main() {
    let scale = Scale::from_args();
    let (days, runs) = match scale {
        Scale::Small => (7, 5),
        Scale::Medium => (30, 10),
        Scale::Large => (90, 10),
    };
    let cfg = BikeConfig {
        stations: 50,
        days,
        tick: Duration::from_mins(5),
        avg_degree: 5,
        seed: 42,
    };
    let dataset = bike::generate(cfg);
    let series = &dataset.availability[0];
    let n = series.len();
    println!(
        "ablation dataset: {} stations × {} points\n",
        cfg.stations, n
    );

    // ---- 1. chunk width sweep ---------------------------------------------
    println!("1. chunk-width sweep (single series, {n} points)");
    println!(
        "{:<12} {:>8} {:>16} {:>16} {:>18}",
        "chunk", "chunks", "1d range (µs)", "full mean (µs)", "1d-bucket agg (µs)"
    );
    let full = Interval::new(dataset.start, dataset.end);
    let one_day = Interval::new(dataset.start, dataset.start + Duration::from_days(1));
    for chunk in [
        Duration::from_mins(30),
        Duration::from_hours(4),
        Duration::from_days(1),
        Duration::from_days(7),
        Duration::from_days(30),
    ] {
        let mut store = TsStore::with_chunk_width(chunk);
        let id = SeriesId::new(0);
        store.insert_series(id, series);
        let (t_range, _) = time_stats(runs * 20, || store.range(id, &one_day).len() as f64);
        let (t_mean, _) = time_stats(runs * 20, || {
            store.aggregate(id, &full, AggKind::Mean).unwrap_or(0.0)
        });
        let (t_bucket, _) = time_stats(runs * 20, || {
            store
                .aggregate_buckets(id, &full, Duration::from_days(1))
                .len() as f64
        });
        println!(
            "{:<12} {:>8} {:>16.1} {:>16.1} {:>18.1}",
            format!("{chunk}"),
            store.chunk_count(id),
            t_range * 1e3,
            t_mean * 1e3,
            t_bucket * 1e3
        );
    }

    // ---- 2. chunk summaries on/off -------------------------------------------
    println!("\n2. per-chunk sparse aggregates (full-range mean, 1-day chunks)");
    let mut store = TsStore::with_chunk_width(Duration::from_days(1));
    let id = SeriesId::new(0);
    store.insert_series(id, series);
    let (with_summaries, _) = time_stats(runs * 50, || {
        store.aggregate(id, &full, AggKind::Mean).unwrap_or(0.0)
    });
    // forced full scan: same store, same data, no summary shortcut
    let (without, _) = time_stats(runs * 50, || {
        let mut acc = Summary::new();
        store.scan(id, &full, |_, v| acc.add(v));
        acc.mean().unwrap_or(0.0)
    });
    println!(
        "  with summaries: {:>10.1} µs   forced scan: {:>10.1} µs   speedup: {:.0}x",
        with_summaries * 1e3,
        without * 1e3,
        without / with_summaries.max(1e-12)
    );

    // ---- 3. query-window scaling ------------------------------------------------
    println!("\n3. window scaling: single-station mean, both backends");
    let aig = AllInGraphStore::load(&dataset);
    let poly = PolyglotStore::load(&dataset);
    let w = Workload::for_dataset(&dataset);
    println!(
        "{:<10} {:>18} {:>18} {:>10}",
        "window", "all-in-graph (µs)", "polyglot (µs)", "speedup"
    );
    let mut windows: Vec<i64> = [1, 3, 7, 14, days as i64]
        .into_iter()
        .filter(|&d| d <= days as i64)
        .collect();
    windows.dedup();
    for frac_days in windows {
        let iv = Interval::new(
            dataset.start,
            (dataset.start + Duration::from_days(frac_days)).min(dataset.end),
        );
        let (t_a, _) = time_stats(runs * 10, || aig.q3_mean(w.station, &iv).unwrap_or(0.0));
        let (t_p, _) = time_stats(runs * 10, || poly.q3_mean(w.station, &iv).unwrap_or(0.0));
        println!(
            "{:<10} {:>18.1} {:>18.1} {:>9.0}x",
            format!("{frac_days}d"),
            t_a * 1e3,
            t_p * 1e3,
            t_a / t_p.max(1e-12)
        );
    }
    println!(
        "\nconclusion: chunk pruning keeps the polyglot cost flat in the window size\n\
         while the all-in-graph scan is O(all properties) regardless of the window —\n\
         the asymmetry that produces the Table-1 orders of magnitude."
    );
}
