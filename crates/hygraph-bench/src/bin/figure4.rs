//! Regenerates **Figure 4** of the paper: the HyGraph pipeline solving
//! the running example — `<X>ToHyGraph` → hybrid operators →
//! clustering/classification → instance annotation — and quantifies the
//! false-positive reduction over the isolated methods on the scaled
//! dataset with ground truth.
//!
//! Run with: `cargo run --release -p hygraph-bench --bin figure4 [--scale small|medium|large]`

use hygraph_analytics::classify;
use hygraph_analytics::evaluate::Confusion;
use hygraph_analytics::pipeline::{self, PipelineConfig};
use hygraph_bench::{time_ms, Scale};
use hygraph_datagen::fraud::{self, FraudConfig};

fn main() {
    let scale = Scale::from_args();
    let users = match scale {
        Scale::Small => 100,
        Scale::Medium => 400,
        Scale::Large => 1_500,
    };

    // ---- step 1+2 of Figure 4: integrate data into a HyGraph instance ----
    let cfg = FraudConfig {
        users,
        merchants: (users / 4).max(10),
        hours: 24 * 14,
        ..Default::default()
    };
    let (data, gen_ms) = time_ms(|| fraud::generate(cfg));
    println!(
        "Figure 4 pipeline — {} users ({} fraudsters, {} bulk shoppers), {} hours of series, built in {gen_ms:.0} ms",
        cfg.users,
        data.fraudsters.len(),
        data.bulk_shoppers.len(),
        cfg.hours
    );
    let truth = data.fraudsters.clone();
    let bulk = data.bulk_shoppers.clone();
    let vacation = data.vacation_spenders.clone();
    let users_v = data.users.clone();
    let mut hg = data.hygraph;

    // ---- steps 3-5: hybrid operators, clustering, classification ----------
    let (report, pipe_ms) =
        time_ms(|| pipeline::run(&mut hg, PipelineConfig::default()).expect("pipeline runs"));
    println!(
        "pipeline executed in {pipe_ms:.0} ms; {} annotation subgraphs written\n",
        report.annotations.len()
    );

    // ---- confusion matrices: each method vs ground truth -------------------
    let verdicts: Vec<_> = users_v
        .iter()
        .map(|&u| report.verdict(u).expect("user judged").clone())
        .collect();
    let n = users_v.len();
    let graph_only = Confusion::from_fn(n, |i| verdicts[i].graph_flagged, |i| truth.contains(&i));
    let series_only = Confusion::from_fn(n, |i| verdicts[i].series_flagged, |i| truth.contains(&i));
    let hybrid = Confusion::from_fn(n, |i| verdicts[i].suspicious, |i| truth.contains(&i));

    println!(
        "{:<14} {:>4} {:>4} {:>4} {:>4} {:>10} {:>8} {:>6}",
        "method", "TP", "FP", "FN", "TN", "precision", "recall", "F1"
    );
    for (name, c) in [
        ("graph-only", graph_only),
        ("series-only", series_only),
        ("HyGraph", hybrid),
    ] {
        println!(
            "{:<14} {:>4} {:>4} {:>4} {:>4} {:>10.2} {:>8.2} {:>6.2}",
            name,
            c.tp,
            c.fp,
            c.fn_,
            c.tn,
            c.precision(),
            c.recall(),
            c.f1()
        );
    }

    // the false positives each isolated method produces, removed by the
    // hybrid view
    let bulk_cleared = bulk
        .iter()
        .filter(|&&i| verdicts[i].graph_flagged && !verdicts[i].suspicious)
        .count();
    let vac_cleared = vacation
        .iter()
        .filter(|&&i| verdicts[i].series_flagged && !verdicts[i].suspicious)
        .count();
    println!(
        "\nbulk shoppers (graph-rule FPs) cleared by the hybrid refinement: {bulk_cleared}/{}",
        bulk.len()
    );
    println!(
        "one-off big spenders (series-rule FPs) cleared: {vac_cleared}/{}",
        vacation.len()
    );

    // annotations are readable back from the instance
    let annotated_suspicious = users_v
        .iter()
        .filter(|&&u| classify::verdict_of(&hg, u) == Some(classify::Verdict::Suspicious))
        .count();
    println!("users inside 'Suspicious'-labelled subgraph annotations: {annotated_suspicious}");
    hg.validate()
        .expect("instance remains valid after annotation");
    println!("instance integrity after annotation: ok");
}
