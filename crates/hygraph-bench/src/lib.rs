//! Shared helpers for the benchmark binaries that regenerate the paper's
//! tables and figures (see `src/bin/`).

use std::time::Instant;

/// Scale presets for the benchmark binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast smoke scale (CI).
    Small,
    /// The default reporting scale.
    Medium,
    /// Closer to the paper's dataset size (minutes).
    Large,
}

impl Scale {
    /// Parses `--scale small|medium|large` from process args; defaults to
    /// `Medium`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return match pair[1].as_str() {
                    "small" => Scale::Small,
                    "large" => Scale::Large,
                    _ => Scale::Medium,
                };
            }
        }
        Scale::Medium
    }
}

/// Times a closure, returning (result, elapsed milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Times `runs` executions, returning (mean ms, cv %). The closure's
/// output is accumulated into a checksum to prevent dead-code elimination.
pub fn time_stats(runs: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut samples = Vec::with_capacity(runs);
    let mut checksum = 0.0;
    for _ in 0..runs {
        let t0 = Instant::now();
        checksum += f();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    std::hint::black_box(checksum);
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let var =
        samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len().max(1) as f64;
    let cv = if mean > 0.0 {
        var.sqrt() / mean * 100.0
    } else {
        0.0
    };
    (mean, cv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_helpers_run() {
        let (v, ms) = time_ms(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        let (mean, cv) = time_stats(5, || 1.0);
        assert!(mean >= 0.0 && cv >= 0.0);
    }

    #[test]
    fn default_scale() {
        assert_eq!(Scale::from_args(), Scale::Medium);
    }
}
