//! Criterion benchmarks of the HyQL engine: parsing, pattern matching,
//! series aggregates, row aggregation, and variable-length expansion on
//! the fraud dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use hygraph_datagen::fraud::{generate, FraudConfig};
use hygraph_query::{parser, query};
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let data = generate(FraudConfig {
        users: 200,
        merchants: 60,
        hours: 24 * 7,
        ..Default::default()
    });
    let hg = data.hygraph;

    let mut g = c.benchmark_group("hyql");
    g.bench_function("parse_complex", |b| {
        b.iter(|| {
            black_box(
                parser::parse(
                    "MATCH (u:User {name: 'user-1'})-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
                     WHERE t.amount > 1000 AND MEAN(DELTA(c) IN [0, 604800000)) > 50 \
                     RETURN u.name AS who, COUNT(DISTINCT m.name) AS n, SUM(t.amount) AS total \
                     HAVING COUNT(DISTINCT m.name) > 2 ORDER BY who DESC LIMIT 10",
                )
                .expect("parses"),
            )
        })
    });
    g.bench_function("match_one_hop", |b| {
        b.iter(|| {
            black_box(
                query(
                    &hg,
                    "MATCH (u:User)-[:USES]->(c:CreditCard) RETURN u LIMIT 1000",
                )
                .expect("runs")
                .len(),
            )
        })
    });
    g.bench_function("match_filtered_two_hop", |b| {
        b.iter(|| {
            black_box(
                query(
                    &hg,
                    "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
                     WHERE t.amount > 1000 RETURN u.name AS who",
                )
                .expect("runs")
                .len(),
            )
        })
    });
    g.bench_function("series_aggregate_filter", |b| {
        b.iter(|| {
            black_box(
                query(
                    &hg,
                    "MATCH (c:CreditCard) WHERE MAX(DELTA(c) IN [0, 604800000)) > 1000 \
                     RETURN COUNT(*) AS n",
                )
                .expect("runs")
                .rows[0][0]
                    .clone(),
            )
        })
    });
    g.bench_function("row_aggregation_having", |b| {
        b.iter(|| {
            black_box(
                query(
                    &hg,
                    "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
                     WHERE t.amount > 1000 \
                     RETURN u.name AS who, COUNT(DISTINCT m.name) AS n \
                     HAVING COUNT(DISTINCT m.name) > 2",
                )
                .expect("runs")
                .len(),
            )
        })
    });
    g.bench_function("variable_length_2hop", |b| {
        b.iter(|| {
            black_box(
                query(
                    &hg,
                    "MATCH (u:User {name: 'user-1'})-[*1..2]->(x) RETURN COUNT(x) AS n",
                )
                .expect("runs")
                .rows[0][0]
                    .clone(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // CI-friendly precision: 10 samples / short windows; bump for
    // publication-grade numbers
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_query
}
criterion_main!(benches);
