//! Sequential vs parallel execution of the workspace's fan-out paths:
//! HyQL per-binding evaluation, PageRank, the pairwise correlation
//! matrix, and batch series summarisation.
//!
//! Unlike the other benches this binary always writes a
//! machine-readable summary — `BENCH_PR1.json` in the working directory
//! (override with `BENCH_PR1_JSON=<path>`) — so CI and later PRs can
//! diff seq/par ratios without scraping stdout. Thread count follows
//! `HYGRAPH_THREADS`; on a single-core box the parallel rows measure
//! pure chunking overhead, which is exactly the regression the
//! `hygraph-types::parallel` sequential-fallback threshold exists to
//! bound.
//!
//! Run with: `cargo bench -p hygraph-bench --bench seq_vs_par`

use criterion::{black_box, Criterion};
use hygraph_core::HyGraph;
use hygraph_graph::algorithms::pagerank::{pagerank_mode, PageRankConfig};
use hygraph_graph::TemporalGraph;
use hygraph_query::{execute_mode, parser};
use hygraph_ts::ops::correlate;
use hygraph_ts::store::AggKind;
use hygraph_ts::{TimeSeries, TsStore};
use hygraph_types::parallel::ExecMode;
use hygraph_types::{props, Duration, Interval, SeriesId, Timestamp, VertexId};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn unit_f64(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// 80 users × 3 cards: 240 bindings, each evaluating a series aggregate.
fn query_fixture() -> HyGraph {
    let mut st = 0x5eed_cafe_u64;
    let mut hg = HyGraph::new();
    for u in 0..80 {
        let user = hg.add_pg_vertex(["User"], props! {"name" => format!("u{u:03}")});
        for _ in 0..3 {
            let base = unit_f64(&mut st) * 1000.0;
            let s = TimeSeries::generate(Timestamp::ZERO, Duration::from_hours(1), 48, move |h| {
                base + (h as f64 * 0.3).sin() * 50.0
            });
            let sid = hg.add_univariate_series("spend", &s);
            let card = hg.add_ts_vertex(["Card"], sid).unwrap();
            hg.add_pg_edge(
                user,
                card,
                ["USES"],
                props! {"fee" => unit_f64(&mut st) * 10.0},
            )
            .unwrap();
        }
    }
    hg
}

fn bench_query(c: &mut Criterion) {
    let hg = query_fixture();
    let q = parser::parse(
        "MATCH (u:User)-[e:USES]->(c:Card) \
         WHERE MEAN(DELTA(c) IN [0, 172800000)) > 400 \
         RETURN u.name AS who, e.fee AS fee ORDER BY who, fee",
    )
    .unwrap();
    let mut group = c.benchmark_group("seq_vs_par/query_execute");
    group.bench_function("seq", |b| {
        b.iter(|| {
            black_box(
                execute_mode(&hg, &q, ExecMode::Sequential)
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
    group.bench_function("par", |b| {
        b.iter(|| {
            black_box(
                execute_mode(&hg, &q, ExecMode::Parallel)
                    .unwrap()
                    .rows
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut st = 0x9e37_79b9_u64;
    let n = 1500usize;
    let mut g = TemporalGraph::new();
    let vs: Vec<VertexId> = (0..n).map(|_| g.add_vertex(["N"], props! {})).collect();
    for i in 0..n {
        let _ = g.add_edge(vs[i], vs[(i + 1) % n], ["E"], props! {});
    }
    for _ in 0..6 * n {
        let a = (xorshift(&mut st) as usize) % n;
        let b = (xorshift(&mut st) as usize) % n;
        let _ = g.add_edge(vs[a], vs[b], ["E"], props! {});
    }
    let cfg = PageRankConfig {
        max_iter: 30,
        ..PageRankConfig::default()
    };
    let mut group = c.benchmark_group("seq_vs_par/pagerank");
    group.bench_function("seq", |b| {
        b.iter(|| black_box(pagerank_mode(&g, cfg, ExecMode::Sequential).len()))
    });
    group.bench_function("par", |b| {
        b.iter(|| black_box(pagerank_mode(&g, cfg, ExecMode::Parallel).len()))
    });
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let mut st = 0x0dd_ba11_u64;
    let cols: Vec<Vec<f64>> = (0..48)
        .map(|_| (0..512).map(|_| unit_f64(&mut st) * 10.0 - 5.0).collect())
        .collect();
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut group = c.benchmark_group("seq_vs_par/correlation_matrix");
    group.bench_function("seq", |b| {
        b.iter(|| black_box(correlate::correlation_matrix_mode(&refs, ExecMode::Sequential).len()))
    });
    group.bench_function("par", |b| {
        b.iter(|| black_box(correlate::correlation_matrix_mode(&refs, ExecMode::Parallel).len()))
    });
    group.finish();
}

fn bench_batch_aggregate(c: &mut Criterion) {
    let mut store = TsStore::with_chunk_width(Duration::from_days(1));
    let k = 96usize;
    for i in 0..k {
        let s = TimeSeries::generate(Timestamp::ZERO, Duration::from_mins(5), 7 * 288, move |t| {
            ((t + i * 17) as f64 * 0.01).sin() * 20.0 + 50.0
        });
        store.insert_series(SeriesId::new(i as u64), &s);
    }
    let ids: Vec<SeriesId> = (0..k).map(|i| SeriesId::new(i as u64)).collect();
    let iv = Interval::new(
        Timestamp::ZERO + Duration::from_hours(12),
        Timestamp::ZERO + Duration::from_days(6),
    );
    let mut group = c.benchmark_group("seq_vs_par/batch_aggregate");
    group.bench_function("seq", |b| {
        b.iter(|| {
            black_box(
                store
                    .aggregate_batch_mode(&ids, &iv, AggKind::Mean, ExecMode::Sequential)
                    .len(),
            )
        })
    });
    group.bench_function("par", |b| {
        b.iter(|| {
            black_box(
                store
                    .aggregate_batch_mode(&ids, &iv, AggKind::Mean, ExecMode::Parallel)
                    .len(),
            )
        })
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    bench_query(&mut criterion);
    bench_pagerank(&mut criterion);
    bench_correlation(&mut criterion);
    bench_batch_aggregate(&mut criterion);
    let path = std::env::var("BENCH_PR1_JSON").unwrap_or_else(|_| "BENCH_PR1.json".to_string());
    criterion
        .export_json(&path)
        .expect("write seq-vs-par bench json");
    println!("wrote {path}");
}
