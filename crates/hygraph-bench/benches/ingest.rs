//! Criterion benchmarks of the R3 *timeliness* requirement: ingest and
//! update throughput of the series store and the model's structural
//! update path.

use criterion::{criterion_group, criterion_main, Criterion};
use hygraph_core::HyGraph;
use hygraph_ts::{TimeSeries, TsStore};
use hygraph_types::{props, Duration, Interval, SeriesId, Timestamp};
use std::hint::black_box;

fn bench_ts_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest");
    let n = 10_000usize;

    g.bench_function("tsstore_append_in_order", |b| {
        b.iter(|| {
            let mut st = TsStore::with_chunk_width(Duration::from_secs(3600));
            let id = SeriesId::new(0);
            for i in 0..n {
                st.insert(id, Timestamp::from_secs(i as i64), i as f64);
            }
            black_box(st.len(id))
        })
    });

    g.bench_function("tsstore_append_out_of_order", |b| {
        // reversed arrival order: worst case for the sorted-chunk inserts
        b.iter(|| {
            let mut st = TsStore::with_chunk_width(Duration::from_secs(3600));
            let id = SeriesId::new(0);
            for i in (0..n).rev() {
                st.insert(id, Timestamp::from_secs(i as i64), i as f64);
            }
            black_box(st.len(id))
        })
    });

    g.bench_function("timeseries_push", |b| {
        b.iter(|| {
            let mut s = TimeSeries::with_capacity(n);
            for i in 0..n {
                s.push(Timestamp::from_secs(i as i64), i as f64)
                    .expect("ordered");
            }
            black_box(s.len())
        })
    });

    g.bench_function("hygraph_series_append", |b| {
        let mut hg = HyGraph::new();
        let sid = hg.add_univariate_series(
            "x",
            &TimeSeries::generate(Timestamp::ZERO, Duration::from_secs(1), 1, |_| 0.0),
        );
        let mut t = 1i64;
        b.iter(|| {
            t += 1;
            hg.append(sid, Timestamp::from_secs(t), &[t as f64])
                .expect("ordered");
            black_box(t)
        })
    });
    g.finish();
}

fn bench_structural_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("structural");
    g.bench_function("add_vertex_edge", |b| {
        b.iter(|| {
            let mut hg = HyGraph::new();
            let mut prev = hg.add_pg_vertex(["N"], props! {});
            for i in 0..1_000 {
                let v = hg.add_pg_vertex(["N"], props! {});
                hg.add_pg_edge_valid(
                    prev,
                    v,
                    ["E"],
                    props! {},
                    Interval::from(Timestamp::from_secs(i)),
                )
                .expect("vertices exist");
                prev = v;
            }
            black_box(hg.edge_count())
        })
    });
    g.bench_function("close_validity", |b| {
        // closing validity must not rebuild structures
        let mut hg = HyGraph::new();
        let mut vs = Vec::new();
        for _ in 0..1_000 {
            vs.push(hg.add_pg_vertex(["N"], props! {}));
        }
        for w in vs.windows(2) {
            hg.add_pg_edge(w[0], w[1], ["E"], props! {})
                .expect("exists");
        }
        let mut i = 0usize;
        b.iter(|| {
            let v = vs[i % vs.len()];
            i += 1;
            hg.close_vertex(v, Timestamp::from_secs(i as i64))
                .expect("pg vertex");
            black_box(i)
        })
    });
    g.bench_function("snapshot_1k", |b| {
        let mut hg = HyGraph::new();
        let mut vs = Vec::new();
        for i in 0..1_000i64 {
            vs.push(hg.add_pg_vertex_valid(
                ["N"],
                props! {},
                Interval::new(Timestamp::from_secs(i), Timestamp::from_secs(i + 500)),
            ));
        }
        b.iter(|| {
            black_box(
                hygraph_graph::snapshot::snapshot(hg.topology(), Timestamp::from_secs(600))
                    .vertex_count(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // CI-friendly precision: 10 samples / short windows; bump for
    // publication-grade numbers
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ts_ingest, bench_structural_updates
}
criterion_main!(benches);
