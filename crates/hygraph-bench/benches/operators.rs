//! Criterion benchmarks of the Table-2 operator taxonomy: every row's
//! time-series and graph operator, plus the four hybrid roadmap
//! operators, at a CI-friendly scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hygraph_core::interfaces::import::graph_to_hygraph;
use hygraph_datagen::random;
use hygraph_graph::algorithms::{community, motifs};
use hygraph_graph::{aggregate, snapshot, traverse, Direction, Pattern};
use hygraph_query::hybrid;
use hygraph_ts::ops;
use hygraph_types::{Duration, Interval, Timestamp};
use std::hint::black_box;

fn bench_series_ops(c: &mut Criterion) {
    let series = random::seasonal(50_000, 288, 20.0, 0.0, 2.0, 42);
    let other = random::seasonal(50_000, 288, 15.0, 0.001, 3.0, 43);
    let query: Vec<f64> = series.values()[1000..1100].to_vec();

    let mut g = c.benchmark_group("table2_series");
    g.bench_function("q1_subsequence_match", |b| {
        b.iter(|| black_box(ops::subsequence::best_match(&series, &query)))
    });
    g.bench_function("q2_downsample_lttb", |b| {
        b.iter(|| black_box(ops::downsample::lttb(&series, 500).len()))
    });
    g.bench_function("q2_downsample_bucket", |b| {
        b.iter(|| black_box(ops::downsample::bucket_mean(&series, Duration::from_secs(3600)).len()))
    });
    g.bench_function("q3_pearson", |b| {
        b.iter(|| black_box(ops::correlate::pearson(series.values(), other.values())))
    });
    g.bench_function("q4_pelt_segmentation", |b| {
        let coarse = ops::downsample::bucket_mean(&series, Duration::from_secs(1800));
        b.iter(|| black_box(ops::segment::pelt(&coarse, None).len()))
    });
    g.bench_function("d_sliding_anomaly", |b| {
        b.iter(|| {
            black_box(
                ops::anomaly::sliding_window(&series, Duration::from_secs(3600), 4.0, 10).len(),
            )
        })
    });
    g.bench_function("pm_matrix_profile", |b| {
        let small = ops::downsample::stride(&series, 25); // 2k points
        b.iter(|| black_box(ops::motif::motifs(&small, 50, 1).len()))
    });
    g.bench_function("c1_feature_vector", |b| {
        b.iter(|| black_box(ops::features::feature_vector(&series)))
    });
    g.bench_function("c2_sax_words", |b| {
        b.iter(|| {
            black_box(
                ops::sax::frequent_words(&series, 288, 6, 4, 2)
                    .expect("valid SAX params")
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let horizon = Interval::new(Timestamp::ZERO, Timestamp::from_millis(1_000_000));
    let graph = random::random_graph(5_000, 20_000, &["A", "B", "C"], horizon, 42);
    let hg = graph_to_hygraph(&graph);
    let start = graph.vertex_ids().next().expect("non-empty");

    let mut g = c.benchmark_group("table2_graph");
    g.bench_function("q1_subgraph_match", |b| {
        b.iter(|| {
            let mut p = Pattern::new();
            let a = p.vertex("a", ["A"]);
            let bb = p.vertex("b", ["B"]);
            p.edge(None, a, bb, ["E"], Direction::Out);
            black_box(p.find_all(&graph).len())
        })
    });
    g.bench_function("q2_grouping", |b| {
        b.iter(|| {
            black_box(
                aggregate::group_by(&graph, aggregate::GroupBy::Labels, &["w"])
                    .summary
                    .vertex_count(),
            )
        })
    });
    g.bench_function("q3_bfs", |b| {
        b.iter(|| black_box(traverse::bfs(&graph, start, traverse::Follow::Out).len()))
    });
    g.bench_function("q3_temporal_reachability", |b| {
        b.iter(|| black_box(traverse::temporal_reachability(&graph, start, &horizon).len()))
    });
    g.bench_function("q4_snapshot", |b| {
        b.iter(|| {
            black_box(snapshot::snapshot(&graph, Timestamp::from_millis(500_000)).vertex_count())
        })
    });
    g.bench_function("d_louvain", |b| {
        b.iter(|| black_box(community::louvain(&graph, 10).count))
    });
    g.bench_function("pm_triangles", |b| {
        b.iter(|| black_box(motifs::triangle_count(&graph)))
    });
    g.bench_function("e_fastrp", |b| {
        b.iter(|| {
            black_box(
                hygraph_analytics::embedding::fastrp(
                    &hg,
                    hygraph_analytics::embedding::FastRpConfig::default(),
                )
                .len(),
            )
        })
    });
    g.finish();
}

fn bench_hybrid_ops(c: &mut Criterion) {
    let fraud = hygraph_datagen::fraud::generate(hygraph_datagen::fraud::FraudConfig {
        users: 100,
        merchants: 40,
        hours: 24 * 7,
        ..Default::default()
    });
    let hg = fraud.hygraph;
    let shape: Vec<f64> = (0..12)
        .map(|i| if (4..8).contains(&i) { 1500.0 } else { 40.0 })
        .collect();

    let mut g = c.benchmark_group("roadmap_hybrid");
    g.bench_function("q1_hybrid_match", |b| {
        b.iter(|| {
            let mut p = Pattern::new();
            let u = p.vertex("u", ["User"]);
            let cc = p.vertex("c", ["CreditCard"]);
            p.edge(None, u, cc, ["USES"], Direction::Out);
            black_box(
                hybrid::hybrid_match(
                    &hg,
                    &hybrid::HybridMatchSpec {
                        pattern: p,
                        series_var: "c".into(),
                        shape: shape.clone(),
                        max_dist: 2.0,
                    },
                )
                .len(),
            )
        })
    });
    g.bench_function("q2_hybrid_aggregate", |b| {
        b.iter(|| {
            black_box(
                hybrid::hybrid_aggregate(&hg, Duration::from_hours(6))
                    .group_series
                    .len(),
            )
        })
    });
    g.bench_function("q3_correlation_reachability", |b| {
        b.iter(|| {
            black_box(
                hybrid::correlation_reachability(&hg, fraud.cards[0], Duration::from_hours(1), 0.5)
                    .len(),
            )
        })
    });
    g.bench_function("q4_segmentation_snapshots", |b| {
        let driver = hg
            .series(fraud.spending[0])
            .expect("series exists")
            .to_univariate("spending")
            .expect("column");
        b.iter(|| black_box(hybrid::segmentation_snapshots(&hg, &driver, None).map(|s| s.len())))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // CI-friendly precision: 10 samples / short windows; bump for
    // publication-grade numbers
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_series_ops, bench_graph_ops, bench_hybrid_ops
}
criterion_main!(benches);
