//! Criterion benchmarks of the Table-1 storage backends: each of the
//! eight queries on both the all-in-graph baseline and the polyglot
//! store, at a CI-friendly scale. The `table1` binary produces the
//! full-scale paper table; this bench tracks regressions per query.

use criterion::{criterion_group, criterion_main, Criterion};
use hygraph_datagen::bike::{generate, BikeConfig};
use hygraph_storage::harness::{run_query, Workload};
use hygraph_storage::{backend::QueryId, AllInGraphStore, PolyglotStore};
use hygraph_types::Duration;
use std::hint::black_box;

fn bench_storage(c: &mut Criterion) {
    let dataset = generate(BikeConfig {
        stations: 50,
        days: 14,
        tick: Duration::from_mins(15),
        avg_degree: 5,
        seed: 42,
    });
    let w = Workload::for_dataset(&dataset);
    let aig = AllInGraphStore::load(&dataset);
    let poly = PolyglotStore::load(&dataset);

    let mut group = c.benchmark_group("table1");
    for q in QueryId::ALL {
        group.bench_function(format!("{}_all_in_graph", q.name()), |b| {
            b.iter(|| black_box(run_query(&aig, &w, q)))
        });
        group.bench_function(format!("{}_polyglot", q.name()), |b| {
            b.iter(|| black_box(run_query(&poly, &w, q)))
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let dataset = generate(BikeConfig {
        stations: 10,
        days: 7,
        tick: Duration::from_mins(30),
        avg_degree: 4,
        seed: 42,
    });
    let mut group = c.benchmark_group("load");
    group.sample_size(10);
    group.bench_function("all_in_graph", |b| {
        b.iter(|| black_box(AllInGraphStore::load(&dataset).observation_property_count()))
    });
    group.bench_function("polyglot", |b| {
        b.iter(|| black_box(PolyglotStore::load(&dataset).ts_store().series_count()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // CI-friendly precision: 10 samples / short windows; bump for
    // publication-grade numbers
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_storage, bench_load
}
criterion_main!(benches);
