//! Scatter-gather ≡ single-pass equivalence: the sharded physical path
//! must be **byte-identical** (wire encoding of rows, and error text)
//! to [`hygraph_query::execute_planned`] for every query, every shard
//! count, and both execution modes — `HYGRAPH_SHARDS=1` is the exact
//! pre-shard engine, and N > 1 only redistributes work.

use hygraph_core::HyGraphBuilder;
use hygraph_query::{execute_planned, execute_planned_sharded, plan_query};
use hygraph_ts::TimeSeries;
use hygraph_types::bytes::ByteWriter;
use hygraph_types::parallel::ExecMode;
use hygraph_types::shard::ShardRouter;
use hygraph_types::{props, Duration, Timestamp};
use proptest::prelude::*;

fn instance() -> hygraph_core::builder::BuiltHyGraph {
    let hot = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 100, |i| {
        if i >= 50 {
            900.0
        } else {
            10.0
        }
    });
    let cold = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 100, |_| 12.0);
    HyGraphBuilder::new()
        .univariate("hot", &hot)
        .univariate("cold", &cold)
        .pg_vertex(
            "alice",
            ["User"],
            props! {"name" => "alice", "age" => 34i64},
        )
        .pg_vertex("bob", ["User"], props! {"name" => "bob", "age" => 19i64})
        .pg_vertex("m1", ["Merchant"], props! {"name" => "m1"})
        .pg_vertex("m2", ["Merchant"], props! {"name" => "m2"})
        .ts_vertex("c1", ["CreditCard"], "hot")
        .ts_vertex("c2", ["CreditCard"], "cold")
        .pg_edge(None, "alice", "c1", ["USES"], props! {})
        .pg_edge(None, "bob", "c2", ["USES"], props! {})
        .pg_edge(Some("t1"), "c1", "m1", ["TX"], props! {"amount" => 1500.0})
        .pg_edge(Some("t2"), "c1", "m2", ["TX"], props! {"amount" => 30.0})
        .pg_edge(Some("t3"), "c2", "m1", ["TX"], props! {"amount" => 20.0})
        .build()
        .unwrap()
}

/// The Table-1-shaped plan-equivalence corpus (success *and* error
/// cases) every planner change is pinned on.
const QUERIES: &[&str] = &[
    "MATCH (u:User) RETURN u.name AS name ORDER BY name",
    "MATCH (u:User {name: 'alice'})-[:USES]->(c:CreditCard) RETURN u.age AS age",
    "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
     WHERE t.amount > 1000 RETURN u.name AS who, t.amount AS amt",
    "MATCH (u:User)-[:USES]->(c:CreditCard) \
     WHERE MEAN(DELTA(c) IN [0, 1000)) > 400 RETURN u.name AS who",
    "MATCH (u:User)-[:USES]->(c:CreditCard) \
     RETURN u.name AS who, MAX(DELTA(c) IN [0, 1000)) AS peak, \
     COUNT(DELTA(c) IN [0, 250)) AS n ORDER BY who",
    "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) RETURN DISTINCT m.name AS m ORDER BY m",
    "MATCH (c:CreditCard)-[t:TX]->(m) RETURN t.amount AS a ORDER BY a DESC LIMIT 2",
    "MATCH (u:User) WHERE u.ghost > 1 RETURN u",
    "MATCH (u:User) WHERE u.name = 'alice' RETURN u.age * 2 + 1 AS x, u.age / 0 AS z",
    "MATCH (u:User)-[:USES]->(c:CreditCard), (c)-[t:TX]->(m:Merchant) \
     WHERE m.name = 'm1' RETURN u.name AS who ORDER BY who",
    "MATCH (u:User)-[:USES]->(c:CreditCard)-[t:TX]->(m:Merchant) \
     RETURN u.name AS who, COUNT(t) AS n HAVING COUNT(t) > 1 ORDER BY who",
    "MATCH (c:CreditCard)-[t:TX]->(m:Merchant) \
     RETURN COUNT(m.name) AS all_rows, COUNT(DISTINCT m.name) AS uniq",
    "MATCH (u:User) RETURN COUNT(*) AS n",
    "MATCH (u:Ghost) RETURN COUNT(*) AS n",
    "MATCH (u:User {name: 'alice'})-[*1..2]->(x) RETURN DISTINCT x ORDER BY x",
    "MATCH (c:CreditCard)-[:TX*1..3]->(m) RETURN COUNT(*) AS n",
    "MATCH (u:User)-[:USES]->(c:CreditCard) \
     RETURN AVG(MEAN(DELTA(c) IN [0, 1000)) ) AS fleet_mean",
    "MATCH (u:User) RETURN u.name AS n ORDER BY zzz",
    "MATCH (c:CreditCard) WHERE MEAN(DELTA(c) IN [100, 0)) > 1 RETURN c",
    "MATCH (u:User) WHERE u.age > 18 AND 1 < 2 RETURN u.name AS n ORDER BY n",
];

fn wire_bytes(r: &hygraph_query::QueryResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    r.encode(&mut w);
    w.into_bytes()
}

fn assert_identical(hg: &hygraph_core::HyGraph, text: &str, shards: usize, mode: ExecMode) {
    let q = hygraph_query::parser::parse(text).unwrap();
    let planned = plan_query(&q).unwrap();
    let single = execute_planned(hg, &planned, mode);
    let sharded = execute_planned_sharded(hg, &planned, mode, ShardRouter::new(shards));
    match (single, sharded) {
        (Ok(s), Ok(g)) => assert_eq!(
            wire_bytes(&s),
            wire_bytes(&g),
            "wire bytes diverge at {shards} shards ({mode:?}): {text}"
        ),
        (Err(se), Err(ge)) => assert_eq!(
            se.to_string(),
            ge.to_string(),
            "error text diverges at {shards} shards ({mode:?}): {text}"
        ),
        (s, g) => {
            panic!("outcome diverges at {shards} shards ({mode:?}) on {text}: {s:?} vs {g:?}")
        }
    }
}

#[test]
fn corpus_is_byte_identical_across_shard_counts() {
    let b = instance();
    for text in QUERIES {
        for shards in [1usize, 2, 3, 4, 7] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                assert_identical(&b.hygraph, text, shards, mode);
            }
        }
    }
}

/// Randomised sweep: generated graph shapes × corpus queries × shard
/// counts. The graph generator varies vertex/edge counts and series
/// values so binding sets, group shapes, and error rows shift around
/// the shard boundaries.
fn built_graph(users: usize, merchants: usize, seed: u64) -> hygraph_core::builder::BuiltHyGraph {
    let mut b = HyGraphBuilder::new();
    for i in 0..users {
        let series = format!("s{i}");
        let ts = TimeSeries::generate(Timestamp::ZERO, Duration::from_millis(10), 50, |k| {
            ((seed % 7) as f64) * 100.0 + (k as f64) + (i as f64)
        });
        b = b
            .univariate(&series, &ts)
            .pg_vertex(
                &format!("u{i}"),
                ["User"],
                props! {"name" => format!("user{i}"), "age" => 18 + (i as i64 * 7 + seed as i64) % 50},
            )
            .ts_vertex(&format!("c{i}"), ["CreditCard"], &series)
            .pg_edge(None, &format!("u{i}"), &format!("c{i}"), ["USES"], props! {});
    }
    for m in 0..merchants {
        b = b.pg_vertex(
            &format!("m{m}"),
            ["Merchant"],
            props! {"name" => format!("m{m}")},
        );
    }
    // trips: each card transacts with a seed-dependent subset of merchants
    for i in 0..users {
        for m in 0..merchants {
            if !(seed + i as u64 * 3 + m as u64).is_multiple_of(3) {
                continue;
            }
            let amount = ((seed + i as u64 + m as u64 * 13) % 2000) as f64;
            b = b.pg_edge(
                None,
                &format!("c{i}"),
                &format!("m{m}"),
                ["TX"],
                props! {"amount" => amount},
            );
        }
    }
    b.build().unwrap()
}

proptest! {
    #[test]
    fn random_graphs_stay_byte_identical(
        users in 1usize..6,
        merchants in 1usize..5,
        seed in 0u64..1000,
        shards in 1usize..9,
        query_idx in 0usize..QUERIES.len(),
    ) {
        let b = built_graph(users, merchants, seed);
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            assert_identical(&b.hygraph, QUERIES[query_idx], shards, mode);
        }
    }
}
